"""Replica-side advertising: keep one (service, url) lease alive.

An :class:`Advertiser` is what turns an ordinary ClamServer into a
cluster replica: it connects a plain ClamClient to the directory,
advertises the replica's address under a lease, and heartbeats it on
a timer until stopped.  Everything hard — redialing a dropped
directory connection, retrying a timed-out heartbeat — is *composed*
from the resilience layer, not re-implemented: the directory client
runs with ``reconnect=True`` and a :class:`~repro.rpc.RetryPolicy`,
and every directory method is ``@idempotent``, so the heartbeat loop
itself stays a dozen lines.
"""

from __future__ import annotations

import asyncio
import logging
from typing import TYPE_CHECKING, Callable

from repro.cluster.directory import DIRECTORY_SERVICE, DirectoryInterface
from repro.rpc import RetryPolicy

if TYPE_CHECKING:
    from repro.server import ClamServer

logger = logging.getLogger(__name__)


class Advertiser:
    """Advertise one service endpoint and heartbeat its lease.

    ``load`` is a zero-argument callable sampled at every heartbeat —
    the advertised load is therefore at most one heartbeat interval
    stale.  :meth:`for_server` wires it to the server's live session
    count, the simplest honest load signal; richer deployments can
    scrape the server's ``metrics()`` instead.
    """

    def __init__(
        self,
        directory_url: str,
        service: str,
        url: str,
        *,
        load: Callable[[], float] | None = None,
        lease: float = 0.0,
        interval: float | None = None,
        retry: RetryPolicy | None = None,
        connect_timeout: float | None = 5.0,
    ):
        if interval is not None and interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        self.directory_url = directory_url
        self.service = service
        self.url = url
        self._load = load if load is not None else (lambda: 0.0)
        self._lease = lease
        # A lease must outlive the gap between heartbeats with margin;
        # one third is the classic choice (two heartbeats may be lost
        # before the entry lapses).
        self._interval = interval
        self._retry = retry if retry is not None else RetryPolicy(
            attempts=5, base_delay=0.05, max_delay=0.5
        )
        self._connect_timeout = connect_timeout
        self._client = None
        self._directory = None
        self._task: asyncio.Task | None = None
        self._stopped = asyncio.Event()
        #: Lease generation from the latest advertise.
        self.generation = 0
        #: Successful heartbeats sent.
        self.heartbeats = 0
        #: Times the lease lapsed and had to be re-advertised.
        self.renewals = 0
        #: Heartbeats that failed outright (transport down, retries spent).
        self.misses = 0

    @classmethod
    def for_server(
        cls,
        directory_url: str,
        service: str,
        server: "ClamServer",
        url: str,
        **options,
    ) -> "Advertiser":
        """An advertiser whose load signal is the server's session count."""
        options.setdefault("load", lambda: float(server.session_count))
        return cls(directory_url, service, url, **options)

    # -- lifecycle ----------------------------------------------------------------

    async def start(self) -> int:
        """Connect, advertise, and start the heartbeat task.

        Returns the lease generation the directory issued.  Raises if
        the *initial* advertisement cannot be placed — a replica that
        never made it into the namespace should fail loudly at startup,
        not silently heartbeat into the void.
        """
        from repro.client import ClamClient

        if self._task is not None:
            raise RuntimeError("advertiser already started")
        self._client = await ClamClient.connect(
            self.directory_url,
            retry=self._retry,
            reconnect=True,
            reconnect_policy=self._retry,
            connect_timeout=self._connect_timeout,
        )
        try:
            self._directory = await self._client.lookup(
                DirectoryInterface, DIRECTORY_SERVICE
            )
            self.generation = await self._directory.advertise(
                self.service, self.url, self._load(), self._lease
            )
        except BaseException:
            await self._client.close()
            self._client = None
            raise
        self._stopped.clear()
        self._task = asyncio.get_running_loop().create_task(
            self._heartbeat_loop(), name=f"advertiser-{self.service}"
        )
        return self.generation

    async def stop(self, *, withdraw: bool = True) -> None:
        """Stop heartbeating; by default also retract the entry now.

        ``withdraw=False`` leaves the lease to lapse on its own — the
        shape of a crash, useful in tests.
        """
        self._stopped.set()
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, Exception):
                pass
            self._task = None
        if self._client is not None:
            if withdraw and self._directory is not None:
                try:
                    await self._directory.withdraw(self.service, self.url)
                except Exception:
                    pass  # the lease lapses anyway
            await self._client.close()
            self._client = None
            self._directory = None

    async def __aenter__(self) -> "Advertiser":
        await self.start()
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.stop()

    # -- the loop -----------------------------------------------------------------

    @property
    def interval(self) -> float:
        if self._interval is not None:
            return self._interval
        from repro.cluster.directory import DEFAULT_LEASE

        lease = self._lease if self._lease > 0 else DEFAULT_LEASE
        return lease / 3.0

    async def _heartbeat_loop(self) -> None:
        while not self._stopped.is_set():
            await asyncio.sleep(self.interval)
            if self._stopped.is_set():
                return
            try:
                alive = await self._directory.heartbeat(
                    self.service, self.url, self._load()
                )
                if alive:
                    self.heartbeats += 1
                else:
                    # The lease lapsed under us (directory restarted,
                    # or we were partitioned past it): re-advertise.
                    self.generation = await self._directory.advertise(
                        self.service, self.url, self._load(), self._lease
                    )
                    self.renewals += 1
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                # Transport trouble beyond what retry+reconnect absorbed;
                # count it and try again next interval — the client's
                # supervisor is re-dialing underneath us.
                self.misses += 1
                logger.debug(
                    "heartbeat for %s@%s missed: %s", self.service, self.url, exc
                )
