"""Replica-side advertising: keep one (service, url) lease alive.

An :class:`Advertiser` is what turns an ordinary ClamServer into a
cluster replica: it connects to the directory, advertises the
replica's address under a lease, and heartbeats it on a timer until
stopped.  Everything hard — redialing a dropped directory connection,
retrying a timed-out heartbeat, chasing a moved leader — is *composed*
from the resilience layer, not re-implemented: directory calls go
through a :class:`~repro.cluster.replicate.LeaderClient` (which
follows ``NotLeaderError`` hints across a replicated directory and
degrades to a plain single-URL dial otherwise) under a
:class:`~repro.rpc.RetryPolicy`, and every directory write is
``@idempotent``, so the heartbeat loop itself stays a dozen lines.

Every (re-)advertisement yields a :class:`~repro.cluster.endpoints.LeaseGrant`
whose fencing token is exposed as :attr:`Advertiser.token`; a server
that guards its writes (``fence_scope(advertiser.token)``) is thereby
protected from its own stale incarnations.

A directory that stays unreachable is an *incident*: after
``miss_threshold`` consecutive failed heartbeats the advertiser
reports ``directory-unreachable`` to its incident sink —
:meth:`~repro.server.ClamServer.note_incident` when built with
:meth:`for_server`, so the flight recorder dumps the window that led
up to the outage.
"""

from __future__ import annotations

import asyncio
import logging
from typing import TYPE_CHECKING, Callable, Sequence

from repro.cluster.replicate import LeaderClient
from repro.rpc import FencingToken, RetryPolicy

if TYPE_CHECKING:
    from repro.server import ClamServer

logger = logging.getLogger(__name__)


class Advertiser:
    """Advertise one service endpoint and heartbeat its lease.

    ``load`` is a zero-argument callable sampled at every heartbeat —
    the advertised load is therefore at most one heartbeat interval
    stale.  :meth:`for_server` wires it to the server's live session
    count, the simplest honest load signal; richer deployments can
    scrape the server's ``metrics()`` instead.

    ``directory_url`` may be a single URL or the full replica list of
    a replicated directory; writes always chase the current leader.
    """

    def __init__(
        self,
        directory_url: str | Sequence[str],
        service: str,
        url: str,
        *,
        load: Callable[[], float] | None = None,
        lease: float = 0.0,
        interval: float | None = None,
        retry: RetryPolicy | None = None,
        connect_timeout: float | None = 5.0,
        miss_threshold: int = 3,
        incident_sink: Callable[[str, str], object] | None = None,
    ):
        if interval is not None and interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        self.directory_url = directory_url
        self.service = service
        self.url = url
        self._load = load if load is not None else (lambda: 0.0)
        self._lease = lease
        # A lease must outlive the gap between heartbeats with margin;
        # one third is the classic choice (two heartbeats may be lost
        # before the entry lapses).
        self._interval = interval
        self._retry = retry if retry is not None else RetryPolicy(
            attempts=5, base_delay=0.05, max_delay=0.5
        )
        self._connect_timeout = connect_timeout
        self._miss_threshold = max(1, miss_threshold)
        self._incident_sink = incident_sink
        self._incident_reported = False
        self._consecutive_misses = 0
        self._link: LeaderClient | None = None
        self._task: asyncio.Task | None = None
        self._stopped = asyncio.Event()
        #: Lease generation from the latest advertise.
        self.generation = 0
        #: Fencing token of the current lease (zero before start).
        self.token = FencingToken()
        #: Successful heartbeats sent.
        self.heartbeats = 0
        #: Times the lease lapsed and had to be re-advertised.
        self.renewals = 0
        #: Heartbeats that failed outright (transport down, retries spent).
        self.misses = 0

    @classmethod
    def for_server(
        cls,
        directory_url: str | Sequence[str],
        service: str,
        server: "ClamServer",
        url: str,
        **options,
    ) -> "Advertiser":
        """An advertiser whose load signal is the server's session count
        and whose outage reports land in the server's flight recorder."""
        options.setdefault("load", lambda: float(server.session_count))
        options.setdefault("incident_sink", server.note_incident)
        return cls(directory_url, service, url, **options)

    # -- lifecycle ----------------------------------------------------------------

    async def start(self) -> int:
        """Connect, advertise, and start the heartbeat task.

        Returns the lease generation the directory issued.  Raises if
        the *initial* advertisement cannot be placed — a replica that
        never made it into the namespace should fail loudly at startup,
        not silently heartbeat into the void.
        """
        if self._task is not None:
            raise RuntimeError("advertiser already started")
        self._link = LeaderClient(
            self.directory_url,
            retry=self._retry,
            connect_timeout=self._connect_timeout,
        )
        try:
            await self._advertise()
        except BaseException:
            await self._link.close()
            self._link = None
            raise
        self._stopped.clear()
        self._task = asyncio.get_running_loop().create_task(
            self._heartbeat_loop(), name=f"advertiser-{self.service}"
        )
        return self.generation

    async def _advertise(self) -> None:
        grant = await self._link.advertise(
            self.service, self.url, self._load(), self._lease
        )
        self.generation = grant.generation
        self.token = FencingToken(grant.epoch, grant.counter)

    async def stop(self, *, withdraw: bool = True) -> None:
        """Stop heartbeating; by default also retract the entry now.

        ``withdraw=False`` leaves the lease to lapse on its own — the
        shape of a crash, useful in tests.
        """
        self._stopped.set()
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, Exception):
                pass
            self._task = None
        if self._link is not None:
            if withdraw:
                try:
                    await self._link.withdraw(self.service, self.url)
                except Exception:
                    pass  # the lease lapses anyway
            await self._link.close()
            self._link = None

    async def __aenter__(self) -> "Advertiser":
        await self.start()
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.stop()

    # -- the loop -----------------------------------------------------------------

    @property
    def interval(self) -> float:
        if self._interval is not None:
            return self._interval
        from repro.cluster.directory import DEFAULT_LEASE

        lease = self._lease if self._lease > 0 else DEFAULT_LEASE
        return lease / 3.0

    async def _heartbeat_loop(self) -> None:
        while not self._stopped.is_set():
            await asyncio.sleep(self.interval)
            if self._stopped.is_set():
                return
            try:
                alive = await self._link.heartbeat(
                    self.service, self.url, self._load()
                )
                if alive:
                    self.heartbeats += 1
                else:
                    # The lease lapsed under us (directory restarted,
                    # failed over, or we were partitioned past it):
                    # re-advertise — the new grant's token fences the
                    # old one.
                    await self._advertise()
                    self.renewals += 1
                self._note_contact()
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                # Transport trouble beyond what retry + leader chasing
                # absorbed; count it and try again next interval.
                self.misses += 1
                logger.debug(
                    "heartbeat for %s@%s missed: %s", self.service, self.url, exc
                )
                self._note_miss(exc)

    def _note_contact(self) -> None:
        self._consecutive_misses = 0
        self._incident_reported = False

    def _note_miss(self, exc: Exception) -> None:
        count = self._consecutive_misses + 1
        self._consecutive_misses = count
        if (
            count >= self._miss_threshold
            and not self._incident_reported
            and self._incident_sink is not None
        ):
            self._incident_reported = True
            try:
                self._incident_sink(
                    "directory-unreachable",
                    f"{self.service}@{self.url}: {count} consecutive heartbeat "
                    f"misses ({type(exc).__name__}: {exc})",
                )
            except Exception:
                pass
