"""repro.cluster — many servers behind one namespace, one event to many.

The paper stops at one server per conversation: naming is the single
server's builtin ``lookup``/``publish`` (§2), and each registered
procedure pointer feeds exactly one client (§3.5.2, §4).  This package
is the step beyond, built entirely on the layers underneath (client,
server, rpc, handles, resilience):

- :class:`DirectoryServer` / :class:`DirectoryImpl` — a ClamServer
  hosting the ``clam.directory`` interface: replicas ``advertise``
  under a lease and heartbeat it; entries expire when heartbeats stop.
  Every grant carries a monotonic fencing token
  (:class:`LeaseGrant`), and every change fans out to watchers as a
  versioned :class:`DirectoryEvent`.
- :class:`ReplicatedDirectoryServer` — N directory replicas running
  lease-based leader election (:class:`ElectionManager`) over a
  replicated log; followers answer writes with a retryable
  ``NotLeaderError`` + leader hint that :class:`LeaderClient` follows.
- :class:`Advertiser` — the replica-side heartbeat loop, composed from
  the resilience layer (leader-chasing link + idempotent retries).
- :class:`ClusterClient` / :class:`ReplicaPool` — resolve a service
  through the directory, cache endpoints, and balance synchronous
  calls across live replicas (:class:`RoundRobin` /
  :class:`LeastLoaded`), failing over on transport errors.
  ``ClusterClient.watch`` swaps TTL polling for directory watch
  upcalls that patch the cache in place, exactly-once across
  failovers.
- :class:`UpcallGroup` — server-side fan-out: many RUCs under one
  topic, one ``post()`` delivered to every subscriber over its own
  upcall stream, with bounded queues and a slow-subscriber policy.

See ``docs/CLUSTER.md`` for protocol and timing details, and
``examples/cluster_chat.py`` for the whole story in one file.
"""

from repro.cluster.advertise import Advertiser
from repro.cluster.directory import (
    DEFAULT_LEASE,
    DIRECTORY_SERVICE,
    DirectoryImpl,
    DirectoryInterface,
    DirectoryServer,
)
from repro.cluster.election import (
    DEFAULT_ELECTION_TIMEOUT,
    ROLE_CANDIDATE,
    ROLE_FOLLOWER,
    ROLE_LEADER,
    ElectionManager,
)
from repro.cluster.endpoints import DirectoryEvent, Endpoint, LeaseGrant
from repro.cluster.group import SLOW_POLICIES, UpcallGroup
from repro.cluster.pool import (
    POLICIES,
    BalancingPolicy,
    ClusterClient,
    ClusterProxy,
    LeastLoaded,
    Replica,
    ReplicaPool,
    RoundRobin,
)
from repro.cluster.replicate import (
    REPLICA_SERVICE,
    AppendReply,
    LeaderClient,
    LeaseSnapshot,
    LogRecord,
    ReplicaInterface,
    ReplicatedDirectoryServer,
    VoteReply,
)

__all__ = [
    "DEFAULT_ELECTION_TIMEOUT",
    "DEFAULT_LEASE",
    "DIRECTORY_SERVICE",
    "REPLICA_SERVICE",
    "DirectoryImpl",
    "DirectoryInterface",
    "DirectoryServer",
    "ReplicatedDirectoryServer",
    "ReplicaInterface",
    "ElectionManager",
    "ROLE_FOLLOWER",
    "ROLE_CANDIDATE",
    "ROLE_LEADER",
    "LeaderClient",
    "LogRecord",
    "LeaseSnapshot",
    "VoteReply",
    "AppendReply",
    "Advertiser",
    "Endpoint",
    "LeaseGrant",
    "DirectoryEvent",
    "ClusterClient",
    "ClusterProxy",
    "ReplicaPool",
    "Replica",
    "BalancingPolicy",
    "RoundRobin",
    "LeastLoaded",
    "POLICIES",
    "UpcallGroup",
    "SLOW_POLICIES",
]
