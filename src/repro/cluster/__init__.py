"""repro.cluster — many servers behind one namespace, one event to many.

The paper stops at one server per conversation: naming is the single
server's builtin ``lookup``/``publish`` (§2), and each registered
procedure pointer feeds exactly one client (§3.5.2, §4).  This package
is the step beyond, built entirely on the layers underneath (client,
server, rpc, handles, resilience):

- :class:`DirectoryServer` / :class:`DirectoryImpl` — a ClamServer
  hosting the ``clam.directory`` interface: replicas ``advertise``
  under a lease and heartbeat it; entries expire when heartbeats stop.
- :class:`Advertiser` — the replica-side heartbeat loop, composed from
  the resilience layer (supervised reconnect + idempotent retries).
- :class:`ClusterClient` / :class:`ReplicaPool` — resolve a service
  through the directory, cache endpoints, and balance synchronous
  calls across live replicas (:class:`RoundRobin` /
  :class:`LeastLoaded`), failing over on transport errors.
- :class:`UpcallGroup` — server-side fan-out: many RUCs under one
  topic, one ``post()`` delivered to every subscriber over its own
  upcall stream, with bounded queues and a slow-subscriber policy.

See ``docs/CLUSTER.md`` for protocol and timing details, and
``examples/cluster_chat.py`` for the whole story in one file.
"""

from repro.cluster.advertise import Advertiser
from repro.cluster.directory import (
    DEFAULT_LEASE,
    DIRECTORY_SERVICE,
    DirectoryImpl,
    DirectoryInterface,
    DirectoryServer,
)
from repro.cluster.endpoints import Endpoint
from repro.cluster.group import SLOW_POLICIES, UpcallGroup
from repro.cluster.pool import (
    POLICIES,
    BalancingPolicy,
    ClusterClient,
    ClusterProxy,
    LeastLoaded,
    Replica,
    ReplicaPool,
    RoundRobin,
)

__all__ = [
    "DEFAULT_LEASE",
    "DIRECTORY_SERVICE",
    "DirectoryImpl",
    "DirectoryInterface",
    "DirectoryServer",
    "Advertiser",
    "Endpoint",
    "ClusterClient",
    "ClusterProxy",
    "ReplicaPool",
    "Replica",
    "BalancingPolicy",
    "RoundRobin",
    "LeastLoaded",
    "POLICIES",
    "UpcallGroup",
    "SLOW_POLICIES",
]
