"""Replica pools: one service name, many servers, balanced calls.

A :class:`ClusterClient` is the client half of the directory story:
``bind("kv", KvIface)`` resolves the service through the directory,
connects to its replicas lazily, and returns a proxy-shaped object
whose every method call is routed by a pluggable
:class:`BalancingPolicy` — round-robin by default, or least-loaded on
the load each replica last advertised.

Failure handling composes with the resilience layer instead of
duplicating it:

- a call that dies with :class:`~repro.errors.TransportError` marks
  that endpoint *down* for ``down_ttl`` seconds, forces a fresh
  resolution, and fails over to another replica;
- a reply of :class:`~repro.errors.RemoteStaleError` (the replica
  restarted and re-published its object under a new tag) drops the
  cached per-replica proxy and looks the name up again, once;
- a shed (:class:`~repro.errors.ServerOverloadedError`) *soft-downs*
  the replica: out of rotation for the server's ``retry_after`` hint,
  connection kept (the server is healthy, just full), and the call
  fails over immediately — always safe, a shed happens before
  execution.  Each shed also adds a decaying penalty to the replica's
  load figure, so :class:`LeastLoaded` steers around recently
  overloaded replicas even after they rejoin the rotation;
- per-call retries of ``@idempotent`` methods and ambient deadlines
  still come from the underlying :class:`~repro.rpc.RpcConnection` —
  pass ``client_options=dict(retry=..., call_timeout=...)``.

Failover caveat: a call that fails in transport *may already have
executed* on the dying replica.  The default (``failover="transport"``)
re-routes every such call, which is at-least-once for non-idempotent
methods; set ``failover="idempotent"`` to re-route only calls the
interface declares safe.

Endpoint caches have two freshness regimes.  The default is TTL
polling: a pool re-resolves at most every ``resolve_ttl`` seconds and
serves the cache in between (``cluster.client.cache_hit`` /
``cache_miss`` / ``cache_stale`` count how that works out).  Calling
:meth:`ClusterClient.watch` upgrades a service to **watch upcalls**:
a dedicated :class:`~repro.cluster.replicate.LeaderClient` subscribes
to the directory's event stream and patches the pool *in place* on
every advertise/expire/withdraw, with ``(epoch, version)`` dedup
making delivery exactly-once across leader failovers.  While the
watch is live the TTL stretches to a safety net; if the watch dies
and cannot resubscribe, the pool falls back to TTL polling until it
recovers — degraded, never wrong.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from typing import Any

from repro.errors import (
    CallTimeoutError,
    NoReplicasError,
    RemoteStaleError,
    ServerOverloadedError,
    TransportError,
)
from repro.cluster.endpoints import DirectoryEvent, Endpoint
from repro.obs.metrics import MetricsRegistry
from repro.rpc import RetryPolicy
from repro.stubs import interface_spec


class BalancingPolicy:
    """Chooses the replica for one call from the live candidates."""

    def choose(self, candidates: "list[Replica]") -> "Replica":
        raise NotImplementedError


class RoundRobin(BalancingPolicy):
    """Rotate through the candidates in url order."""

    def __init__(self) -> None:
        self._next = itertools.count()

    def choose(self, candidates: "list[Replica]") -> "Replica":
        return candidates[next(self._next) % len(candidates)]


class LeastLoaded(BalancingPolicy):
    """Pick the lowest *effective* load; break ties round-robin.

    The base load figure is whatever the replica's advertiser samples —
    session count by default, or any scrape of the builtin
    ``metrics()`` — refreshed every heartbeat, so it is coarse but
    honest.  On top of it sits the replica's decaying shed penalty:
    a replica that recently answered with
    :class:`~repro.errors.ServerOverloadedError` looks heavier than
    its advertisement for a few seconds, so traffic drains away from
    it *before* the next heartbeat can say so.
    """

    def __init__(self) -> None:
        self._tiebreak = itertools.count()

    def choose(self, candidates: "list[Replica]") -> "Replica":
        # time.monotonic() is the same clock asyncio's loop.time() reads,
        # and unlike the loop it is reachable from synchronous callers.
        now = time.monotonic()
        loads = [replica.effective_load(now) for replica in candidates]
        lowest = min(loads)
        tied = [
            replica
            for replica, load in zip(candidates, loads)
            if load <= lowest + 1e-9
        ]
        return tied[next(self._tiebreak) % len(tied)]


#: Named policies accepted by :meth:`ClusterClient.connect`.
POLICIES = {"round-robin": RoundRobin, "least-loaded": LeastLoaded}


#: Half-life of a replica's shed penalty, seconds.  Long enough that
#: LeastLoaded remembers a shed across a few heartbeats, short enough
#: that a recovered replica re-earns full traffic within seconds.
PENALTY_HALF_LIFE = 5.0


class Replica:
    """One endpoint as the pool sees it: connection, proxies, health."""

    # Class-level defaults so partially built replicas (tests, future
    # subclasses) still answer effective_load() honestly.
    overloads = 0
    shed_penalty = 0.0
    _penalty_at = 0.0

    def __init__(self, endpoint: Endpoint):
        self.url = endpoint.url
        self.load = endpoint.load
        self.generation = endpoint.generation
        self.client = None  # lazily connected ClamClient
        self.proxies: dict[tuple[type, str], Any] = {}
        self.down_until = 0.0
        self.calls = 0
        self.failures = 0
        self.overloads = 0
        self.shed_penalty = 0.0
        self._penalty_at = 0.0

    def is_down(self, now: float) -> bool:
        return now < self.down_until

    def _decayed_penalty(self, now: float) -> float:
        if self.shed_penalty <= 0.0:
            return 0.0
        age = max(0.0, now - self._penalty_at)
        return self.shed_penalty * 0.5 ** (age / PENALTY_HALF_LIFE)

    def note_overloaded(self, now: float) -> None:
        """Record one shed: bump the decaying penalty."""
        self.overloads += 1
        self.shed_penalty = self._decayed_penalty(now) + 1.0
        self._penalty_at = now

    def effective_load(self, now: float) -> float:
        """Advertised load plus the decaying shed penalty."""
        return self.load + self._decayed_penalty(now)

    async def retire(self) -> None:
        self.proxies.clear()
        client, self.client = self.client, None
        if client is not None:
            try:
                await client.close()
            except Exception:
                pass


class ReplicaPool:
    """The live endpoints of one service and the machinery to call them."""

    def __init__(
        self,
        service: str,
        directory,
        *,
        policy: BalancingPolicy,
        resolve_ttl: float,
        down_ttl: float,
        failover: str,
        client_options: dict | None,
        metrics: MetricsRegistry | None = None,
    ):
        self.service = service
        self._directory = directory
        self._policy = policy
        self._resolve_ttl = resolve_ttl
        self._down_ttl = down_ttl
        self._failover = failover
        self._client_options = dict(client_options or {})
        self._metrics = metrics
        self._replicas: dict[str, Replica] = {}
        self._resolved_at = -1e9
        self._resolve_lock = asyncio.Lock()
        self._closed = False
        #: True while a live directory watch patches this pool in
        #: place; the TTL stretches to a safety net (see watch_ttl).
        self.watching = False
        #: Called (synchronously, no await) when the pool declares its
        #: own snapshot stale while a watch is live — the watch owner
        #: uses it to resubscribe instead of trusting a dead stream.
        self.on_stale = None

    @property
    def _effective_ttl(self) -> float:
        if not self.watching:
            return self._resolve_ttl
        # Watch mode: events keep the cache fresh, so the TTL only
        # backstops a silently dead stream (evicted subscriber, lost
        # event) — generous, but not infinite.
        return max(self._resolve_ttl * 20.0, 5.0)

    # -- resolution ----------------------------------------------------------------

    @property
    def replicas(self) -> list[Replica]:
        return list(self._replicas.values())

    async def refresh(self, *, force: bool = False) -> None:
        """Bring the endpoint set up to date with the directory.

        Serialized so a burst of failing calls produces one resolution,
        not a stampede; within ``resolve_ttl`` the cache answers.
        """
        async with self._resolve_lock:
            now = asyncio.get_running_loop().time()
            if not force and now - self._resolved_at < self._effective_ttl:
                if self._metrics is not None:
                    self._metrics.counter(
                        "cluster.client.cache_hit", service=self.service
                    ).inc()
                return
            endpoints = await self._directory.resolve(self.service)
            self._resolved_at = asyncio.get_running_loop().time()
            if self._metrics is not None:
                self._metrics.counter(
                    "cluster.pool.resolves", service=self.service
                ).inc()
                self._metrics.counter(
                    "cluster.client.cache_miss", service=self.service
                ).inc()
            seen = set()
            for endpoint in endpoints:
                seen.add(endpoint.url)
                replica = self._replicas.get(endpoint.url)
                if replica is None:
                    self._replicas[endpoint.url] = Replica(endpoint)
                    continue
                if endpoint.generation != replica.generation:
                    # The replica re-advertised: assume it restarted and
                    # drop our connection to the old incarnation.
                    await replica.retire()
                    replica.generation = endpoint.generation
                    replica.down_until = 0.0
                replica.load = endpoint.load
            for url in [u for u in self._replicas if u not in seen]:
                await self._replicas.pop(url).retire()

    async def apply_event(self, event: DirectoryEvent) -> None:
        """Patch the endpoint cache in place from one directory event.

        The watch path's replacement for :meth:`refresh`: an advertise
        upserts (a generation bump retires the stale connection, like
        a TTL refresh would), a withdraw or expire removes.  The cache
        is considered freshly resolved afterwards, so the TTL safety
        net re-arms on every event.
        """
        if event.kind == "advertise":
            endpoint = Endpoint(
                service=event.service,
                url=event.url,
                load=event.load,
                generation=event.generation,
            )
            replica = self._replicas.get(event.url)
            if replica is None:
                self._replicas[event.url] = Replica(endpoint)
            else:
                if event.generation != replica.generation:
                    await replica.retire()
                    replica.generation = event.generation
                    replica.down_until = 0.0
                replica.load = event.load
        elif event.kind in ("withdraw", "expire"):
            replica = self._replicas.pop(event.url, None)
            if replica is not None:
                await replica.retire()
        else:
            return
        self._resolved_at = asyncio.get_running_loop().time()

    def invalidate(self) -> None:
        """Declare the cached snapshot stale; kick a live watch too.

        Beyond dropping the freshness stamp (so the next call pays for
        a real resolution), this tells the watch plane — via
        ``on_stale`` — that the event stream it trusts let every
        replica go dark without a withdraw.  The watch resubscribes
        from its cursor, so a freshly re-advertised replica is picked
        up immediately instead of waiting out the stretched watch TTL.
        """
        self._resolved_at = -1e9
        if self.watching and self.on_stale is not None:
            if self._metrics is not None:
                self._metrics.counter(
                    "cluster.pool.watch_kicked", service=self.service
                ).inc()
            self.on_stale()

    async def _candidates(self) -> list[Replica]:
        await self.refresh()
        now = asyncio.get_running_loop().time()
        live = [r for r in self._replicas.values() if not r.is_down(now)]
        if live:
            return live
        # Everything is down or unknown: the snapshot is stale whatever
        # regime produced it — invalidate (which also kicks a live
        # watch into resubscribing), then pay for a forced resolution;
        # the directory may already have expired the dead and admitted
        # fresh replicas.
        self.invalidate()
        await self.refresh(force=True)
        now = asyncio.get_running_loop().time()
        live = [r for r in self._replicas.values() if not r.is_down(now)]
        if not live:
            raise NoReplicasError(
                f"service {self.service!r} has no live replica "
                f"({len(self._replicas)} known, all down)"
            )
        return live

    # -- calling -------------------------------------------------------------------

    async def _proxy_for(self, replica: Replica, iface: type, published: str):
        if replica.client is None:
            from repro.client import ClamClient

            replica.client = await ClamClient.connect(
                replica.url, **self._client_options
            )
            if self._metrics is not None:
                self._metrics.counter(
                    "cluster.pool.connects", service=self.service
                ).inc()
        key = (iface, published)
        proxy = replica.proxies.get(key)
        if proxy is None:
            proxy = await replica.client.lookup(iface, published)
            replica.proxies[key] = proxy
        return proxy

    async def mark_down(self, replica: Replica) -> None:
        """Take an endpoint out of rotation for ``down_ttl`` seconds."""
        replica.failures += 1
        replica.down_until = asyncio.get_running_loop().time() + self._down_ttl
        if self._metrics is not None:
            self._metrics.counter(
                "cluster.pool.marked_down", service=self.service
            ).inc()
            # The cache served us an endpoint that proved dead: that is
            # a stale answer, whatever refreshes it next.
            self._metrics.counter(
                "cluster.client.cache_stale", service=self.service
            ).inc()
        await replica.retire()
        # The set has visibly changed; make the next call re-resolve.
        self._resolved_at = -1e9

    def mark_overloaded(self, replica: Replica, retry_after_ms: int) -> None:
        """Soft-down: out of rotation for the server's hint, connection kept.

        An overloaded replica is healthy — it answered, promptly, with
        a verdict — so unlike :meth:`mark_down` this neither retires
        the client nor forces a re-resolution; it just respects the
        ``retry_after`` hint and weights the balancer away.
        """
        now = asyncio.get_running_loop().time()
        hold = max(retry_after_ms / 1000.0, 0.05)
        replica.down_until = max(replica.down_until, now + hold)
        replica.note_overloaded(now)
        if self._metrics is not None:
            self._metrics.counter(
                "cluster.pool.overloaded", service=self.service
            ).inc()

    def _may_failover(self, exc: Exception, idempotent: bool) -> bool:
        if isinstance(exc, TransportError):
            return self._failover == "transport" or idempotent
        if isinstance(exc, CallTimeoutError):
            # The call may be mid-execution on a live replica; only a
            # declared-idempotent method is safe to run elsewhere too.
            return idempotent
        return False

    async def invoke(
        self, iface: type, published: str, method: str, args: tuple, kwargs: dict
    ) -> Any:
        """One balanced call with failover; the pooled proxies call this."""
        idempotent = bool(interface_spec(iface).method(method).idempotent)
        attempts = max(2, len(self._replicas) + 1)
        last_exc: Exception | None = None
        for _ in range(attempts):
            try:
                candidates = await self._candidates()
            except NoReplicasError:
                # Everything soft-downed because every replica shed:
                # surface the real verdict — an overload error carries
                # the retry_after hint the caller's RetryPolicy honors.
                if isinstance(last_exc, ServerOverloadedError):
                    raise last_exc from None
                raise
            replica = self._policy.choose(candidates)
            try:
                proxy = await self._proxy_for(replica, iface, published)
            except TransportError as exc:
                await self.mark_down(replica)
                last_exc = exc
                continue
            replica.calls += 1
            if self._metrics is not None:
                self._metrics.counter(
                    "cluster.pool.calls", service=self.service
                ).inc()
            try:
                return await getattr(proxy, method)(*args, **kwargs)
            except RemoteStaleError:
                # The name re-resolved to a fresh object on that
                # replica (restart, republish): drop the cached proxy
                # and look it up again — once per attempt.
                replica.proxies.pop((iface, published), None)
                proxy = await self._proxy_for(replica, iface, published)
                return await getattr(proxy, method)(*args, **kwargs)
            except ServerOverloadedError as exc:
                # A shed happens before execution, so rerouting is safe
                # no matter the method's idempotency.
                last_exc = exc
                self.mark_overloaded(replica, exc.retry_after_ms)
                if self._metrics is not None:
                    self._metrics.counter(
                        "cluster.pool.failovers", service=self.service
                    ).inc()
            except (TransportError, CallTimeoutError) as exc:
                last_exc = exc
                if not self._may_failover(exc, idempotent):
                    raise
                await self.mark_down(replica)
                if self._metrics is not None:
                    self._metrics.counter(
                        "cluster.pool.failovers", service=self.service
                    ).inc()
        assert last_exc is not None
        raise last_exc

    async def close(self) -> None:
        self._closed = True
        for replica in self._replicas.values():
            await replica.retire()
        self._replicas.clear()

    def stats(self) -> dict[str, dict[str, float]]:
        """Per-endpoint health counters, for tests and consoles."""
        return {
            replica.url: {
                "calls": replica.calls,
                "failures": replica.failures,
                "overloads": replica.overloads,
                "load": replica.load,
                "generation": replica.generation,
                "connected": 1.0 if replica.client is not None else 0.0,
            }
            for replica in self._replicas.values()
        }


class ClusterProxy:
    """Proxy-shaped front of a :class:`ReplicaPool`.

    It deliberately is *not* a :class:`~repro.stubs.Proxy` — a real
    proxy carries one handle, and handles are per-server capabilities
    (§3.5.1); a pooled call resolves to a different handle on every
    replica.  Methods are validated against the interface spec, then
    routed through the pool.
    """

    def __init__(self, pool: ReplicaPool, iface: type, published: str):
        self._pool = pool
        self._iface = iface
        self._published = published
        self._spec = interface_spec(iface)

    @property
    def pool(self) -> ReplicaPool:
        return self._pool

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        self._spec.method(name)  # raises BadCallError for unknown methods

        async def pooled_method(*args: Any, **kwargs: Any) -> Any:
            return await self._pool.invoke(
                self._iface, self._published, name, args, kwargs
            )

        pooled_method.__name__ = name
        # Cache so repeated access returns the same callable.
        object.__setattr__(self, name, pooled_method)
        return pooled_method

    def __repr__(self) -> str:
        return (
            f"<ClusterProxy {self._spec.class_name} service="
            f"{self._pool.service!r} replicas={len(self._pool.replicas)}>"
        )


#: Queue sentinel: the pool invalidated itself under a live watch, so
#: the stream is suspect — resubscribe from the cursor.
_RESYNC = object()


class _ServiceWatch:
    """One service's watch subscription: link, cursor, monitor task."""

    __slots__ = (
        "service", "link", "queue", "task", "mark", "key", "active",
        "stopped", "resync",
    )

    def __init__(self, service: str, link):
        self.service = service
        self.link = link
        self.queue: asyncio.Queue = asyncio.Queue()
        self.task: asyncio.Task | None = None
        #: Last ``(epoch, version)`` applied — the exactly-once cursor.
        self.mark = (0, 0)
        self.key = 0
        self.active = False
        self.stopped = False
        #: True while a resync sentinel is queued but not yet consumed,
        #: so a burst of invalidations coalesces into one resubscribe.
        self.resync = False

    def sink(self, event: DirectoryEvent) -> None:
        """The RUC the directory calls back; runs on the upcall stream."""
        self.queue.put_nowait(event)

    def kick(self) -> None:
        """Ask the pump to resubscribe (the pool's ``on_stale`` hook)."""
        if not self.resync:
            self.resync = True
            self.queue.put_nowait(_RESYNC)


class ClusterClient:
    """Client-side entry to the cluster: resolve, bind, balance.

    One :class:`~repro.cluster.replicate.LeaderClient` link carries the
    directory traffic (supervised, retrying, leader-chasing —
    directory reads and writes are idempotent); each bound service
    gets a :class:`ReplicaPool` that dials replicas on demand, and
    :meth:`watch` upgrades a service from TTL polling to directory
    event upcalls.
    """

    def __init__(
        self,
        directory_client,
        directory_proxy,
        *,
        policy: str | BalancingPolicy = "round-robin",
        resolve_ttl: float = 0.5,
        down_ttl: float = 1.0,
        failover: str = "transport",
        client_options: dict | None = None,
        directory_urls: "str | list[str] | None" = None,
        connect_timeout: float | None = 5.0,
        retry: RetryPolicy | None = None,
    ):
        if failover not in ("transport", "idempotent"):
            raise ValueError(
                f"failover must be 'transport' or 'idempotent', not {failover!r}"
            )
        self._client = directory_client
        self._directory = directory_proxy
        self._policy_spec = policy
        self._resolve_ttl = resolve_ttl
        self._down_ttl = down_ttl
        self._failover = failover
        self._client_options = dict(client_options or {})
        self._directory_urls = directory_urls
        self._connect_timeout = connect_timeout
        self._retry = retry
        self.metrics = MetricsRegistry()
        self._pools: dict[str, ReplicaPool] = {}
        self._watches: dict[str, _ServiceWatch] = {}

    @classmethod
    async def connect(
        cls,
        directory_url: "str | list[str]",
        *,
        policy: str | BalancingPolicy = "round-robin",
        resolve_ttl: float = 0.5,
        down_ttl: float = 1.0,
        failover: str = "transport",
        retry: RetryPolicy | None = None,
        connect_timeout: float | None = 5.0,
        client_options: dict | None = None,
    ) -> "ClusterClient":
        """Connect to the directory at ``directory_url``.

        ``directory_url`` may be one URL or a replicated directory's
        full replica list; the link chases the leader either way.
        ``client_options`` are passed through to every per-replica
        ``ClamClient.connect`` (retry policies, timeouts, batching).
        """
        from repro.cluster.replicate import LeaderClient

        retry = retry if retry is not None else RetryPolicy(
            attempts=4, base_delay=0.05, max_delay=0.5
        )
        link = LeaderClient(
            directory_url, retry=retry, connect_timeout=connect_timeout
        )
        await link.ensure()
        return cls(
            link,
            link,
            policy=policy,
            resolve_ttl=resolve_ttl,
            down_ttl=down_ttl,
            failover=failover,
            client_options=client_options,
            directory_urls=directory_url,
            connect_timeout=connect_timeout,
            retry=retry,
        )

    def _make_policy(self) -> BalancingPolicy:
        if isinstance(self._policy_spec, BalancingPolicy):
            return self._policy_spec
        factory = POLICIES.get(self._policy_spec)
        if factory is None:
            raise ValueError(
                f"unknown balancing policy {self._policy_spec!r}; "
                f"pick one of {sorted(POLICIES)} or pass a BalancingPolicy"
            )
        return factory()

    async def resolve(self, service: str) -> list[Endpoint]:
        """Raw directory resolution (no pool, no cache)."""
        return await self._directory.resolve(service)

    async def services(self) -> list[str]:
        return await self._directory.list_services()

    async def bind(
        self, service: str, iface: type, *, published: str | None = None
    ) -> ClusterProxy:
        """Bind a service name to an interface; returns the pooled proxy.

        ``published`` is the name each replica published its object
        under (defaults to the service name — the recommended
        convention).  Binding resolves eagerly so a missing service
        fails here, not on the first call.
        """
        pool, created = self._pool_for(service)
        if created:
            await pool.refresh(force=True)
        return ClusterProxy(pool, iface, published if published is not None else service)

    def _pool_for(self, service: str) -> tuple[ReplicaPool, bool]:
        pool = self._pools.get(service)
        if pool is not None:
            return pool, False
        pool = ReplicaPool(
            service,
            self._directory,
            policy=self._make_policy(),
            resolve_ttl=self._resolve_ttl,
            down_ttl=self._down_ttl,
            failover=self._failover,
            client_options=self._client_options,
            metrics=self.metrics,
        )
        self._pools[service] = pool
        return pool, True

    def pool(self, service: str) -> ReplicaPool:
        return self._pools[service]

    # -- the watch plane -----------------------------------------------------------

    async def watch(self, service: str) -> None:
        """Upgrade ``service`` from TTL polling to watch upcalls.

        Subscribes to the directory's event stream over a dedicated
        leader link and patches the service's pool in place on every
        event.  The initial replay *is* the first resolution, so the
        pool is populated when this returns.  Idempotent; the watch
        survives leader failover (resubscribing with its cursor, so
        every event is applied exactly once) and degrades to TTL
        polling whenever the stream cannot be re-established.
        """
        if service in self._watches:
            return
        from repro.cluster.replicate import LeaderClient

        pool, _ = self._pool_for(service)
        urls = self._directory_urls if self._directory_urls is not None else [
            u for u in [getattr(self._directory, "url", "")] if u
        ]
        watch = _ServiceWatch(
            service,
            LeaderClient(
                urls, retry=self._retry, connect_timeout=self._connect_timeout
            ),
        )
        self._watches[service] = watch
        pool.on_stale = watch.kick
        subscribed = asyncio.Event()
        watch.task = asyncio.get_running_loop().create_task(
            self._watch_loop(watch, pool, subscribed),
            name=f"cluster-watch-{service}",
        )
        # Wait for the first subscribe+replay (or its failure) so
        # callers see a populated pool; later resubscribes are the
        # task's own business.
        await subscribed.wait()

    async def unwatch(self, service: str) -> None:
        """Drop a service back to TTL polling."""
        watch = self._watches.pop(service, None)
        if watch is None:
            return
        watch.stopped = True
        if watch.task is not None:
            watch.task.cancel()
            try:
                await watch.task
            except (asyncio.CancelledError, Exception):
                pass
        if watch.active and watch.key:
            try:
                await watch.link.unwatch(watch.key)
            except Exception:
                pass
        await watch.link.close()
        pool = self._pools.get(service)
        if pool is not None:
            pool.watching = False
            pool.on_stale = None
        self._note_watch_gauge()

    def _note_watch_gauge(self) -> None:
        self.metrics.gauge("cluster.client.watch_active").set(
            float(sum(1 for w in self._watches.values() if w.active))
        )

    async def _watch_loop(
        self, watch: _ServiceWatch, pool: ReplicaPool, subscribed: asyncio.Event
    ) -> None:
        """Subscribe, pump events, resubscribe across failovers forever."""
        while not watch.stopped:
            try:
                watch.key = await watch.link.invoke(
                    "watch", watch.service, watch.mark[0], watch.mark[1], watch.sink
                )
            except asyncio.CancelledError:
                raise
            except Exception:
                # Degraded mode: no leader reachable — the pool's TTL
                # path carries the load until the stream comes back.
                watch.active = False
                pool.watching = False
                self._note_watch_gauge()
                subscribed.set()
                await asyncio.sleep(max(self._resolve_ttl, 0.2))
                continue
            watch.active = True
            pool.watching = True
            self._note_watch_gauge()
            subscribed.set()
            resubscribe = await self._pump_watch(watch, pool)
            watch.active = False
            pool.watching = False
            self._note_watch_gauge()
            if not resubscribe:
                return

    async def _pump_watch(self, watch: _ServiceWatch, pool: ReplicaPool) -> bool:
        """Apply events until the stream dies; True to resubscribe."""
        health_interval = max(self._resolve_ttl, 0.2)
        while not watch.stopped:
            try:
                event = await asyncio.wait_for(watch.queue.get(), health_interval)
            except (asyncio.TimeoutError, TimeoutError):
                if not watch.link.healthy:
                    # The connection carrying our RUC died (leader
                    # crash, eviction): resubscribe from the cursor.
                    await watch.link.reset()
                    return True
                continue
            if event is _RESYNC:
                # The pool found every replica dark and invalidated
                # itself: the stream we trust evidently missed the
                # story.  Resubscribe from the cursor — replay brings
                # any re-advertised replica in immediately.
                watch.resync = False
                await watch.link.reset()
                return True
            stamp = (event.epoch, event.version)
            if stamp <= watch.mark:
                # Replay overlap (at-least-once below, exactly-once
                # here): already applied, drop it.
                self.metrics.counter(
                    "cluster.client.watch_duplicates", service=watch.service
                ).inc()
                continue
            watch.mark = stamp
            if event.kind == "leader-change":
                leader = event.url
                if leader != watch.link.url:
                    # The stream we are on is no longer authoritative
                    # (an empty url means an election is in flight):
                    # chase the new leader with the cursor we have.
                    await watch.link.reset(prefer=leader)
                    return True
                continue
            await pool.apply_event(event)
            self.metrics.counter(
                "cluster.client.watch_events", service=watch.service
            ).inc()
        return False

    async def close(self) -> None:
        for service in list(self._watches):
            await self.unwatch(service)
        for pool in self._pools.values():
            await pool.close()
        self._pools.clear()
        await self._client.close()

    async def __aenter__(self) -> "ClusterClient":
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.close()
