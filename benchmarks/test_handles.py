"""Figure 3.3 machinery costs: handle issue, validation, wire form.

Not a paper table, but the handle path sits under every remote object
operation in Fig 5.1's remote rows; these benchmarks isolate it.
"""


from repro.errors import ForgedHandleError
from repro.handles import Handle, ObjectTable
from repro.xdr import XdrStream
from benchmarks.conftest import per_op

ITERS = 1000


class Thing:
    pass


def test_issue_new_objects(benchmark):
    def issue_many():
        table = ObjectTable()
        for _ in range(ITERS):
            table.issue(Thing(), "Thing")

    benchmark(issue_many)
    per_op(benchmark, ITERS)


def test_issue_same_object_reuses(benchmark):
    table = ObjectTable()
    obj = Thing()
    first = table.issue(obj, "Thing")

    def reissue_many():
        for _ in range(ITERS):
            assert table.issue(obj, "Thing") == first

    benchmark(reissue_many)
    per_op(benchmark, ITERS)


def test_resolve_valid_handle(benchmark):
    """Figure 3.3's tag-check-and-return path."""
    table = ObjectTable()
    obj = Thing()
    handle = table.issue(obj, "Thing")

    def resolve_many():
        for _ in range(ITERS):
            assert table.resolve(handle) is obj

    benchmark(resolve_many)
    per_op(benchmark, ITERS)


def test_reject_forged_handle(benchmark):
    table = ObjectTable()
    handle = table.issue(Thing(), "Thing")
    forged = Handle(oid=handle.oid, tag=handle.tag ^ 1)

    def reject_many():
        for _ in range(ITERS):
            try:
                table.resolve(forged)
            except ForgedHandleError:
                pass

    benchmark(reject_many)
    per_op(benchmark, ITERS)


def test_handle_wire_roundtrip(benchmark):
    handle = Handle(oid=12345, tag=0xDEADBEEFCAFE)

    def roundtrip_many():
        for _ in range(ITERS):
            enc = XdrStream.encoder()
            handle.bundle(enc)
            Handle.unbundle(XdrStream.decoder(enc.getvalue()))

    benchmark(roundtrip_many)
    per_op(benchmark, ITERS)
