"""Upcall machinery costs (§4.1, §4.4): registration, local delivery,
distributed delivery, and the one-upcall-per-client gate.
"""

import pytest

from repro.bench.scenarios import POKER_SOURCE, PokerIface
from repro.client import ClamClient
from repro.core import UpcallPort
from repro.server import ClamServer
from benchmarks.conftest import per_op

ITERS = 1000


def test_registration(benchmark):
    def register_many():
        port = UpcallPort("bench")
        for i in range(ITERS):
            port.register(lambda e: None)

    benchmark(register_many)
    per_op(benchmark, ITERS)


def test_local_upcall_delivery(benchmark, bench_loop):
    port = UpcallPort("bench")
    port.register(lambda e: None)

    async def deliver_many():
        for i in range(ITERS):
            await port.deliver(i)

    benchmark(lambda: bench_loop.run_until_complete(deliver_many()))
    per_op(benchmark, ITERS)


def test_local_upcall_fanout(benchmark, bench_loop):
    """Delivery to 8 registrants (Fig 4.1's fan-out shape)."""
    port = UpcallPort("bench")
    for _ in range(8):
        port.register(lambda e: None)

    async def deliver_many():
        for i in range(ITERS // 8):
            await port.deliver(i)

    benchmark(lambda: bench_loop.run_until_complete(deliver_many()))
    per_op(benchmark, ITERS // 8)


@pytest.mark.parametrize("transport", ["memory", "unix"])
def test_distributed_upcall(benchmark, bench_loop, transport, tmp_path):
    """One full distributed upcall: gate, wire, client task, reply."""
    url = {
        "memory": "memory://bench-upcall",
        "unix": f"unix://{tmp_path}/upcall.sock",
    }[transport]
    batch = 100

    async def setup():
        server = ClamServer()
        address = await server.start(url)
        client = await ClamClient.connect(address)
        await client.load_module("poker", POKER_SOURCE)
        poker = await client.create(PokerIface)
        await poker.register(lambda i: i)
        return server, client, poker

    server, client, poker = bench_loop.run_until_complete(setup())
    try:
        benchmark(lambda: bench_loop.run_until_complete(poker.poke(batch)))
    finally:
        async def teardown():
            await client.close()
            await server.shutdown()

        bench_loop.run_until_complete(teardown())
    per_op(benchmark, batch)
