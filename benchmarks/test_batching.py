"""§3.4 ablation: batching asynchronous calls reduces IPC.

One benchmark per ``max_batch`` setting; each round streams a fixed
number of void calls over a UNIX-domain connection and fences with one
synchronous call.  ``max_batch=1`` is the unbatched baseline.

``python -m repro.bench batching`` prints the comparison table.
"""

import pytest

from repro.bench.scenarios import COUNTER_SOURCE, CounterIface
from repro.client import ClamClient
from repro.server import ClamServer
from benchmarks.conftest import per_op

CALLS = 200


@pytest.fixture
def batched_counter_factory(bench_loop, tmp_path):
    made = []

    def make(max_batch: int):
        async def setup():
            server = ClamServer()
            address = await server.start(f"unix://{tmp_path}/batch{max_batch}.sock")
            client = await ClamClient.connect(
                address, max_batch=max_batch, flush_delay=None
            )
            await client.load_module("counter", COUNTER_SOURCE)
            counter = await client.create(CounterIface)
            return server, client, counter

        server, client, counter = bench_loop.run_until_complete(setup())
        made.append((server, client))
        return client, counter

    yield make

    async def teardown():
        for server, client in made:
            await client.close()
            await server.shutdown()

    bench_loop.run_until_complete(teardown())


@pytest.mark.parametrize("max_batch", [1, 4, 16, 64, 256])
def test_batched_void_calls(benchmark, bench_loop, batched_counter_factory, max_batch):
    client, counter = batched_counter_factory(max_batch)

    async def stream():
        for _ in range(CALLS):
            await counter.add(1)
        await client.sync()

    benchmark(lambda: bench_loop.run_until_complete(stream()))
    per_op(benchmark, CALLS)
    benchmark.extra_info["frames_sent"] = client.rpc.batch.frames_sent
    benchmark.extra_info["calls_queued"] = client.rpc.batch.calls_queued


def test_batching_reduces_frames_and_time(benchmark, bench_loop, batched_counter_factory):
    """The §3.4 claim as an assertion: batched beats unbatched on both
    frame count and wall time."""
    import time

    results = {}

    def run_both():
        for max_batch in (1, 64):
            client, counter = batched_counter_factory(max_batch)

            async def stream():
                for _ in range(CALLS):
                    await counter.add(1)
                await client.sync()

            bench_loop.run_until_complete(stream())  # warmup
            frames_before = client.rpc.batch.frames_sent
            start = time.perf_counter()
            bench_loop.run_until_complete(stream())
            elapsed = time.perf_counter() - start
            frames = client.rpc.batch.frames_sent - frames_before
            results[max_batch] = (elapsed, frames)

    benchmark.pedantic(run_both, rounds=1, iterations=1)
    unbatched_time, unbatched_frames = results[1]
    batched_time, batched_frames = results[64]
    assert batched_frames < unbatched_frames / 10
    assert batched_time < unbatched_time
    benchmark.extra_info["unbatched_frames"] = unbatched_frames
    benchmark.extra_info["batched_frames"] = batched_frames
    benchmark.extra_info["speedup"] = round(unbatched_time / batched_time, 2)
