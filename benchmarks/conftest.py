"""Shared fixtures for the benchmark suite.

Each benchmark owns a private event loop: pytest-benchmark drives a
synchronous callable, which runs a *batch* of N operations on the
loop; per-operation cost is recorded in ``extra_info`` so the JSON
output carries the Figure 5.1-comparable number.
"""

from __future__ import annotations

import asyncio

import pytest


@pytest.fixture
def bench_loop():
    loop = asyncio.new_event_loop()
    try:
        yield loop
    finally:
        # Drain anything still scheduled before closing.
        pending = asyncio.all_tasks(loop)
        for task in pending:
            task.cancel()
        if pending:
            loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        loop.close()


def per_op(benchmark, batch: int) -> None:
    """Record the per-operation cost computed from the measured mean."""
    benchmark.extra_info["batch"] = batch
    if benchmark.stats is None:  # --benchmark-disable smoke runs
        return
    benchmark.extra_info["per_op_us"] = benchmark.stats.stats.mean / batch * 1e6
