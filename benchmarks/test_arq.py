"""Substrate ablation: go-back-N ARQ goodput vs window and loss.

``python -m repro.bench arq`` prints the full table.
"""

import pytest

from repro.bench.arq_bench import _measure_case
from benchmarks.conftest import per_op

FRAMES = 100


@pytest.mark.parametrize("drop_every_nth", [0, 5, 3], ids=["lossless", "loss-1in5", "loss-1in3"])
@pytest.mark.parametrize("window", [1, 4, 16])
def test_arq_goodput(benchmark, bench_loop, window, drop_every_nth):
    retransmissions = []

    def run_case():
        result = bench_loop.run_until_complete(
            _measure_case(window, drop_every_nth, FRAMES)
        )
        retransmissions.append(result.retransmissions)

    benchmark.pedantic(run_case, rounds=3, iterations=1)
    per_op(benchmark, FRAMES)
    benchmark.extra_info["retransmissions"] = retransmissions[-1]


def test_window_helps_under_loss(benchmark, bench_loop):
    """Stop-and-wait pays a timeout per loss; a window amortizes it."""
    results = {}

    def run_pair():
        for window in (1, 16):
            results[window] = bench_loop.run_until_complete(
                _measure_case(window, 3, FRAMES)
            )

    benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert results[16].per_frame_us < results[1].per_frame_us
