"""Marshalling microbenchmarks: the XDR layer under every bundler.

Not a paper table; isolates the codec so regressions in Fig 5.1 rows
can be attributed (wire time vs marshalling time).
"""

from dataclasses import dataclass


from repro.bundlers import BundlerRegistry
from repro.bundlers.auto import structural_resolver
from repro.xdr import XdrStream
from benchmarks.conftest import per_op

ITERS = 2000


@dataclass
class Point:
    x: int
    y: int
    z: int


def registry():
    reg = BundlerRegistry()
    reg.add_resolver(structural_resolver)
    return reg


def test_int_roundtrip(benchmark):
    def many():
        for i in range(ITERS):
            enc = XdrStream.encoder()
            enc.xint(i % 1000)
            XdrStream.decoder(enc.getvalue()).xint()

    benchmark(many)
    per_op(benchmark, ITERS)


def test_string_roundtrip(benchmark):
    text = "window-manager-event"

    def many():
        for _ in range(ITERS):
            enc = XdrStream.encoder()
            enc.xstring(text)
            XdrStream.decoder(enc.getvalue()).xstring()

    benchmark(many)
    per_op(benchmark, ITERS)


def test_auto_struct_roundtrip(benchmark):
    bundler = registry().bundler_for(Point)
    point = Point(1, 2, 3)

    def many():
        for _ in range(ITERS):
            enc = XdrStream.encoder()
            bundler(enc, point)
            bundler(XdrStream.decoder(enc.getvalue()), None)

    benchmark(many)
    per_op(benchmark, ITERS)


def test_auto_list_of_structs_roundtrip(benchmark):
    bundler = registry().bundler_for(list[Point])
    points = [Point(i, i, i) for i in range(16)]
    iters = ITERS // 16

    def many():
        for _ in range(iters):
            enc = XdrStream.encoder()
            bundler(enc, points)
            bundler(XdrStream.decoder(enc.getvalue()), None)

    benchmark(many)
    per_op(benchmark, iters)


def test_user_bundler_vs_auto(benchmark):
    """Fig 3.2-style hand-written bundler against the derived one."""

    def pt_bundler(stream, p, *extra):
        if p is None and stream.decoding:
            p = Point(0, 0, 0)
        p.x = stream.xshort(p.x)
        p.y = stream.xshort(p.y)
        p.z = stream.xshort(p.z)
        return p

    point = Point(4, 5, 6)

    def many():
        for _ in range(ITERS):
            enc = XdrStream.encoder()
            pt_bundler(enc, point)
            pt_bundler(XdrStream.decoder(enc.getvalue()), None)

    benchmark(many)
    per_op(benchmark, ITERS)
