"""Figure 5.1: procedure call costs across the nine configurations.

One benchmark per table row.  Each measured callable runs a batch of
calls (size tuned to the row's latency); ``extra_info['per_op_us']``
is the per-call cost to put beside the paper's µs column, and
``extra_info['paper_us']`` carries the paper's number.

``python -m repro.bench fig51`` prints the whole table at once.
"""

import pytest

from repro.bench.scenarios import FIG51_ROWS, prepare_scenario
from benchmarks.conftest import per_op

#: Smaller batches than the standalone harness: pytest-benchmark adds
#: its own rounds.
BATCHES = {
    "static": 5000,
    "dyn_dyn": 5000,
    "upcall_local": 1000,
    "call_unix": 100,
    "upcall_unix": 100,
    "call_tcp": 100,
    "upcall_tcp": 100,
    "call_wan": 20,
    "upcall_wan": 20,
}


@pytest.mark.parametrize("row", FIG51_ROWS, ids=[r.key for r in FIG51_ROWS])
def test_fig51_row(benchmark, bench_loop, row, tmp_path):
    run_n, cleanup = bench_loop.run_until_complete(
        prepare_scenario(row.key, str(tmp_path))
    )
    batch = BATCHES[row.key]
    try:
        bench_loop.run_until_complete(run_n(batch // 10 or 1))  # warmup
        benchmark(lambda: bench_loop.run_until_complete(run_n(batch)))
    finally:
        bench_loop.run_until_complete(cleanup())
    benchmark.extra_info["paper_us"] = row.paper_us
    benchmark.extra_info["label"] = row.label
    per_op(benchmark, batch)


def test_fig51_shape(benchmark, bench_loop, tmp_path):
    """The paper's qualitative claims, asserted after measuring all rows:

    - remote calls cost orders of magnitude more than local calls;
    - a dynamically loaded call costs about a static call;
    - TCP > UNIX domain; different machines > same machine;
    - remote upcalls cost about what remote calls do.
    """
    import time

    costs = {}

    def measure_all_rows():
        for key, batch in BATCHES.items():
            run_n, cleanup = bench_loop.run_until_complete(
                prepare_scenario(key, str(tmp_path))
            )
            try:
                bench_loop.run_until_complete(run_n(batch // 10 or 1))
                best = float("inf")
                for _ in range(3):
                    start = time.perf_counter()
                    bench_loop.run_until_complete(run_n(batch))
                    best = min(best, (time.perf_counter() - start) / batch)
            finally:
                bench_loop.run_until_complete(cleanup())
            costs[key] = best * 1e6

    benchmark.pedantic(measure_all_rows, rounds=1, iterations=1)
    benchmark.extra_info.update({k: round(v, 2) for k, v in costs.items()})

    local_max = max(costs["static"], costs["dyn_dyn"], costs["upcall_local"])
    assert costs["call_unix"] > 3 * local_max
    assert 0.2 < costs["dyn_dyn"] / costs["static"] < 5
    # Modern loopback TCP sits within noise of AF_UNIX; require the
    # transport average not to be *cheaper* beyond noise.
    assert (costs["call_tcp"] + costs["upcall_tcp"]) > 0.8 * (
        costs["call_unix"] + costs["upcall_unix"]
    )
    assert costs["call_wan"] > costs["call_tcp"]
    assert costs["upcall_wan"] > costs["upcall_tcp"]
    assert 0.4 < costs["upcall_unix"] / costs["call_unix"] < 2.5
    assert 0.4 < costs["upcall_tcp"] / costs["call_tcp"] < 2.5
