"""§4.4 ablations: channel layout and the upcall-concurrency relaxation.

``python -m repro.bench upcalls`` prints both tables.
"""

import pytest

from repro.bench.upcall_bench import (
    _measure_channels_case,
    measure_concurrency,
)


@pytest.mark.parametrize("rpc_load", [False, True], ids=["idle", "under-load"])
@pytest.mark.parametrize("channels", ["two", "one"])
def test_channel_layout(benchmark, bench_loop, channels, rpc_load, tmp_path):
    results = []

    def one_case():
        results.append(
            bench_loop.run_until_complete(
                _measure_channels_case(
                    channels, rpc_load, str(tmp_path), upcalls=100
                )
            )
        )

    benchmark.pedantic(one_case, rounds=3, iterations=1)
    best = min(r.per_upcall_us for r in results)
    benchmark.extra_info["per_upcall_us"] = round(best, 1)
    benchmark.extra_info["connections"] = results[-1].connections


def test_concurrency_relaxation(benchmark, bench_loop, tmp_path):
    results = []

    def sweep_limits():
        results.extend(
            bench_loop.run_until_complete(
                measure_concurrency(str(tmp_path), burst=16)
            )
        )

    benchmark.pedantic(sweep_limits, rounds=1, iterations=1)
    by_limit = {r.max_active: r.total_ms for r in results}
    benchmark.extra_info.update({f"k{k}_ms": round(v, 1) for k, v in by_limit.items()})
    # Relaxation must overlap the ~1ms handler latency.
    assert by_limit[8] < by_limit[1] / 2
