"""§3.1 baseline: pointer-bundling strategies on a threaded binary tree.

CLAM's single-object default and a hand-written bundler stay O(1) as
the tree grows; the rpcgen-style transitive closure pays for the whole
structure.  ``python -m repro.bench bundlers`` prints the table.

Also: the compiled-plan fast path (one ``struct.Struct`` per record)
against the interpreted field walk it replaces, with the ≥2x
pointer-free-record claim asserted.
"""

import dataclasses
import time

import pytest

from repro.bench.bundlers_bench import STRATEGIES, build_tree
from repro.bundlers.auto import derive_bundler
from repro.bundlers.compiled import plan_for
from repro.xdr import XdrStream
from benchmarks.conftest import per_op

SIZES = [15, 127, 1023]
ITERS = 50


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("strategy", list(STRATEGIES), ids=lambda s: s.split(" ")[0])
def test_bundle_roundtrip(benchmark, strategy, size):
    bundler = STRATEGIES[strategy]
    root = build_tree(size)

    def roundtrip_many():
        for _ in range(ITERS):
            enc = XdrStream.encoder()
            bundler(enc, root)
            bundler(XdrStream.decoder(enc.getvalue()), None)

    benchmark(roundtrip_many)
    enc = XdrStream.encoder()
    bundler(enc, root)
    benchmark.extra_info["wire_bytes"] = len(enc.getvalue())
    per_op(benchmark, ITERS)


@dataclasses.dataclass
class _Reading:
    sensor: int
    seq: int
    value: float
    scale: float


_RECORDS = [_Reading(i, i * 2, i * 0.5, 1.5) for i in range(100)]


def _roundtrip_records(bundler):
    enc = XdrStream.encoder()
    enc.xarray(bundler, _RECORDS)
    data = enc.getvalue()
    enc.release()
    XdrStream.decoder(data).xarray(bundler)


@pytest.mark.parametrize("path", ["compiled", "interpreted"])
def test_record_bundling(benchmark, path):
    """Pointer-free record marshalling: compiled plan vs field walk."""
    bundler = derive_bundler(_Reading)
    assert plan_for(bundler) is not None  # the fast path must engage
    if path == "interpreted":
        bundler = bundler.interpreted

    def roundtrip_many():
        for _ in range(ITERS):
            _roundtrip_records(bundler)

    benchmark(roundtrip_many)
    per_op(benchmark, ITERS * len(_RECORDS))


def test_compiled_plan_speedup(benchmark):
    """The headline claim: ≥2x on pointer-free record bundling."""
    compiled = derive_bundler(_Reading)
    interpreted = compiled.interpreted

    def measure(bundler):
        best = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            for _ in range(ITERS):
                _roundtrip_records(bundler)
            best = min(best, time.perf_counter() - start)
        return best

    results = {}

    def run():
        results["compiled"] = measure(compiled)
        results["interpreted"] = measure(interpreted)

    benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = results["interpreted"] / results["compiled"]
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup >= 2.0


def test_closure_grows_referent_does_not(benchmark):
    """The §3.1 argument as an assertion: closure cost scales with the
    tree; the single-object bundler's does not."""
    import time

    def measure(strategy, size):
        bundler = STRATEGIES[strategy]
        root = build_tree(size)
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for _ in range(ITERS):
                enc = XdrStream.encoder()
                bundler(enc, root)
                bundler(XdrStream.decoder(enc.getvalue()), None)
            best = min(best, time.perf_counter() - start)
        return best

    results = {}

    def run():
        for strategy in STRATEGIES:
            results[strategy] = (
                measure(strategy, 15),
                measure(strategy, 1023),
            )

    benchmark.pedantic(run, rounds=1, iterations=1)
    closure_small, closure_big = results["closure (rpcgen)"]
    referent_small, referent_big = results["referent (CLAM default)"]
    assert closure_big / closure_small > 10      # scales with the tree
    assert referent_big / referent_small < 3     # stays flat
    assert closure_big > referent_big * 20       # the penalty itself
