"""§3.1 baseline: pointer-bundling strategies on a threaded binary tree.

CLAM's single-object default and a hand-written bundler stay O(1) as
the tree grows; the rpcgen-style transitive closure pays for the whole
structure.  ``python -m repro.bench bundlers`` prints the table.
"""

import pytest

from repro.bench.bundlers_bench import STRATEGIES, build_tree
from repro.xdr import XdrStream
from benchmarks.conftest import per_op

SIZES = [15, 127, 1023]
ITERS = 50


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("strategy", list(STRATEGIES), ids=lambda s: s.split(" ")[0])
def test_bundle_roundtrip(benchmark, strategy, size):
    bundler = STRATEGIES[strategy]
    root = build_tree(size)

    def roundtrip_many():
        for _ in range(ITERS):
            enc = XdrStream.encoder()
            bundler(enc, root)
            bundler(XdrStream.decoder(enc.getvalue()), None)

    benchmark(roundtrip_many)
    enc = XdrStream.encoder()
    bundler(enc, root)
    benchmark.extra_info["wire_bytes"] = len(enc.getvalue())
    per_op(benchmark, ITERS)


def test_closure_grows_referent_does_not(benchmark):
    """The §3.1 argument as an assertion: closure cost scales with the
    tree; the single-object bundler's does not."""
    import time

    def measure(strategy, size):
        bundler = STRATEGIES[strategy]
        root = build_tree(size)
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for _ in range(ITERS):
                enc = XdrStream.encoder()
                bundler(enc, root)
                bundler(XdrStream.decoder(enc.getvalue()), None)
            best = min(best, time.perf_counter() - start)
        return best

    results = {}

    def run():
        for strategy in STRATEGIES:
            results[strategy] = (
                measure(strategy, 15),
                measure(strategy, 1023),
            )

    benchmark.pedantic(run, rounds=1, iterations=1)
    closure_small, closure_big = results["closure (rpcgen)"]
    referent_small, referent_big = results["referent (CLAM default)"]
    assert closure_big / closure_small > 10      # scales with the tree
    assert referent_big / referent_small < 3     # stays flat
    assert closure_big > referent_big * 20       # the penalty itself
