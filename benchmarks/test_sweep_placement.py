"""§2.1 experiment: sweep-layer placement, server vs client.

One benchmark per placement: a full drag (fixed number of motion
events) with input originating at the server's device.  Server
placement crosses the address space once per drag; client placement
once per event plus drawing traffic.

``python -m repro.bench sweep`` prints the comparison table.
"""

import pytest

from repro.bench.sweep_bench import _run_drag
from benchmarks.conftest import per_op

STEPS = 50


@pytest.mark.parametrize("placement", ["server", "client"])
def test_drag(benchmark, bench_loop, placement, tmp_path):
    crossings = []

    def one_drag():
        result = bench_loop.run_until_complete(
            _run_drag(placement, STEPS, str(tmp_path))
        )
        crossings.append(result.upcall_crossings)

    benchmark(one_drag)
    per_op(benchmark, STEPS)
    benchmark.extra_info["upcall_crossings_per_drag"] = crossings[-1]


def test_server_placement_crosses_once(benchmark, bench_loop, tmp_path):
    """The qualitative half of §2.1, asserted."""
    results = {}

    def run_both():
        for placement in ("server", "client"):
            results[placement] = bench_loop.run_until_complete(
                _run_drag(placement, STEPS, str(tmp_path))
            )

    benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert results["server"].upcall_crossings == 1
    assert results["client"].upcall_crossings >= STEPS
    # And the per-event cost reflects the crossings.
    assert results["client"].per_event_us > results["server"].per_event_us
