"""The zero-overhead contract of the tracing facility.

An unsubscribed tracer's ``span``/``point`` must short-circuit before
building event objects or reading clocks — callers leave tracing
compiled in on every hot path (calls, batches, upcalls) precisely
because it costs ~a counter bump when nobody is watching.  The
benchmarks put a number on both sides of the contract; the plain test
asserts the ordering so a regression fails the suite, not just the
eyeball.
"""

import time

from repro.trace import KIND_CALL, Tracer

SPANS = 2000


def _run_spans(tracer: Tracer, n: int) -> None:
    for _ in range(n):
        with tracer.span(KIND_CALL, "op"):
            pass


def _time_spans(tracer: Tracer, n: int) -> float:
    start = time.perf_counter()
    _run_spans(tracer, n)
    return time.perf_counter() - start


def _record_per_span(benchmark):
    if benchmark.stats is None:  # --benchmark-disable smoke runs
        return
    benchmark.extra_info["per_span_us"] = (
        benchmark.stats.stats.mean / SPANS * 1e6
    )


def test_span_inactive(benchmark):
    tracer = Tracer()
    benchmark(lambda: _run_spans(tracer, SPANS))
    _record_per_span(benchmark)


def test_span_active(benchmark):
    tracer = Tracer()
    tracer.subscribe(lambda event: None)
    benchmark(lambda: _run_spans(tracer, SPANS))
    _record_per_span(benchmark)


def test_inactive_spans_are_cheaper_than_active(benchmark):
    """The contract itself: with no subscriber a span must cost less
    than a subscribed one (it skips two event constructions and three
    clock reads).  Best-of-5 on each side damps scheduler noise."""
    inactive, active = Tracer(), Tracer()
    active.subscribe(lambda event: None)
    _run_spans(inactive, SPANS)  # warm both paths
    _run_spans(active, SPANS)
    inactive_s = min(_time_spans(inactive, SPANS) for _ in range(5))
    active_s = min(_time_spans(active, SPANS) for _ in range(5))
    assert inactive_s < active_s
    benchmark.extra_info["inactive_per_span_us"] = inactive_s / SPANS * 1e6
    benchmark.extra_info["active_per_span_us"] = active_s / SPANS * 1e6
    benchmark(lambda: _run_spans(inactive, SPANS))


def test_point_inactive_only_counts(benchmark):
    tracer = Tracer()
    benchmark(lambda: tracer.point(KIND_CALL, "mark"))
    assert tracer.counters[(KIND_CALL, "point")] > 0
