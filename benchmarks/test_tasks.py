"""§4.4 ablation: task reuse vs a fresh task per input event.

``python -m repro.bench tasks`` prints the comparison table.
"""

import asyncio


from repro.tasks import Task, TaskPool
from benchmarks.conftest import per_op

EVENTS = 500


async def _event_job():
    await asyncio.sleep(0)


def test_pooled_reused_tasks(benchmark, bench_loop):
    async def run_events():
        pool = TaskPool(max_tasks=1, name="bench")
        for _ in range(EVENTS):
            await pool.run(_event_job)
        spawned = pool.workers_spawned
        await pool.close()
        return spawned

    spawned = None

    def round_fn():
        nonlocal spawned
        spawned = bench_loop.run_until_complete(run_events())

    benchmark(round_fn)
    assert spawned == 1
    per_op(benchmark, EVENTS)
    benchmark.extra_info["tasks_created"] = spawned


def test_fresh_task_per_event(benchmark, bench_loop):
    async def run_events():
        for _ in range(EVENTS):
            await Task.spawn(_event_job()).result()

    benchmark(lambda: bench_loop.run_until_complete(run_events()))
    per_op(benchmark, EVENTS)
    benchmark.extra_info["tasks_created"] = EVENTS
