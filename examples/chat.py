"""A chat room: server-initiated fan-out to many clients (paper §1).

"Servers, however, often need the ability to initiate asynchronous
and independent actions" — the canonical modern case is push
messaging.  The room lives in the server (dynamically loaded, as
always); each client joins by handing over a procedure pointer, and
every posted message fans out as one distributed upcall per member.

Run with::

    python examples/chat.py
"""

import asyncio

from repro import ClamClient, ClamServer, RemoteInterface

ROOM_SOURCE = '''
from typing import Callable

from repro.stubs import RemoteInterface


class ChatRoom(RemoteInterface):
    """A shared room: members receive every post via upcall."""

    def __init__(self):
        self.members = {}
        self.history = []

    def join(self, nick: str, receive: Callable[[str, str], None]) -> int:
        self.members[nick] = receive
        self.history.append((nick, "*joined*"))
        return len(self.members)

    def leave(self, nick: str) -> bool:
        return self.members.pop(nick, None) is not None

    async def post(self, nick: str, text: str) -> int:
        self.history.append((nick, text))
        delivered = 0
        for member, receive in list(self.members.items()):
            if member != nick:
                await receive(nick, text)
                delivered += 1
        return delivered

    def message_count(self) -> int:
        return len(self.history)
'''

from typing import Callable


class ChatRoom(RemoteInterface):
    def join(self, nick: str, receive: Callable[[str, str], None]) -> int: ...
    def leave(self, nick: str) -> bool: ...
    def post(self, nick: str, text: str) -> int: ...
    def message_count(self) -> int: ...


async def main() -> None:
    server = ClamServer()
    address = await server.start("memory://chat")

    # First client creates the room and publishes it for the others.
    alice = await ClamClient.connect(address)
    await alice.load_module("chatroom", ROOM_SOURCE)
    room_a = await alice.create(ChatRoom)
    await alice.publish("room", room_a)

    bob = await ClamClient.connect(address)
    carol = await ClamClient.connect(address)
    room_b = await bob.lookup(ChatRoom, "room")
    room_c = await carol.lookup(ChatRoom, "room")

    def inbox(owner: str, log: list):
        def receive(nick: str, text: str) -> None:
            log.append(f"{nick}: {text}")
            print(f"  [{owner}'s screen] {nick}: {text}")
        return receive

    logs = {"alice": [], "bob": [], "carol": []}
    await room_a.join("alice", inbox("alice", logs["alice"]))
    await room_b.join("bob", inbox("bob", logs["bob"]))
    await room_c.join("carol", inbox("carol", logs["carol"]))
    print("three clients joined\n")

    assert await room_a.post("alice", "anyone seen the 1988 proceedings?") == 2
    assert await room_b.post("bob", "on the microvax in the lab") == 2
    await room_c.leave("carol")
    assert await room_c.post("carol", "(left, but still can post)") == 2
    assert await room_a.post("alice", "carol left, fan-out shrinks") == 1

    print(f"\nmessages in room history: {await room_a.message_count()}")
    print(f"bob received {len(logs['bob'])}, "
          f"carol received {len(logs['carol'])} (left early)")
    print(f"upcalls pushed to alice's process: {alice.upcalls_handled}")

    for client in (alice, bob, carol):
        await client.close()
    await server.shutdown()


if __name__ == "__main__":
    asyncio.run(main())
