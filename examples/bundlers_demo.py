"""Bundlers: Figures 3.1 and 3.2, runnable.

Shows the three ways a parameter gets its bundler (paper §3.1–§3.3):

1. automatic derivation — "the compiler has sufficient information to
   generate the stubs directly";
2. the typedef form — register a bundler once for a type;
3. the in-place form — ``Annotated[T, In(bundler, ...)]``, the
   analogue of ``const Point* thept @ pt_bundler()``;

and the two pointer strategies of §3.1 on a threaded binary tree.

Run with::

    python examples/bundlers_demo.py
"""

from dataclasses import dataclass
from typing import Annotated, Optional

from repro import Bundled, In
from repro.bundlers import BundlerRegistry, closure_bundler, referent_bundler
from repro.bundlers.auto import structural_resolver
from repro.stubs import MethodSignature
from repro.xdr import XdrStream


# --- Figure 3.1's Point struct ------------------------------------------------

@dataclass
class Point:
    x: int
    y: int
    z: int


def pt_bundler(stream, p, *extra):
    """Figure 3.2, translated.  One body, both directions: on a DECODE
    stream it allocates and reads; on an ENCODE stream it writes."""
    if p is None and stream.decoding:
        p = Point(0, 0, 0)
    p.x = stream.xshort(p.x)
    p.y = stream.xshort(p.y)
    p.z = stream.xshort(p.z)
    return p


def pt_array_bundler(stream, pts, number):
    """Figure 3.1's array bundler: the length comes from the sibling
    parameter ``number`` — "we do not limit the number of parameters
    to bundlers"."""
    if stream.encoding:
        assert len(pts) == number
        for p in pts:
            pt_bundler(stream, p)
        return pts
    return [pt_bundler(stream, None) for _ in range(number)]


@dataclass
class Node:
    """A threaded binary tree node (module-level so the forward
    references in its own annotations resolve)."""

    key: int
    left: Optional["Node"] = None
    right: Optional["Node"] = None
    thread: Optional["Node"] = None


def show(label: str, data: bytes) -> None:
    print(f"  {label:<42} {len(data):>3} bytes: {data.hex(' ')}")


def main() -> None:
    registry = BundlerRegistry()
    registry.add_resolver(structural_resolver)

    print("1. automatic derivation (pointer-free struct):")
    auto = registry.bundler_for(Point)
    enc = XdrStream.encoder()
    auto(enc, Point(1, 2, 3))
    show("auto-derived Point (3 x int64)", enc.getvalue())
    decoded = auto(XdrStream.decoder(enc.getvalue()), None)
    print(f"  decodes back to {decoded}")

    print("\n2. the typedef form — register once, used everywhere:")
    registry.register(Point, pt_bundler)
    enc = XdrStream.encoder()
    registry.bundler_for(Point)(enc, Point(1, 2, 3))
    show("pt_bundler Point (3 x short-as-int32)", enc.getvalue())
    print("  (the hand-written bundler packs the shorts the C struct had)")

    print("\n3. the in-place form on a real declaration (Figure 3.1):")

    class Graphics3D:
        def draw_point(self, thept: Annotated[Point, In(pt_bundler)]) -> None: ...
        def draw_points(
            self,
            number: int,
            pts: Annotated[list[Point], In(pt_array_bundler, "number")],
        ) -> None: ...
        def get_cursor_pos(self) -> Annotated[Point, Bundled(pt_bundler)]: ...

    signature = MethodSignature.from_callable(Graphics3D.draw_points)
    bound = signature.bind(registry)
    pts = [Point(i, i * 2, i * 3) for i in range(3)]
    request = bound.bundle_request({"number": 3, "pts": pts})
    show("draw_points(3, [...]) request payload", request)
    values = bound.unbundle_request(request)
    print(f"  server stub unbundles to number={values['number']}, "
          f"pts={values['pts']}")

    print("\n4. the two pointer strategies of S3.1 (threaded binary tree):")

    #        2
    #       / \        (threads: 0->1->2->3->4, cyclic structure)
    #      1   4
    #     /   /
    #    0   3
    nodes = [Node(k) for k in range(5)]
    nodes[2].left, nodes[2].right = nodes[1], nodes[4]
    nodes[1].left, nodes[4].left = nodes[0], nodes[3]
    for a, b in zip(nodes, nodes[1:]):
        a.thread = b
    root = nodes[2]

    referent = referent_bundler(Node)
    enc = XdrStream.encoder()
    referent(enc, root)
    show("referent (CLAM default): just the node", enc.getvalue())

    closure = closure_bundler(Node)
    enc = XdrStream.encoder()
    closure(enc, root)
    show("closure (rpcgen): the whole graph", enc.getvalue())
    back = closure(XdrStream.decoder(enc.getvalue()), None)
    print(f"  closure round-trips the cycle: root.thread.key = "
          f"{back.thread.key}, in-order threads intact")

    print("\nthe trade-off: the closure is correct for callers that walk "
          "the tree,\nbut pays for every node; the referent is O(1) and "
          "nils the pointers.\n`python -m repro.bench bundlers` quantifies it.")


if __name__ == "__main__":
    main()
