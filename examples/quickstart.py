"""Quickstart: a CLAM server, a client, dynamic loading, and an upcall.

Run with::

    python examples/quickstart.py

The flow is §2 of the paper in miniature: start a server that knows
nothing about your application, ship application code into it, call
that code with RPCs, and hand it a procedure so it can call *you*
back — a distributed upcall.
"""

import asyncio

from repro import ClamClient, ClamServer

# The module we will dynamically load into the server.  Any
# self-contained Python source defining RemoteInterface subclasses
# works; here it is inline for readability.
THERMOSTAT_SOURCE = '''
from typing import Callable

from repro.stubs import RemoteInterface


class Thermostat(RemoteInterface):
    """Server-resident state with an asynchronous alert path."""

    def __init__(self):
        self.temperature = 20
        self.alarms = []

    def set_temperature(self, value: int) -> None:
        # No return value: the client stub batches these calls (S3.4).
        self.temperature = value

    def read(self) -> int:
        return self.temperature

    def watch(self, threshold: int, alarm: Callable[[int], None]) -> bool:
        # `alarm` is the client's procedure pointer.  Inside the
        # server it arrives as a RemoteUpcall (S3.5.2) and is stored
        # like any local callable (S4.1).
        self.alarms.append((threshold, alarm))
        return True

    async def heat(self, amount: int) -> int:
        self.temperature += amount
        for threshold, alarm in self.alarms:
            if self.temperature > threshold:
                await alarm(self.temperature)  # the distributed upcall
        return self.temperature
'''


# The client-side declaration: same signatures, no bodies.  Proxy
# stubs are generated from these annotations — no IDL (S3.2).
from typing import Callable

from repro import RemoteInterface


class Thermostat(RemoteInterface):
    def set_temperature(self, value: int) -> None: ...
    def read(self) -> int: ...
    def watch(self, threshold: int, alarm: Callable[[int], None]) -> bool: ...
    def heat(self, amount: int) -> int: ...


async def main() -> None:
    # 1. A server.  memory:// keeps this single-process; swap in
    #    unix:///tmp/clam.sock or tcp://127.0.0.1:4047 for real IPC.
    server = ClamServer()
    address = await server.start("memory://quickstart")
    print(f"server listening at {address}")

    # 2. A client: two channels (RPC + upcalls) behind one object.
    client = await ClamClient.connect(address)
    print(f"connected; session {client.session[:8]}...")

    # 3. Dynamic loading (S2): ship the source, instantiate remotely.
    exported = await client.load_module("thermostat", THERMOSTAT_SOURCE)
    print(f"loaded module exporting {exported}")
    thermostat = await client.create(Thermostat)

    # 4. RPCs.  set_temperature returns nothing, so these calls are
    #    batched (S3.4); read() is synchronous and flushes them.
    await thermostat.set_temperature(18)
    print(f"temperature is {await thermostat.read()}")

    # 5. A distributed upcall: pass a plain function to the server.
    alerts = []

    def on_alarm(value: int) -> None:
        alerts.append(value)
        print(f"  upcall from server: temperature hit {value}")

    await thermostat.watch(21, on_alarm)
    for _ in range(4):
        await thermostat.heat(2)
    print(f"client received {len(alerts)} alert upcalls: {alerts}")

    await client.close()
    await server.shutdown()
    print("done")


if __name__ == "__main__":
    asyncio.run(main())
