"""Figure 4.1, narrated: S, BaseW, W1, W2, user1, user2.

The registration scenario of §4.2, exactly as the paper tells it:

- the server creates screen S and base window BaseW (which registers
  its mouse procedure with S);
- user2 is dynamically loaded into the server, creates W2, and
  registers user2::mouse with it — all registrations local;
- user1 lives in the client, creates W1 over the wire, and registers
  user1::mouse — "the parameter bundler will automatically translate
  the procedure pointer into a pointer to the RUC class";
- mouse events then route: in W1 → distributed upcall to the client;
  in W2 → local upcall inside the server; on the background → BaseW.

Run with::

    python examples/figure_4_1_registration.py
"""

import asyncio

from repro import ClamClient, ClamServer, RemoteInterface
from repro.wm import BaseWindow, EventKind, InputEvent, Screen
from repro.wm.geometry import Rect

USER2_SOURCE = '''
from repro.stubs import RemoteInterface
from repro.wm.events import InputEvent
from repro.wm.geometry import Rect
from repro.wm.window import BaseWindow


class User2(RemoteInterface):
    """Fig 4.1's user2: loaded into the server, owns W2."""

    def __init__(self):
        self.hits = []
        self.window = None

    async def setup(self, base: BaseWindow, rect: Rect) -> int:
        self.window = await base.create_window(rect)
        self.window.postinput(self.mouse)       # local registration
        return self.window.window_id()

    def mouse(self, event: InputEvent) -> None:
        self.hits.append((event.x, event.y))

    def hit_count(self) -> int:
        return len(self.hits)
'''


class User2(RemoteInterface):
    def setup(self, base: BaseWindow, rect: Rect) -> int: ...
    def hit_count(self) -> int: ...


def press(x: int, y: int, seq: int) -> InputEvent:
    return InputEvent(EventKind.MOUSE_DOWN, x, y, button=1, seq=seq)


async def main() -> None:
    print("server: creating S (screen) and BaseW (base window)")
    server = ClamServer()
    screen = Screen(44, 12)
    base = BaseWindow(screen)  # registers BaseW.mouse with S.postinput
    server.publish("screen", screen)
    server.publish("base", base)
    address = await server.start("memory://figure-4-1")

    client = await ClamClient.connect(address)
    screen_proxy = await client.lookup(Screen, "screen")
    base_proxy = await client.lookup(BaseWindow, "base")

    print("server: loading user2; U2 creates W2 and registers "
          "user2::mouse (local upcall path)")
    await client.load_module("user2", USER2_SOURCE)
    u2 = await client.create(User2)
    await u2.setup(base_proxy, Rect(24, 2, 14, 8))

    print("client: U1 creates W1 and registers user1::mouse "
          "(distributed upcall path)")
    u1_hits = []

    def user1_mouse(event: InputEvent) -> None:
        u1_hits.append((event.x, event.y))

    w1 = await base_proxy.create_window(Rect(4, 2, 14, 8))
    await w1.postinput(user1_mouse)

    print("\ninjecting three mouse presses: in W1, in W2, on the background")
    await screen_proxy.inject_input(press(8, 5, seq=1))    # inside W1
    await screen_proxy.inject_input(press(30, 5, seq=2))   # inside W2
    await screen_proxy.inject_input(press(21, 11, seq=3))  # background

    print(f"  U1 (client)  saw: {u1_hits}")
    print(f"  U2 (server)  saw: {await u2.hit_count()} event(s)")
    print(f"  distributed upcalls that crossed the wire: "
          f"{client.upcalls_handled}")
    print(f"  events BaseW routed in total: {await base_proxy.window_count()}"
          f" windows, screen below:")
    for line in screen.render().splitlines():
        print("    |" + line + "|")

    await client.close()
    await server.shutdown()


if __name__ == "__main__":
    asyncio.run(main())
