"""A small desktop: sweep + focus + move layers composed (paper §2, §5).

"The initial use of CLAM was to build an extensible user interface
manager" — this example is that manager in miniature.  The server
knows nothing about window policy; the client loads three layers into
it (sweeping, click-to-focus, window dragging), then drives a short
session: sweep two titled windows, type into each, and drag one
across the other.

Run with::

    python examples/desktop.py
"""

import asyncio

from repro import ClamClient, ClamServer
from repro.tasks import TaskPool
from repro.wm import (
    BaseWindow,
    FocusLayer,
    InputScript,
    MoveLayer,
    Screen,
    SweepLayer,
    Window,
)
from repro.wm.geometry import Point
from repro.wm.move import DRAG_BUTTON

LAYERS_MODULE = '''
from repro.wm.focus import FocusLayer
from repro.wm.move import MoveLayer
from repro.wm.sweep import SweepLayer

__clam_exports__ = ["SweepLayer", "FocusLayer", "MoveLayer"]
'''


async def main() -> None:
    # The server app: bare screen + base window; all policy is loaded.
    server = ClamServer()
    screen = Screen(56, 16)
    screen.use_tasks(TaskPool(max_tasks=1, name="screen-input"))
    base = BaseWindow(screen)
    server.publish("screen", screen)
    server.publish("base", base)
    address = await server.start("memory://desktop")

    client = await ClamClient.connect(address)
    screen_proxy = await client.lookup(Screen, "screen")
    base_proxy = await client.lookup(BaseWindow, "base")

    print("loading the policy layers into the server...")
    exported = await client.load_module("layers", LAYERS_MODULE)
    print(f"  exported: {', '.join(sorted(exported))}")

    sweep = await client.create(SweepLayer, class_name="sweep")
    await sweep.attach(base_proxy, screen_proxy)
    focus = await client.create(FocusLayer, class_name="focus")
    await focus.attach(base_proxy)
    move = await client.create(MoveLayer, class_name="move")
    await move.attach(base_proxy)

    created = []
    windows_done = asyncio.Event()

    def on_window(rect) -> None:
        created.append(rect)
        if len(created) == 2:
            windows_done.set()

    await sweep.on_complete(on_window)

    script = InputScript()

    async def play(events) -> None:
        for event in events:
            await screen.inject_input(event)
        await screen.drain_input()

    print("sweeping out two windows...")
    await play(script.drag(Point(2, 1), Point(22, 9), steps=6))
    await play(script.drag(Point(30, 4), Point(52, 13), steps=6))
    await asyncio.wait_for(windows_done.wait(), timeout=10)

    # Title the windows through their object pointers.
    left = await base_proxy.window_at(4, 3)
    right = await base_proxy.window_at(40, 8)
    await left.set_title("shell")
    await right.set_title("editor")
    await client.sync()

    print("click-to-focus and typing...")
    from repro.wm import EventKind

    typed = {"left": [], "right": []}
    await left.postinput(
        lambda e: typed["left"].append(e.key)
        if e.kind is EventKind.KEY_DOWN else None
    )
    await right.postinput(
        lambda e: typed["right"].append(e.key)
        if e.kind is EventKind.KEY_DOWN else None
    )
    await play(script.click(5, 5) + script.type_text("ls"))
    await play(script.click(40, 8) + script.type_text("vi"))
    print(f"  left window saw keys:  {''.join(typed['left'])}")
    print(f"  right window saw keys: {''.join(typed['right'])}")
    print(f"  focused window id now: {await focus.focused_window_id()}")

    print("dragging the left window to the right, across the other...")
    await play(script.drag(Point(5, 5), Point(25, 7), steps=8, button=DRAG_BUTTON))
    print(f"  moves applied by the move layer: {await move.move_count()}")

    print("final screen:")
    for line in screen.render().splitlines():
        print("  |" + line + "|")
    print(f"upcalls that crossed to the client during the whole session: "
          f"{client.upcalls_handled}")

    await client.close()
    await server.shutdown()


if __name__ == "__main__":
    asyncio.run(main())
