"""Overload shedding and flow control (`repro.flow`).

An open-loop producer hammers a deliberately slow server twice:

1. **without admission control** — every call is accepted, the queue
   grows, and *everyone's* latency climbs with it;
2. **with admission control** — a token bucket sheds the excess
   before execution with a ``retry_after_ms`` hint, so the accepted
   calls stay fast, the shed calls fail fast, and an
   interactive-floored call jumps past the whole storm.

Along the way the batched-post flood shows the protocol-v4 credit
window bounding the server's queued-call memory.

Run with::

    python examples/overload_demo.py
"""

import asyncio
import time

from repro import ClamClient, ClamServer, RemoteInterface
from repro.errors import ServerOverloadedError
from repro.flow import PriorityClass, TokenBucket, priority_scope

SOURCE = '''
import asyncio

from repro.stubs import RemoteInterface


class Grinder(RemoteInterface):
    """Each call costs ~2ms of simulated work."""

    def __init__(self):
        self.ground = 0

    async def grind(self, value: int) -> int:
        await asyncio.sleep(0.002)
        self.ground += 1
        return self.ground

    async def grind_note(self, value: int) -> None:
        await asyncio.sleep(0.002)
        self.ground += 1
'''


class Grinder(RemoteInterface):
    def grind(self, value: int) -> int: ...
    def grind_note(self, value: int) -> None: ...


async def storm(work, n: int) -> tuple[int, int, list[float]]:
    """Fire n open-loop sync calls; return (served, shed, latencies)."""
    served = shed = 0
    latencies: list[float] = []

    async def one(i: int) -> None:
        nonlocal served, shed
        started = time.perf_counter()
        try:
            await work.grind(i)
        except ServerOverloadedError:
            shed += 1
            return
        served += 1
        latencies.append(time.perf_counter() - started)

    await asyncio.gather(*(one(i) for i in range(n)))
    return served, shed, latencies


def p95(samples: list[float]) -> float:
    return sorted(samples)[int(len(samples) * 0.95)] if samples else 0.0


async def run(slug: str, label: str, n: int, **server_kwargs) -> None:
    server = ClamServer(**server_kwargs)
    address = await server.start(f"memory://overload-{slug}")
    # Setup runs interactive-scoped so a floored bucket never sheds it.
    with priority_scope(PriorityClass.INTERACTIVE):
        client = await ClamClient.connect(address)
        await client.load_module("grinder", SOURCE)
        work = await client.create(Grinder)

    started = time.perf_counter()
    served, shed, latencies = await storm(work, n)
    elapsed = time.perf_counter() - started
    print(f"{label}:")
    print(f"  served {served}/{n}, shed {shed} "
          f"({shed / n:.0%}), wall {elapsed * 1000:.0f}ms")
    print(f"  goodput {served / elapsed:.0f} calls/s, "
          f"p95 latency of served calls {p95(latencies) * 1000:.1f}ms")

    if shed:
        # A shed is retryable (nothing executed) and carries a hint.
        with priority_scope(PriorityClass.INTERACTIVE):
            jumped = await work.grind(-1)
        print(f"  interactive-floored call served immediately (#{jumped})")

    # The credit window (protocol v4) bounds queued-post memory too.
    for i in range(200):
        try:
            await work.grind_note(i)
        except ServerOverloadedError:
            pass
    await client.flush()
    # A sync call is the §3.4 ordering fence: the server has executed
    # every batched post before it answers this.
    with priority_scope(PriorityClass.INTERACTIVE):
        await work.grind(-2)
    session = next(iter(server.sessions.values()))
    flow = session.dispatcher.flow
    print(f"  batched flood: peak in-flight {flow.max_inflight} "
          f"(credit window {server.flow.window_msgs})")

    await client.close()
    await server.shutdown()


async def main() -> None:
    n = 300
    await run("open", "no admission control", n)
    await run(
        "shed",
        "token bucket (150/s, burst 40, interactive floor)",
        n,
        admission=TokenBucket(150.0, burst=40, floor=PriorityClass.INTERACTIVE),
        credit_window=32,
    )


if __name__ == "__main__":
    asyncio.run(main())
