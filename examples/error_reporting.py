"""Error reporting through upcalls (paper §4.3).

"The CLAM server can protect itself from user bugs by catching error
signals (such as memory faults or divide by zero).  Once the server
has determined that an error exists in a dynamically loaded class, it
must decide what to do with the class.  The server can choose to
notify a client that it tried to use a faulty class."

This example loads a buggy class, watches the server catch its fault,
quarantine it, and report it to the client via an upcall — then ships
a fixed version 2 and carries on.

Run with::

    python examples/error_reporting.py
"""

import asyncio

from repro import ClamClient, ClamServer, RemoteError, RemoteInterface

BUGGY_SOURCE = '''
from repro.stubs import RemoteInterface


class Stats(RemoteInterface):
    """Version 1: divides by zero on an empty series (the user bug)."""

    def __init__(self):
        self.series = []

    def record(self, value: int) -> None:
        self.series.append(value)

    def mean(self) -> int:
        return sum(self.series) // len(self.series)   # boom when empty
'''

FIXED_SOURCE = '''
from repro.stubs import RemoteInterface


class Stats(RemoteInterface):
    """Version 2: the fix."""

    __clam_version__ = 2

    def __init__(self):
        self.series = []

    def record(self, value: int) -> None:
        self.series.append(value)

    def mean(self) -> int:
        if not self.series:
            return 0
        return sum(self.series) // len(self.series)
'''


class Stats(RemoteInterface):
    def record(self, value: int) -> None: ...
    def mean(self) -> int: ...


async def main() -> None:
    server = ClamServer(quarantine_after=1)
    address = await server.start("memory://error-reporting")
    client = await ClamClient.connect(address)

    # Register for §4.3 error-reporting upcalls before anything breaks.
    reports = []
    reported = asyncio.Event()

    def on_class_fault(class_name: str, version: int, error_type: str,
                       message: str) -> None:
        reports.append((class_name, version, error_type))
        print(f"  error upcall: class {class_name!r} v{version} raised "
              f"{error_type}: {message}")
        reported.set()

    await client.register_error_handler(on_class_fault)

    # Load the buggy class and trip the bug.
    await client.load_module("stats_v1", BUGGY_SOURCE)
    stats = await client.create(Stats)
    print("calling mean() on an empty series (the user bug):")
    try:
        await stats.mean()
    except RemoteError as exc:
        print(f"  RPC failed as expected: {exc.remote_type}")
    await asyncio.wait_for(reported.wait(), timeout=10)

    # The class is quarantined now: the server refuses further calls.
    try:
        await stats.record(5)
        await stats.mean()
    except RemoteError as exc:
        print(f"further use refused: {exc.remote_type}")

    # Ship the fix as version 2; both versions now coexist (§2.1).
    await client.load_module("stats_v2", FIXED_SOURCE)
    print(f"versions of Stats now loaded: {await client.versions_of('Stats')}")
    fixed = await client.create(Stats, version=2)
    await fixed.record(4)
    await fixed.record(8)
    print(f"v2 works: mean of [4, 8] = {await fixed.mean()}")
    print(f"v2 on empty series = {await (await client.create(Stats, version=2)).mean()}")

    await client.close()
    await server.shutdown()


if __name__ == "__main__":
    asyncio.run(main())
