"""A layered network protocol over distributed upcalls (paper §1).

"Examples of this asynchrony are when a network server needs to signal
to an upper layer in a protocol..."  This example assembles the
:mod:`repro.netproto` stack across two address spaces:

    client process                  server process
    ------------------             ----------------------------
    application layer   <-upcall-  session layer   (dynamically loaded)
                                       ^ upcall (local)
                                   transport layer (dynamically loaded)
                                       ^ upcall (local)
                                   network device  (lowest layer)

Frames arrive at the *bottom* of the server asynchronously — including
two that arrive before the stack above exists (queued, §4.1) and one
that is malformed (dropped like a bad checksum).  The loaded transport
reassembles fragments at local-upcall cost; the session layer
demultiplexes channels; only complete messages for a registered
channel cross to the client.

Run with::

    python examples/protocol_stack.py
"""

import asyncio

from repro import ClamClient, ClamServer
from repro.netproto import (
    NetworkDevice,
    SessionLayer,
    TransportLayer,
    fragment_message,
)
from repro.tasks import TaskPool

STACK_MODULE = '''
from repro.netproto.transport import TransportLayer
from repro.netproto.session import SessionLayer

__clam_exports__ = ["TransportLayer", "SessionLayer"]
'''


async def main() -> None:
    # The server app hosts only the device; everything above is loaded.
    server = ClamServer()
    device = NetworkDevice()
    device.use_tasks(TaskPool(max_tasks=1, name="device"))
    server.publish("device", device)
    address = await server.start("memory://protocol-stack")

    client = await ClamClient.connect(address)
    device_proxy = await client.lookup(NetworkDevice, "device")

    # Two frames arrive before anything is listening: queued (§4.1).
    early = fragment_message("m0", "chat", "early-bird message", chunk=8)
    for fragment in early[:2]:
        await device.pump(fragment.encode())
    print(f"{len(early[:2])} frames arrived before the stack existed "
          f"(queued by the device)")
    await device.pump("%%% line noise, not a frame %%%")

    # The client builds the stack INSIDE the server: load the layers,
    # wire them to the device by handle so per-fragment upcalls stay
    # server-local.
    await client.load_module("stack", STACK_MODULE)
    transport = await client.create(TransportLayer, class_name="netproto.transport")
    session = await client.create(SessionLayer, class_name="netproto.session")
    await transport.attach(device_proxy)
    await session.attach(transport)

    messages = []
    done = asyncio.Event()

    def application_layer(message: str) -> None:
        messages.append(message)
        print(f"  application layer received: {message!r}")
        if len(messages) == 3:
            done.set()

    await session.register_channel("chat", application_layer)

    # Interleaved fragments of two more messages arrive off the wire,
    # plus traffic for a channel nobody registered.
    frames = [f.encode() for f in early[2:]]
    a = fragment_message("m1", "chat", "the quick brown fox jumps over the lazy dog")
    b = fragment_message("m2", "chat", "distributed upcalls propagate asynchrony upward")
    noise = fragment_message("m3", "telemetry", "cpu=42%")
    for x, y in zip(a, b):
        frames.extend((x.encode(), y.encode()))
    frames.extend(f.encode() for f in (a[len(b):] or b[len(a):]))
    frames.extend(f.encode() for f in noise)
    for frame in frames:
        await device.pump(frame)
    await device.drain()

    await asyncio.wait_for(done.wait(), timeout=10)
    device_stats = device.stats()
    transport_stats = await transport.stats()
    session_stats = await session.stats()
    print(f"\ndevice: {device_stats['received']} frames received, "
          f"{device_stats['malformed']} malformed dropped")
    print(f"transport (loaded in server): {transport_stats['fragments']} "
          f"fragments reassembled into {transport_stats['completed']} messages")
    print(f"session: {session_stats['routed']} routed, "
          f"{session_stats['unrouted']} for unregistered channels dropped")
    print(f"only {client.upcalls_handled} upcalls crossed to the client "
          f"(one per complete chat message)")

    await client.close()
    await server.shutdown()


if __name__ == "__main__":
    asyncio.run(main())
