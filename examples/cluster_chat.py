"""A chat service that outgrows one server: the repro.cluster tour.

Three pieces, each an ordinary CLAM program:

1. a **directory** — a ClamServer whose one published object speaks
   ``clam.directory``; replicas advertise themselves under leases;
2. two **replicas** of a room-registry service, found through the
   directory and load-balanced by a :class:`ClusterClient`;
3. a **chat hub** carrying an :class:`UpcallGroup` — one ``post``
   fans out to every member over that member's own upcall stream.

Run with::

    python examples/cluster_chat.py
"""

import asyncio
from typing import Callable

from repro import ClamClient, ClamServer, RemoteInterface
from repro.cluster import (
    Advertiser,
    ClusterClient,
    DirectoryServer,
    UpcallGroup,
)
from repro.stubs import idempotent


# -- the replicated half: a room registry, two replicas ---------------------

class Registry(RemoteInterface):
    """Which rooms exist — replicated, read-mostly, lease-advertised."""

    __clam_class__ = "chat.registry"

    @idempotent
    def rooms(self) -> list[str]: ...
    @idempotent
    def whoami(self) -> str: ...


class RegistryImpl(Registry):
    def __init__(self, name: str, rooms: list[str]):
        self._name = name
        self._rooms = rooms

    def rooms(self) -> list[str]:
        return sorted(self._rooms)

    def whoami(self) -> str:
        return self._name


# -- the fan-out half: one hub, many members --------------------------------

class ChatHub(RemoteInterface):
    """The room itself: members join with a procedure pointer."""

    def __init__(self):
        self.group = UpcallGroup("room", queue_limit=64, slow_policy="drop")

    def join(self, nick: str, receive: Callable[[str, str], None]) -> int:
        key = self.group.subscribe(receive)
        return key

    def post(self, nick: str, text: str) -> int:
        return self.group.post(nick, text)

    async def drain(self) -> int:
        await self.group.flush()
        return self.group.delivered


class ChatHubIface(RemoteInterface):
    __clam_class__ = "ChatHub"

    def join(self, nick: str, receive: Callable[[str, str], None]) -> int: ...
    def post(self, nick: str, text: str) -> int: ...
    def drain(self) -> int: ...


async def main() -> None:
    # -- raise the cluster --------------------------------------------------
    directory = DirectoryServer()
    directory_url = await directory.start("memory://cluster-chat-dir")

    replicas, advertisers = [], []
    for i, name in enumerate(["registry-east", "registry-west"]):
        url = f"memory://cluster-chat-replica-{i}"
        server = ClamServer()
        server.publish(
            "chat.registry", RegistryImpl(name, ["lobby", "icdcs-1988"])
        )
        await server.start(url)
        advertiser = Advertiser.for_server(
            directory_url, "chat.registry", server, url, lease=5.0
        )
        await advertiser.start()
        replicas.append(server)
        advertisers.append(advertiser)
    print(f"directory up, {len(replicas)} registry replicas advertised")

    hub_server = ClamServer(degrade_upcalls=True)
    hub = ChatHub()
    hub_server.publish("chat.hub", hub)
    hub_url = await hub_server.start("memory://cluster-chat-hub")

    # -- a client finds the registry through the directory ------------------
    cluster = await ClusterClient.connect(directory_url, policy="round-robin")
    registry = await cluster.bind("chat.registry", Registry)
    rooms = await registry.rooms()
    print(f"rooms (resolved via directory): {rooms}")
    served_by = {await registry.whoami() for _ in range(4)}
    print(f"registry calls balanced across: {sorted(served_by)}")

    # -- three members join the hub; posts fan out to all of them -----------
    members = {}
    screens: dict[str, list[str]] = {}
    for nick in ("alice", "bob", "carol"):
        client = await ClamClient.connect(hub_url)
        proxy = await client.lookup(ChatHubIface, "chat.hub")
        screen: list[str] = []

        def receive(author: str, text: str, nick=nick, screen=screen) -> None:
            screen.append(f"{author}: {text}")

        await proxy.join(nick, receive)
        members[nick] = (client, proxy)
        screens[nick] = screen
    print(f"{len(members)} members joined the fan-out room")

    _, alice_proxy = members["alice"]
    await alice_proxy.post("alice", "anyone seen the 1988 proceedings?")
    await alice_proxy.post("alice", "asking for a friend")
    delivered = await alice_proxy.drain()
    print(f"[bob's screen] {screens['bob'][0]}")
    print(f"fan-out deliveries: {delivered} "
          f"({hub.group.posts} posts x {len(members)} members)")

    # -- teardown -----------------------------------------------------------
    for client, _ in members.values():
        await client.close()
    await cluster.close()
    await hub_server.shutdown()
    for advertiser in advertisers:
        await advertiser.stop()
    for server in replicas:
        await server.shutdown()
    await directory.shutdown()
    print("done")


if __name__ == "__main__":
    asyncio.run(main())
