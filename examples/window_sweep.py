"""The §2.1 sweep example: both placements of the same layer.

A CLAM server runs a screen and a base window.  The sweep layer —
the code that lets a user drag out a new window — is placed first by
dynamic loading into the server, then in the client, and the script
reports what each placement cost in address-space crossings.

Run with::

    python examples/window_sweep.py
"""

import asyncio

from repro import ClamClient, ClamServer
from repro.core import invoke
from repro.tasks import TaskPool
from repro.wm import BaseWindow, InputScript, Screen, SweepLayer
from repro.wm.geometry import Point

SWEEP_MODULE = '''
from repro.wm.sweep import SweepLayer

__clam_exports__ = ["SweepLayer"]
'''


async def run_placement(placement: str) -> None:
    print(f"--- sweep layer placed in the {placement} ---")

    # The server app: a screen with an input pump (one task per input
    # event, reused; §4.3) and the base window registered with it.
    server = ClamServer()
    screen = Screen(48, 14)
    screen.use_tasks(TaskPool(max_tasks=1, name="screen-input"))
    base = BaseWindow(screen)
    server.publish("screen", screen)
    server.publish("base", base)
    address = await server.start(f"memory://sweep-{placement}")

    client = await ClamClient.connect(address)
    screen_proxy = await client.lookup(Screen, "screen")
    base_proxy = await client.lookup(BaseWindow, "base")

    if placement == "server":
        # Dynamic loading (§2): the client ships the module and the
        # sweep code runs at local-call cost next to the screen.
        await client.load_module("sweep", SWEEP_MODULE)
        sweep = await client.create(SweepLayer, class_name="sweep")
    else:
        # The same class, instantiated here: every event will cross
        # to us as a distributed upcall, drawing returns as RPCs.
        sweep = SweepLayer()

    await invoke(sweep.configure, 2, True)        # snap to 2, transparent band
    await invoke(sweep.attach, base_proxy, screen_proxy)

    done = asyncio.Event()
    created = []

    def window_created(rect) -> None:
        created.append(rect)
        done.set()

    await invoke(sweep.on_complete, window_created)

    # The user sweeps: press at (4,2), drag to (26,10), release.
    script = InputScript()
    events = script.drag(Point(4, 2), Point(26, 10), steps=12)
    for event in events:
        await screen.inject_input(event)  # the device side: server-local
    await asyncio.wait_for(done.wait(), timeout=10)

    print(f"window created: {created[0]}")
    print(f"motion events processed by the layer: "
          f"{await invoke(sweep.motion_count)}")
    print(f"distributed upcalls that crossed to the client: "
          f"{client.upcalls_handled}")
    print("final screen:")
    print(indent(screen.render()))
    print()

    await client.close()
    await server.shutdown()


def indent(text: str) -> str:
    return "\n".join("    |" + line + "|" for line in text.splitlines())


async def main() -> None:
    await run_placement("server")
    await run_placement("client")
    print("same window either way — placement is a performance decision "
          "(run `python -m repro.bench sweep` for the numbers)")


if __name__ == "__main__":
    asyncio.run(main())
