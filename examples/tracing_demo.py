"""Figure 4.1's registration scenario, watched through the tracer.

Same cast as ``figure_4_1_registration.py`` — screen S, base window
BaseW, and user1's W1 living in the client — but this time both
runtimes have a :class:`repro.trace.TimelineRecorder` subscribed, so
the one interesting event (a mouse press inside W1) comes back as a
*distributed trace*: the client's synchronous ``inject_input`` call,
the server-side handler, the distributed upcall, and the RUC
execution back in the client all carry one ``trace_id``, stitched
over the wire by protocol v2's trace-context fields.

The demo prints the rendered trace tree, then a few of the metrics
both sides recorded along the way.

Run with::

    python examples/tracing_demo.py
"""

import asyncio

from repro import ClamClient, ClamServer
from repro.obs.export import render_trace_tree
from repro.trace import (
    KIND_CALL,
    KIND_CLIENT_CALL,
    KIND_UPCALL_EXEC,
    TimelineRecorder,
)
from repro.wm import BaseWindow, EventKind, InputEvent, Screen
from repro.wm.geometry import Rect


async def main() -> None:
    print("server: creating S (screen) and BaseW (base window)")
    server = ClamServer()
    screen = Screen(44, 12)
    base = BaseWindow(screen)
    server.publish("screen", screen)
    server.publish("base", base)
    address = await server.start("memory://tracing-demo")

    client = await ClamClient.connect(address)
    screen_proxy = await client.lookup(Screen, "screen")
    base_proxy = await client.lookup(BaseWindow, "base")

    print("client: U1 creates W1 and registers user1::mouse "
          "(distributed upcall path)")
    u1_hits = []

    def user1_mouse(event: InputEvent) -> None:
        u1_hits.append((event.x, event.y))

    w1 = await base_proxy.create_window(Rect(4, 2, 14, 8))
    await w1.postinput(user1_mouse)

    # Subscribe the recorders only now, so the trace tree shows the
    # one operation we care about rather than the setup chatter.
    client_rec, server_rec = TimelineRecorder(), TimelineRecorder()
    client.tracer.subscribe(client_rec)
    server.tracer.subscribe(server_rec)

    print("\nmouse press in W1 routed as a distributed upcall:")
    await screen_proxy.inject_input(
        InputEvent(EventKind.MOUSE_DOWN, 8, 5, button=1, seq=1)
    )
    print(f"  U1 (client) saw: {u1_hits}")
    print(f"  distributed upcalls that crossed the wire: "
          f"{client.upcalls_handled}")

    def ends(rec, kind):
        return [e for e in rec.events if e.kind == kind and e.phase == "end"]
    [call] = ends(client_rec, KIND_CLIENT_CALL)
    [handler] = [e for e in ends(server_rec, KIND_CALL)
                 if "inject_input" in e.name]
    [ruc_exec] = ends(client_rec, KIND_UPCALL_EXEC)
    shared = call.trace_id == handler.trace_id == ruc_exec.trace_id
    print(f"  call, handler, and RUC execution "
          f"share one trace: {'yes' if shared else 'NO'}")

    print("\ndistributed trace tree (client call -> server handler -> "
          "upcall -> RUC execution):")
    tree = render_trace_tree({
        "client": client_rec.events,
        "server": server_rec.events,
    })
    for line in tree.splitlines():
        print("  " + line)

    print("\nwhat the metrics registries saw:")
    server_snap = server.metrics.snapshot()
    client_snap = client.metrics.snapshot()
    print(f"  server  upcall.server.rtt_us.count = "
          f"{server_snap['upcall.server.rtt_us.count']:g}")
    print(f"  server  upcall.server.rtt_us.mean  = "
          f"{server_snap['upcall.server.rtt_us.mean']:.0f}us")
    print(f"  client  rpc.client.call_us.inject_input.count = "
          f"{client_snap['rpc.client.call_us.inject_input.count']:g}")

    await client.close()
    await server.shutdown()


if __name__ == "__main__":
    asyncio.run(main())
