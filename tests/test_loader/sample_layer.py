"""A shippable layer module, used by test_source_of and examples.

This file is what a client would write and then ship into the server
with ``source_of`` — a self-contained module defining remote classes.
"""

from repro.stubs import RemoteInterface


class SampleLayer(RemoteInterface):
    """Trivial layer: counts events it is offered."""

    def __init__(self):
        self.count = 0

    def offer(self, weight: int) -> None:
        self.count += weight

    def seen(self) -> int:
        return self.count
