"""Tests for fault isolation and error-reporting upcalls (paper §4.3)."""

import pytest

from repro.errors import FaultyClassError
from repro.loader import FaultIsolator
from tests.support import async_test


class TestFaultRecording:
    def test_record_first_fault(self):
        isolator = FaultIsolator()
        record = isolator.record("sweep", 1, "drag", ZeroDivisionError("divide by zero"))
        assert record.class_name == "sweep"
        assert record.error_type == "ZeroDivisionError"
        assert record.count == 1

    def test_repeat_faults_counted(self):
        isolator = FaultIsolator(quarantine_after=3)
        for i in range(3):
            record = isolator.record("sweep", 1, "drag", ValueError(f"err{i}"))
        assert record.count == 3
        assert record.message == "err2"

    def test_fault_records_listing(self):
        isolator = FaultIsolator()
        isolator.record("a", 1, "m", ValueError("x"))
        isolator.record("b", 2, "n", KeyError("y"))
        assert {r.class_name for r in isolator.fault_records} == {"a", "b"}


class TestQuarantine:
    def test_faulty_after_threshold(self):
        isolator = FaultIsolator(quarantine_after=1)
        assert not isolator.is_faulty("sweep", 1)
        isolator.record("sweep", 1, "drag", RuntimeError("boom"))
        assert isolator.is_faulty("sweep", 1)
        with pytest.raises(FaultyClassError, match="quarantined"):
            isolator.check("sweep", 1)

    def test_other_versions_unaffected(self):
        """§2.1/§3.5.1: versions are independent classes."""
        isolator = FaultIsolator()
        isolator.record("sweep", 1, "drag", RuntimeError("boom"))
        isolator.check("sweep", 2)  # does not raise

    def test_threshold_respected(self):
        isolator = FaultIsolator(quarantine_after=3)
        isolator.record("sweep", 1, "drag", RuntimeError("1"))
        isolator.record("sweep", 1, "drag", RuntimeError("2"))
        assert not isolator.is_faulty("sweep", 1)
        isolator.record("sweep", 1, "drag", RuntimeError("3"))
        assert isolator.is_faulty("sweep", 1)

    def test_quarantine_disabled(self):
        isolator = FaultIsolator(quarantine_after=0)
        for _ in range(10):
            isolator.record("sweep", 1, "drag", RuntimeError("boom"))
        isolator.check("sweep", 1)  # never quarantined

    def test_forgive(self):
        isolator = FaultIsolator()
        isolator.record("sweep", 1, "drag", RuntimeError("boom"))
        isolator.forgive("sweep", 1)
        isolator.check("sweep", 1)


class TestErrorReporting:
    @async_test
    async def test_report_makes_upcall(self):
        """§4.3: the server notifies a client that it used a faulty class."""
        isolator = FaultIsolator()
        reports = []
        isolator.error_port.register(
            lambda name, version, etype, msg: reports.append((name, version, etype, msg))
        )
        record = isolator.record("sweep", 1, "drag", ZeroDivisionError("divide by zero"))
        await isolator.report(record)
        assert reports == [("sweep", 1, "ZeroDivisionError", "divide by zero")]

    @async_test
    async def test_unheard_reports_queue(self):
        """With no handler registered, reports queue for a later client."""
        isolator = FaultIsolator()
        record = isolator.record("sweep", 1, "drag", RuntimeError("boom"))
        await isolator.report(record)
        assert isolator.error_port.queued_count == 1

        late_reports = []
        isolator.error_port.register(lambda *args: late_reports.append(args))
        await isolator.error_port.replay_queued()
        assert len(late_reports) == 1
