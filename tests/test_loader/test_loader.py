"""Tests for dynamic loading and version control (paper §2)."""

import pytest

from repro.errors import LoaderError, ModuleVersionError, UnknownClassError
from repro.loader import ClassRegistry, ModuleLoader, source_of

COUNTER_SOURCE = '''
from repro.stubs import RemoteInterface


class Counter(RemoteInterface):
    """A loadable counter class."""

    def __init__(self):
        self.value = 0

    def add(self, amount: int) -> None:
        self.value += amount

    def total(self) -> int:
        return self.value
'''

V2_SOURCE = '''
from repro.stubs import RemoteInterface


class Counter(RemoteInterface):
    __clam_version__ = 2

    def __init__(self):
        self.value = 100  # v2 starts at 100

    def add(self, amount: int) -> None:
        self.value += amount

    def total(self) -> int:
        return self.value
'''


class TestLoadSource:
    def test_load_and_instantiate(self):
        loader = ModuleLoader()
        loaded = loader.load_source("counter", COUNTER_SOURCE)
        assert loaded.class_names == ["Counter"]
        cls = loader.classes.resolve("Counter").cls
        instance = cls()
        instance.add(5)
        assert instance.total() == 5

    def test_module_recorded(self):
        loader = ModuleLoader()
        loader.load_source("counter", COUNTER_SOURCE)
        assert loader.module_names == ["counter"]
        assert loader.module("counter").name == "counter"
        assert loader.modules_loaded == 1

    def test_duplicate_module_name_rejected(self):
        loader = ModuleLoader()
        loader.load_source("counter", COUNTER_SOURCE)
        with pytest.raises(LoaderError, match="already loaded"):
            loader.load_source("counter", COUNTER_SOURCE)

    def test_syntax_error_rejected_cleanly(self):
        loader = ModuleLoader()
        with pytest.raises(LoaderError, match="failed to load"):
            loader.load_source("bad", "def broken(:\n")
        assert loader.module_names == []
        assert len(loader.classes) == 0

    def test_exec_error_rejected_cleanly(self):
        loader = ModuleLoader()
        with pytest.raises(LoaderError):
            loader.load_source("boom", "raise RuntimeError('at import time')")
        assert loader.module_names == []

    def test_module_without_remote_classes_rejected(self):
        loader = ModuleLoader()
        with pytest.raises(LoaderError, match="no remote classes"):
            loader.load_source("empty", "x = 1\n")

    def test_explicit_exports(self):
        source = COUNTER_SOURCE + (
            "\nclass Hidden(RemoteInterface):\n"
            "    def secret(self) -> int: ...\n"
            "\n__clam_exports__ = ['Counter']\n"
        )
        loader = ModuleLoader()
        loaded = loader.load_source("partial", source)
        assert loaded.class_names == ["Counter"]
        with pytest.raises(UnknownClassError):
            loader.classes.resolve("Hidden")

    def test_export_list_naming_missing_class_rejected(self):
        source = COUNTER_SOURCE + "\n__clam_exports__ = ['Ghost']\n"
        loader = ModuleLoader()
        with pytest.raises(LoaderError, match="Ghost"):
            loader.load_source("ghostly", source)

    def test_export_list_naming_non_interface_rejected(self):
        source = COUNTER_SOURCE + "\nPLAIN = 5\n__clam_exports__ = ['PLAIN']\n"
        loader = ModuleLoader()
        with pytest.raises(LoaderError, match="not a RemoteInterface"):
            loader.load_source("plain", source)

    def test_imported_classes_not_auto_exported(self):
        source = (
            "from repro.stubs import RemoteInterface\n"
            "from tests.test_loader.test_loader import COUNTER_SOURCE\n"
            "class Mine(RemoteInterface):\n"
            "    def m(self) -> int: ...\n"
        )
        loader = ModuleLoader()
        loaded = loader.load_source("importer", source)
        assert loaded.class_names == ["Mine"]

    def test_loaded_code_can_use_loaded_code(self):
        """§2: dynamically loaded procedures call each other as normal calls."""
        loader = ModuleLoader()
        loader.load_source("counter", COUNTER_SOURCE)
        counter_cls = loader.classes.resolve("Counter").cls
        source = (
            "from repro.stubs import RemoteInterface\n"
            "class Doubler(RemoteInterface):\n"
            "    def __init__(self, counter):\n"
            "        self.counter = counter\n"
            "    def double_add(self, amount: int) -> None:\n"
            "        self.counter.add(amount * 2)\n"
        )
        loader.load_source("doubler", source)
        doubler_cls = loader.classes.resolve("Doubler").cls
        counter = counter_cls()
        doubler_cls(counter).double_add(4)
        assert counter.total() == 8


class TestLoadedModuleEnvironment:
    DATACLASS_SOURCE = '''
from dataclasses import dataclass

from repro.stubs import RemoteInterface


@dataclass
class Point:
    x: int
    y: int


class Plotter(RemoteInterface):
    def plot(self, p: Point) -> int:
        return p.x + p.y
'''

    def test_dataclasses_work_in_loaded_modules(self):
        """Regression: compile() used to inherit this package's
        `from __future__ import annotations`, stringifying loaded
        annotations and crashing CPython's dataclasses for modules
        not registered in sys.modules."""
        loader = ModuleLoader()
        loaded = loader.load_source("plotted", self.DATACLASS_SOURCE)
        point_cls = loaded.module.Point
        # Annotations stayed eager types, not strings.
        assert point_cls.__dataclass_fields__["x"].type is int
        plotter = loader.classes.resolve("Plotter").cls()
        assert plotter.plot(point_cls(2, 3)) == 5

    def test_loaded_module_registered_in_sys_modules(self):
        import sys

        loader = ModuleLoader()
        loaded = loader.load_source("registered", COUNTER_SOURCE)
        assert loaded.module.__name__ in sys.modules

    def test_failed_load_not_left_in_sys_modules(self):
        import sys

        loader = ModuleLoader()
        before = set(sys.modules)
        with pytest.raises(LoaderError):
            loader.load_source("broken", "raise RuntimeError('no')")
        assert set(sys.modules) == before

    def test_future_annotations_in_loaded_source_still_allowed(self):
        source = (
            "from __future__ import annotations\n" + COUNTER_SOURCE
        )
        loader = ModuleLoader()
        loaded = loader.load_source("futurist", source)
        cls = loader.classes.resolve("Counter").cls()
        cls.add(2)
        assert cls.total() == 2


class TestVersionControl:
    def test_two_versions_coexist(self):
        """§2.1: different clients can have different versions."""
        loader = ModuleLoader()
        loader.load_source("counter_v1", COUNTER_SOURCE)
        loader.load_source("counter_v2", V2_SOURCE)
        v1 = loader.classes.resolve("Counter", version=1).cls
        v2 = loader.classes.resolve("Counter", version=2).cls
        assert v1().total() == 0
        assert v2().total() == 100

    def test_default_resolution_is_latest(self):
        loader = ModuleLoader()
        loader.load_source("counter_v1", COUNTER_SOURCE)
        loader.load_source("counter_v2", V2_SOURCE)
        assert loader.classes.resolve("Counter").version == 2

    def test_same_version_conflict(self):
        loader = ModuleLoader()
        loader.load_source("a", COUNTER_SOURCE)
        with pytest.raises(ModuleVersionError, match="bump"):
            loader.load_source("b", COUNTER_SOURCE)

    def test_unknown_class(self):
        with pytest.raises(UnknownClassError):
            ClassRegistry().resolve("Nothing")

    def test_unknown_version(self):
        loader = ModuleLoader()
        loader.load_source("counter", COUNTER_SOURCE)
        with pytest.raises(UnknownClassError):
            loader.classes.resolve("Counter", version=9)

    def test_versions_of(self):
        loader = ModuleLoader()
        loader.load_source("v1", COUNTER_SOURCE)
        loader.load_source("v2", V2_SOURCE)
        assert loader.classes.versions_of("Counter") == [1, 2]

    def test_contains_and_len(self):
        registry = ClassRegistry()
        assert "Counter" not in registry
        loader = ModuleLoader(registry)
        loader.load_source("counter", COUNTER_SOURCE)
        assert "Counter" in registry
        assert len(registry) == 1


class TestSourceOf:
    def test_source_of_class(self):
        from tests.test_loader import sample_layer

        source = source_of(sample_layer)
        loader = ModuleLoader()
        loaded = loader.load_source("shipped", source)
        assert "SampleLayer" in loaded.class_names

    def test_source_of_builtin_fails(self):
        with pytest.raises(LoaderError):
            source_of(int)
