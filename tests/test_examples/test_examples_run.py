"""Smoke tests: every example runs to completion and says what it should."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

EXPECTATIONS = {
    "quickstart.py": ["client received 3 alert upcalls", "done"],
    "bundlers_demo.py": [
        "automatic derivation",
        "closure (rpcgen): the whole graph",
        "closure round-trips the cycle",
    ],
    "window_sweep.py": [
        "sweep layer placed in the server",
        "sweep layer placed in the client",
        "distributed upcalls that crossed to the client: 1",
        "same window either way",
    ],
    "protocol_stack.py": [
        "frames arrived before the stack existed",
        "1 malformed dropped",
        "1 for unregistered channels dropped",
        "only 3 upcalls crossed to the client",
    ],
    "error_reporting.py": [
        "error upcall: class 'Stats' v1 raised ZeroDivisionError",
        "further use refused: FaultyClassError",
        "v2 works: mean of [4, 8] = 6",
    ],
    "figure_4_1_registration.py": [
        "U1 (client)  saw: [(8, 5)]",
        "distributed upcalls that crossed the wire: 1",
    ],
    "desktop.py": [
        "exported: focus, move, sweep",
        "left window saw keys:  ls",
        "right window saw keys: vi",
        "moves applied by the move layer: 8",
    ],
    "tracing_demo.py": [
        "share one trace: yes",
        "distributed upcalls that crossed the wire: 1",
        "upcall.server.rtt_us.count = 1",
    ],
    "chat.py": [
        "three clients joined",
        "[bob's screen] alice: anyone seen the 1988 proceedings?",
        "messages in room history: 7",
        "carol received 2 (left early)",
    ],
    "overload_demo.py": [
        "no admission control:",
        "served 300/300, shed 0 (0%)",
        "token bucket (150/s, burst 40, interactive floor):",
        "interactive-floored call served immediately",
        "(credit window 32)",
    ],
    "cluster_chat.py": [
        "2 registry replicas advertised",
        "registry calls balanced across: ['registry-east', 'registry-west']",
        "3 members joined the fan-out room",
        "fan-out deliveries: 6 (2 posts x 3 members)",
        "done",
    ],
}


def test_every_example_has_expectations():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTATIONS), (
        "examples and smoke expectations out of sync"
    )


@pytest.mark.parametrize("script", sorted(EXPECTATIONS))
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, (
        f"{script} failed:\nstdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    for expected in EXPECTATIONS[script]:
        assert expected in result.stdout, (
            f"{script} output missing {expected!r}:\n{result.stdout}"
        )
