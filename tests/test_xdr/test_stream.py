"""Unit tests for the bidirectional XDR stream (paper §3.3, Fig 3.2)."""

import math
import struct

import pytest

from repro.errors import XdrError
from repro.xdr import XdrOp, XdrStream


def roundtrip(write, read=None):
    """Encode with ``write(enc)``, decode the bytes with ``read(dec)``."""
    enc = XdrStream.encoder()
    write(enc)
    dec = XdrStream.decoder(enc.getvalue())
    result = (read or write)(dec)
    dec.expect_exhausted()
    return result


class TestIntegers:
    def test_int_roundtrip(self):
        assert roundtrip(lambda s: s.xint(-42)) == -42

    def test_int_wire_format_is_bigendian_4_bytes(self):
        enc = XdrStream.encoder()
        enc.xint(1)
        assert enc.getvalue() == b"\x00\x00\x00\x01"

    def test_int_negative_wire_format(self):
        enc = XdrStream.encoder()
        enc.xint(-1)
        assert enc.getvalue() == b"\xff\xff\xff\xff"

    @pytest.mark.parametrize("value", [-(2**31), 2**31 - 1, 0])
    def test_int_bounds(self, value):
        assert roundtrip(lambda s: s.xint(value)) == value

    @pytest.mark.parametrize("value", [2**31, -(2**31) - 1])
    def test_int_out_of_range(self, value):
        with pytest.raises(XdrError):
            XdrStream.encoder().xint(value)

    def test_int_rejects_bool(self):
        # bool is a subclass of int; XDR booleans use xbool.
        with pytest.raises(XdrError):
            XdrStream.encoder().xint(True)

    def test_int_rejects_float(self):
        with pytest.raises(XdrError):
            XdrStream.encoder().xint(1.5)

    def test_uint_roundtrip(self):
        assert roundtrip(lambda s: s.xuint(2**32 - 1)) == 2**32 - 1

    def test_uint_rejects_negative(self):
        with pytest.raises(XdrError):
            XdrStream.encoder().xuint(-1)

    def test_hyper_roundtrip(self):
        assert roundtrip(lambda s: s.xhyper(-(2**62))) == -(2**62)

    def test_hyper_is_8_bytes(self):
        enc = XdrStream.encoder()
        enc.xhyper(1)
        assert len(enc.getvalue()) == 8

    def test_uhyper_roundtrip(self):
        assert roundtrip(lambda s: s.xuhyper(2**64 - 1)) == 2**64 - 1

    def test_short_roundtrip_occupies_4_bytes(self):
        enc = XdrStream.encoder()
        enc.xshort(-7)
        assert len(enc.getvalue()) == 4
        dec = XdrStream.decoder(enc.getvalue())
        assert dec.xshort() == -7

    def test_short_range_checked_on_encode(self):
        with pytest.raises(XdrError):
            XdrStream.encoder().xshort(2**15)

    def test_short_range_checked_on_decode(self):
        enc = XdrStream.encoder()
        enc.xint(2**20)
        with pytest.raises(XdrError):
            XdrStream.decoder(enc.getvalue()).xshort()


class TestBoolEnum:
    def test_bool_roundtrip(self):
        assert roundtrip(lambda s: s.xbool(True)) is True
        assert roundtrip(lambda s: s.xbool(False)) is False

    def test_bool_wire_is_int32(self):
        enc = XdrStream.encoder()
        enc.xbool(True)
        assert enc.getvalue() == b"\x00\x00\x00\x01"

    def test_bool_decode_rejects_other_values(self):
        with pytest.raises(XdrError):
            XdrStream.decoder(b"\x00\x00\x00\x02").xbool()

    def test_bool_encode_rejects_int(self):
        with pytest.raises(XdrError):
            XdrStream.encoder().xbool(1)

    def test_enum_allowed_values(self):
        assert roundtrip(lambda s: s.xenum(3, allowed=(1, 2, 3))) == 3

    def test_enum_rejects_unlisted_on_encode(self):
        with pytest.raises(XdrError):
            XdrStream.encoder().xenum(4, allowed=(1, 2, 3))

    def test_enum_rejects_unlisted_on_decode(self):
        enc = XdrStream.encoder()
        enc.xint(9)
        with pytest.raises(XdrError):
            XdrStream.decoder(enc.getvalue()).xenum(allowed=(1, 2))


class TestFloats:
    def test_double_roundtrip_exact(self):
        assert roundtrip(lambda s: s.xdouble(math.pi)) == math.pi

    def test_float_roundtrip_single_precision(self):
        value = struct.unpack(">f", struct.pack(">f", 1.25))[0]
        assert roundtrip(lambda s: s.xfloat(value)) == value

    def test_float_accepts_int(self):
        assert roundtrip(lambda s: s.xfloat(2)) == 2.0

    def test_double_rejects_string(self):
        with pytest.raises(XdrError):
            XdrStream.encoder().xdouble("1.0")

    def test_double_nan_roundtrip(self):
        assert math.isnan(roundtrip(lambda s: s.xdouble(math.nan)))

    def test_double_inf_roundtrip(self):
        assert roundtrip(lambda s: s.xdouble(math.inf)) == math.inf


class TestOpaqueAndString:
    def test_opaque_roundtrip(self):
        assert roundtrip(lambda s: s.xopaque(b"hello")) == b"hello"

    def test_opaque_padding_to_4(self):
        enc = XdrStream.encoder()
        enc.xopaque(b"abcde")  # 4 length + 5 data + 3 pad
        assert len(enc.getvalue()) == 12
        assert enc.getvalue()[9:] == b"\x00\x00\x00"

    def test_opaque_empty(self):
        assert roundtrip(lambda s: s.xopaque(b"")) == b""

    def test_opaque_nonzero_padding_rejected(self):
        enc = XdrStream.encoder()
        enc.xopaque(b"a")
        corrupt = bytearray(enc.getvalue())
        corrupt[-1] = 0xFF
        with pytest.raises(XdrError):
            XdrStream.decoder(bytes(corrupt)).xopaque()

    def test_opaque_length_limit_on_decode(self):
        # A hostile length prefix must not cause a huge allocation.
        data = struct.pack(">I", 2**31)
        with pytest.raises(XdrError):
            XdrStream.decoder(data).xopaque()

    def test_opaque_truncated_data(self):
        data = struct.pack(">I", 100) + b"short"
        with pytest.raises(XdrError):
            XdrStream.decoder(data).xopaque()

    def test_opaque_fixed_roundtrip(self):
        enc = XdrStream.encoder()
        enc.xopaque_fixed(b"abc", size=3)
        dec = XdrStream.decoder(enc.getvalue())
        assert dec.xopaque_fixed(size=3) == b"abc"

    def test_opaque_fixed_wrong_size(self):
        with pytest.raises(XdrError):
            XdrStream.encoder().xopaque_fixed(b"abc", size=4)

    def test_string_roundtrip(self):
        assert roundtrip(lambda s: s.xstring("sweep")) == "sweep"

    def test_string_unicode(self):
        assert roundtrip(lambda s: s.xstring("fenêtre λ ✓")) == "fenêtre λ ✓"

    def test_string_invalid_utf8_rejected_on_decode(self):
        enc = XdrStream.encoder()
        enc.xopaque(b"\xff\xfe")
        with pytest.raises(XdrError):
            XdrStream.decoder(enc.getvalue()).xstring()

    def test_string_rejects_bytes_on_encode(self):
        with pytest.raises(XdrError):
            XdrStream.encoder().xstring(b"bytes")


class TestComposites:
    def test_array_roundtrip(self):
        values = [1, 2, 3, -4]
        out = roundtrip(lambda s: s.xarray(lambda st, v: st.xint(v), values),
                        lambda s: s.xarray(lambda st, v: st.xint(v)))
        assert out == values

    def test_array_empty(self):
        out = roundtrip(lambda s: s.xarray(lambda st, v: st.xint(v), []),
                        lambda s: s.xarray(lambda st, v: st.xint(v)))
        assert out == []

    def test_array_encode_none_rejected(self):
        with pytest.raises(XdrError):
            XdrStream.encoder().xarray(lambda st, v: st.xint(v), None)

    def test_array_hostile_length(self):
        data = struct.pack(">I", 2**31)
        with pytest.raises(XdrError):
            XdrStream.decoder(data).xarray(lambda st, v: st.xint(v))

    def test_array_fixed_roundtrip(self):
        enc = XdrStream.encoder()
        enc.xarray_fixed(lambda st, v: st.xint(v), [7, 8], size=2)
        dec = XdrStream.decoder(enc.getvalue())
        assert dec.xarray_fixed(lambda st, v: st.xint(v), size=2) == [7, 8]

    def test_array_fixed_wrong_count(self):
        with pytest.raises(XdrError):
            XdrStream.encoder().xarray_fixed(lambda st, v: st.xint(v), [1], size=2)

    def test_optional_present(self):
        out = roundtrip(lambda s: s.xoptional(lambda st, v: st.xint(v), 9),
                        lambda s: s.xoptional(lambda st, v: st.xint(v)))
        assert out == 9

    def test_optional_absent(self):
        out = roundtrip(lambda s: s.xoptional(lambda st, v: st.xint(v), None),
                        lambda s: s.xoptional(lambda st, v: st.xint(v)))
        assert out is None

    def test_void_writes_nothing(self):
        enc = XdrStream.encoder()
        enc.xvoid()
        assert enc.getvalue() == b""


class TestStreamDiscipline:
    def test_op_property(self):
        assert XdrStream.encoder().op is XdrOp.ENCODE
        assert XdrStream.decoder(b"").op is XdrOp.DECODE

    def test_encoding_decoding_flags(self):
        assert XdrStream.encoder().encoding
        assert XdrStream.decoder(b"").decoding

    def test_getvalue_only_on_encoder(self):
        with pytest.raises(XdrError):
            XdrStream.decoder(b"").getvalue()

    def test_remaining_only_on_decoder(self):
        with pytest.raises(XdrError):
            XdrStream.encoder().remaining()

    def test_expect_exhausted_trailing(self):
        dec = XdrStream.decoder(b"\x00\x00\x00\x01")
        with pytest.raises(XdrError):
            dec.expect_exhausted()

    def test_bidirectional_single_body(self):
        """A single bundler body serves both directions (Fig 3.2)."""

        def point_bundler(stream, p):
            if p is None and stream.decoding:
                p = {}
            p["x"] = stream.xshort(p.get("x"))
            p["y"] = stream.xshort(p.get("y"))
            p["z"] = stream.xshort(p.get("z"))
            return p

        point = {"x": 1, "y": -2, "z": 3}
        enc = XdrStream.encoder()
        point_bundler(enc, dict(point))
        dec = XdrStream.decoder(enc.getvalue())
        assert point_bundler(dec, None) == point

    def test_sequence_of_mixed_fields(self):
        enc = XdrStream.encoder()
        enc.xint(5)
        enc.xstring("title")
        enc.xbool(True)
        enc.xdouble(0.5)
        dec = XdrStream.decoder(enc.getvalue())
        assert dec.xint() == 5
        assert dec.xstring() == "title"
        assert dec.xbool() is True
        assert dec.xdouble() == 0.5
        dec.expect_exhausted()

    def test_bad_op_rejected(self):
        with pytest.raises(XdrError):
            XdrStream("encode")  # type: ignore[arg-type]

    def test_custom_max_length_enforced_on_decode(self):
        enc = XdrStream.encoder()
        enc.xopaque(b"x" * 64)
        dec = XdrStream.decoder(enc.getvalue(), max_length=16)
        with pytest.raises(XdrError, match="exceeds max"):
            dec.xopaque()

    def test_custom_max_length_enforced_on_encode(self):
        enc = XdrStream(XdrOp.ENCODE, max_length=8)
        with pytest.raises(XdrError, match="exceeds max"):
            enc.xopaque(b"too long for the limit")

    def test_custom_max_length_enforced_on_arrays(self):
        enc = XdrStream.encoder()
        enc.xuint(1000)  # array length prefix
        dec = XdrStream.decoder(enc.getvalue(), max_length=100)
        with pytest.raises(XdrError, match="exceeds max"):
            dec.xarray(lambda st, v: st.xint(v))
