"""Zero-copy decode paths, buffer pooling, and memoryview encode.

The decode stream reads through a ``memoryview``; ``xopaque_view``
returns slices that *alias* the input buffer; encode streams draw
their ``bytearray`` from a pool and return it on ``release()``.
These tests pin down the aliasing and lifetime rules.
"""

from __future__ import annotations

import pytest

from repro.errors import XdrError
from repro.xdr import XdrStream


# -- decode aliasing ----------------------------------------------------------

def test_xopaque_view_aliases_the_input_buffer():
    enc = XdrStream.encoder()
    enc.xopaque(b"hello world")
    data = bytearray(enc.getvalue())
    enc.release()

    dec = XdrStream.decoder(data)
    view = dec.xopaque_view()
    assert isinstance(view, memoryview)
    assert bytes(view) == b"hello world"
    # Mutating the source buffer shows through the view: no copy
    # happened.  Body starts after the 4-byte length prefix, so
    # data[8] is the body's fifth byte.
    data[8] = ord("X")
    assert bytes(view) == b"hellX world"


def test_xopaque_returns_independent_bytes():
    enc = XdrStream.encoder()
    enc.xopaque(b"payload")
    data = bytearray(enc.getvalue())
    enc.release()

    dec = XdrStream.decoder(data)
    out = dec.xopaque()
    assert isinstance(out, bytes)
    data[0] = 0
    assert out == b"payload"  # the API boundary copy protects the caller


def test_xopaque_view_roundtrip_parity_with_xopaque():
    enc = XdrStream.encoder()
    enc.xopaque(b"abc")
    enc.xopaque(b"defg")
    data = enc.getvalue()
    enc.release()

    d1 = XdrStream.decoder(data)
    d2 = XdrStream.decoder(data)
    assert bytes(d1.xopaque_view()) == d2.xopaque()
    assert bytes(d1.xopaque_view()) == d2.xopaque()
    d1.expect_exhausted()
    d2.expect_exhausted()


# -- memoryview encode --------------------------------------------------------

def test_xopaque_encodes_memoryview_without_copy_semantics_change():
    payload = bytearray(b"0123456789")
    direct = XdrStream.encoder()
    direct.xopaque(bytes(payload))
    expected = direct.getvalue()
    direct.release()

    via_view = XdrStream.encoder()
    via_view.xopaque(memoryview(payload))
    assert via_view.getvalue() == expected
    via_view.release()


def test_xopaque_fixed_accepts_memoryview_and_bytearray():
    for value in (memoryview(b"abcd"), bytearray(b"abcd"), b"abcd"):
        enc = XdrStream.encoder()
        enc.xopaque_fixed(value, size=4)
        data = enc.getvalue()
        enc.release()
        dec = XdrStream.decoder(data)
        assert dec.xopaque_fixed(size=4) == b"abcd"


def test_xopaque_rejects_wrong_types():
    enc = XdrStream.encoder()
    with pytest.raises(XdrError):
        enc.xopaque("not bytes")
    enc.release()


# -- xshort symmetry ----------------------------------------------------------

def test_xshort_decode_range_matches_encode_range():
    for value in (-(2**15), 2**15 - 1, 0, -1):
        enc = XdrStream.encoder()
        enc.xshort(value)
        data = enc.getvalue()
        enc.release()
        assert XdrStream.decoder(data).xshort() == value

    # A wire int32 outside int16 range must be rejected on decode,
    # exactly as it would be on encode.
    enc = XdrStream.encoder()
    enc.xint(2**15)  # same wire size, out-of-range payload
    data = enc.getvalue()
    enc.release()
    with pytest.raises(XdrError):
        XdrStream.decoder(data).xshort()


# -- buffer pooling -----------------------------------------------------------

def test_release_returns_buffer_to_pool_and_invalidates_stream():
    enc = XdrStream.encoder()
    enc.xint(42)
    assert enc.getvalue() == (42).to_bytes(4, "big")
    enc.release()
    with pytest.raises(XdrError):
        enc.getvalue()


def test_pooled_buffer_reuse_starts_empty():
    first = XdrStream.encoder()
    first.xstring("leftover contents")
    first.release()

    second = XdrStream.encoder()
    assert second.getvalue() == b""
    second.xint(1)
    assert second.getvalue() == (1).to_bytes(4, "big")
    second.release()


def test_release_is_idempotent():
    enc = XdrStream.encoder()
    enc.release()
    enc.release()


def test_decode_stream_accepts_bytes_bytearray_memoryview():
    enc = XdrStream.encoder()
    enc.xhyper(-5)
    enc.xstring("zx")
    data = enc.getvalue()
    enc.release()
    for source in (data, bytearray(data), memoryview(data)):
        dec = XdrStream.decoder(source)
        assert dec.xhyper() == -5
        assert dec.xstring() == "zx"
        dec.expect_exhausted()
