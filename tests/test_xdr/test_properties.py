"""Property-based tests for the XDR codec.

Invariants:
- decode(encode(x)) == x for every supported type and composition,
- encoded size is always a multiple of 4 (RFC 1014 alignment),
- concatenated encodings decode field-by-field in order.
"""


from hypothesis import given, strategies as st

from repro.xdr import XdrStream
from repro.xdr import filters

int32s = st.integers(min_value=-(2**31), max_value=2**31 - 1)
uint32s = st.integers(min_value=0, max_value=2**32 - 1)
int64s = st.integers(min_value=-(2**63), max_value=2**63 - 1)
shorts = st.integers(min_value=-(2**15), max_value=2**15 - 1)
doubles = st.floats(allow_nan=False)
blobs = st.binary(max_size=512)
texts = st.text(max_size=256)


def roundtrip_value(filter_fn, value):
    enc = XdrStream.encoder()
    filter_fn(enc, value)
    data = enc.getvalue()
    assert len(data) % 4 == 0, "XDR items must be 4-byte aligned"
    dec = XdrStream.decoder(data)
    out = filter_fn(dec, None)
    dec.expect_exhausted()
    return out


@given(int32s)
def test_int_roundtrip(v):
    assert roundtrip_value(filters.xint, v) == v


@given(uint32s)
def test_uint_roundtrip(v):
    assert roundtrip_value(filters.xuint, v) == v


@given(int64s)
def test_hyper_roundtrip(v):
    assert roundtrip_value(filters.xhyper, v) == v


@given(shorts)
def test_short_roundtrip(v):
    assert roundtrip_value(filters.xshort, v) == v


@given(doubles)
def test_double_roundtrip(v):
    assert roundtrip_value(filters.xdouble, v) == v


@given(blobs)
def test_opaque_roundtrip(v):
    assert roundtrip_value(filters.xopaque, v) == v


@given(texts)
def test_string_roundtrip(v):
    assert roundtrip_value(filters.xstring, v) == v


@given(st.lists(int32s, max_size=64))
def test_int_array_roundtrip(values):
    enc = XdrStream.encoder()
    enc.xarray(filters.xint, values)
    dec = XdrStream.decoder(enc.getvalue())
    assert dec.xarray(filters.xint) == values


@given(st.lists(texts, max_size=16))
def test_string_array_roundtrip(values):
    enc = XdrStream.encoder()
    enc.xarray(filters.xstring, values)
    dec = XdrStream.decoder(enc.getvalue())
    assert dec.xarray(filters.xstring) == values


@given(st.one_of(st.none(), int64s))
def test_optional_roundtrip(value):
    enc = XdrStream.encoder()
    enc.xoptional(filters.xhyper, value)
    dec = XdrStream.decoder(enc.getvalue())
    assert dec.xoptional(filters.xhyper) == value


@given(st.lists(st.tuples(int32s, texts, st.booleans()), max_size=32))
def test_concatenated_fields_decode_in_order(fields):
    """Independent encodings concatenate into one decodable stream.

    This is the property RPC batching (§3.4) relies on: several bundled
    calls share one message and are unbundled strictly in order.
    """
    enc = XdrStream.encoder()
    for i, s, b in fields:
        enc.xint(i)
        enc.xstring(s)
        enc.xbool(b)
    dec = XdrStream.decoder(enc.getvalue())
    for i, s, b in fields:
        assert dec.xint() == i
        assert dec.xstring() == s
        assert dec.xbool() is b
    dec.expect_exhausted()


@given(st.binary(max_size=256))
def test_decoder_never_overreads(data):
    """Arbitrary bytes either decode or raise XdrError — never hang or crash."""
    from repro.errors import XdrError

    dec = XdrStream.decoder(data)
    try:
        dec.xstring()
    except XdrError:
        pass


@given(st.lists(st.one_of(int32s.map(lambda v: ("i", v)),
                           texts.map(lambda v: ("s", v)),
                           doubles.map(lambda v: ("d", v))),
                max_size=24))
def test_heterogeneous_sequence_roundtrip(items):
    enc = XdrStream.encoder()
    for kind, value in items:
        if kind == "i":
            enc.xint(value)
        elif kind == "s":
            enc.xstring(value)
        else:
            enc.xdouble(value)
    dec = XdrStream.decoder(enc.getvalue())
    for kind, value in items:
        if kind == "i":
            assert dec.xint() == value
        elif kind == "s":
            assert dec.xstring() == value
        else:
            assert dec.xdouble() == value
