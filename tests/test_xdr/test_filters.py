"""Tests for the unbound XDR filters and type-driven lookup."""

import pytest

from repro.errors import XdrError
from repro.xdr import decode_with, encode_with, xdr_filter_for
from repro.xdr import filters


@pytest.mark.parametrize(
    "filter_fn,value",
    [
        (filters.xint, -5),
        (filters.xuint, 5),
        (filters.xhyper, -(2**40)),
        (filters.xuhyper, 2**40),
        (filters.xshort, 12),
        (filters.xbool, True),
        (filters.xfloat, 0.5),
        (filters.xdouble, 1.75),
        (filters.xopaque, b"raw"),
        (filters.xstring, "text"),
        (filters.xvoid, None),
    ],
)
def test_filter_roundtrip(filter_fn, value):
    assert decode_with(filter_fn, encode_with(filter_fn, value)) == value


def test_decode_with_rejects_trailing_bytes():
    data = encode_with(filters.xint, 1) + b"\x00\x00\x00\x00"
    with pytest.raises(XdrError):
        decode_with(filters.xint, data)


class TestFilterLookup:
    def test_int_maps_to_hyper(self):
        # Python ints exceed 32 bits routinely; the canonical filter is 64-bit.
        assert xdr_filter_for(int) is filters.xhyper

    def test_bool_maps_to_xbool_not_int(self):
        assert xdr_filter_for(bool) is filters.xbool

    def test_float_str_bytes_none(self):
        assert xdr_filter_for(float) is filters.xdouble
        assert xdr_filter_for(str) is filters.xstring
        assert xdr_filter_for(bytes) is filters.xopaque
        assert xdr_filter_for(type(None)) is filters.xvoid

    def test_unknown_type_raises(self):
        with pytest.raises(XdrError):
            xdr_filter_for(dict)

    def test_non_type_raises(self):
        with pytest.raises(XdrError):
            xdr_filter_for("int")  # type: ignore[arg-type]
