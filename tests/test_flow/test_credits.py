"""Unit tests for the credit gate/ledger pair (protocol v4 semantics).

The properties pinned here are the ones the chaos suite relies on:
grants max-merge (duplicates and reordering are no-ops), a stalled
producer probes its way out of a lost grant, and usage never exceeds
the grant.
"""

import asyncio

import pytest

from repro.errors import CreditExhaustedError
from repro.flow import (
    MESSAGE_OVERHEAD,
    CreditGate,
    CreditLedger,
    message_cost,
)
from tests.support import async_test, eventually


def open_gate(msgs=10, nbytes=10_000, **kwargs) -> CreditGate:
    gate = CreditGate(**kwargs)
    gate.update(msgs, nbytes)
    return gate


class TestGateAccounting:
    def test_message_cost_includes_overhead(self):
        assert message_cost(b"") == MESSAGE_OVERHEAD
        assert message_cost(b"xyz") == MESSAGE_OVERHEAD + 3

    def test_try_acquire_consumes_window(self):
        gate = open_gate(msgs=2, nbytes=300)
        assert gate.try_acquire(100)
        assert gate.try_acquire(100)
        assert not gate.try_acquire(100)  # msg window spent
        assert gate.used_msgs == 2 and gate.used_bytes == 200

    def test_byte_window_binds_independently(self):
        gate = open_gate(msgs=10, nbytes=150)
        assert gate.try_acquire(100)
        assert not gate.try_acquire(100)  # would exceed byte grant

    def test_unlimited_gate_never_blocks(self):
        gate = CreditGate(unlimited=True)
        for _ in range(1000):
            assert gate.try_acquire(1 << 20)
        assert gate.used_msgs == 0  # nothing tracked


class TestGrantMerging:
    def test_grants_are_cumulative_max_merge(self):
        gate = open_gate(msgs=10, nbytes=1000)
        gate.update(5, 500)  # stale: must not shrink
        assert gate.granted_msgs == 10 and gate.granted_bytes == 1000
        gate.update(20, 2000)
        assert gate.granted_msgs == 20 and gate.granted_bytes == 2000

    def test_duplicate_grant_is_noop(self):
        gate = open_gate(msgs=10, nbytes=1000)
        before = (gate.granted_msgs, gate.granted_bytes)
        gate.update(10, 1000)
        gate.update(10, 1000)
        assert (gate.granted_msgs, gate.granted_bytes) == before

    def test_usage_never_exceeds_grant(self):
        """The chaos invariant, exercised deterministically."""
        gate = open_gate(msgs=3, nbytes=10_000)
        admitted = sum(1 for _ in range(10) if gate.try_acquire(10))
        assert admitted == 3
        assert gate.used_msgs <= gate.granted_msgs
        assert gate.used_bytes <= gate.granted_bytes


class TestBlockingAcquire:
    @async_test
    async def test_nowait_raises_when_exhausted(self):
        gate = open_gate(msgs=1, nbytes=1000)
        await gate.acquire(10)
        with pytest.raises(CreditExhaustedError):
            await gate.acquire(10, nowait=True)

    @async_test
    async def test_blocked_acquire_wakes_on_grant(self):
        gate = open_gate(msgs=1, nbytes=1000)
        await gate.acquire(10)
        waiter = asyncio.ensure_future(gate.acquire(10))
        await asyncio.sleep(0.01)
        assert not waiter.done()
        assert gate.stalls == 1
        gate.update(2, 2000)
        await asyncio.wait_for(waiter, 1.0)
        assert gate.used_msgs == 2

    @async_test
    async def test_stall_probes_for_lost_grant(self):
        """A dropped CREDIT frame must not deadlock: probes recover it."""
        probes = []

        async def send_probe(used_msgs, used_bytes):
            probes.append((used_msgs, used_bytes))
            # The consumer answers the probe with its current grant —
            # the re-announcement a lossy link ate the first time.
            gate.update(2, 2000)

        gate = CreditGate(send_probe=send_probe, probe_interval=0.01)
        gate.update(1, 1000)
        await gate.acquire(10)
        await asyncio.wait_for(gate.acquire(10), 2.0)
        assert probes and probes[0] == (1, 10)  # cumulative usage
        assert gate.probes >= 1

    @async_test
    async def test_fail_poisons_waiters(self):
        gate = open_gate(msgs=1, nbytes=1000)
        await gate.acquire(10)
        waiter = asyncio.ensure_future(gate.acquire(10))
        await asyncio.sleep(0.005)
        gate.fail(ConnectionError("gone"))
        with pytest.raises(ConnectionError):
            await asyncio.wait_for(waiter, 1.0)

    @async_test
    async def test_reset_restarts_cumulative_arithmetic(self):
        gate = open_gate(msgs=2, nbytes=1000)
        await gate.acquire(10)
        gate.reset(unlimited=False)
        assert gate.used_msgs == 0 and gate.granted_msgs == 0
        gate.update(1, 1000)  # fresh channel's first grant
        assert gate.try_acquire(10)


class TestLedger:
    @async_test
    async def test_announce_sends_drained_plus_window(self):
        grants = []

        async def send(msgs, nbytes):
            grants.append((msgs, nbytes))

        ledger = CreditLedger(send, window_msgs=8, window_bytes=800)
        await ledger.announce()
        assert grants == [(8, 800)]
        for _ in range(3):
            await ledger.drained(10)
        await ledger.announce()
        assert grants[-1] == (8 + 3, 800 + 30)

    @async_test
    async def test_regrants_at_half_window(self):
        grants = []

        async def send(msgs, nbytes):
            grants.append(msgs)

        ledger = CreditLedger(send, window_msgs=8, window_bytes=8000)
        await ledger.announce()
        for _ in range(3):
            await ledger.drained(10)
        assert len(grants) == 1  # under the half-window mark
        await ledger.drained(10)
        assert len(grants) == 2  # 4 drained = half of 8: fresh grant
        assert grants[-1] == 4 + 8

    @async_test
    async def test_gate_and_ledger_converse(self):
        """Producer and consumer glued directly: flood stays bounded."""
        gate = CreditGate()
        ledger = CreditLedger(
            lambda m, b: _update(gate, m, b), window_msgs=4, window_bytes=4000
        )
        await ledger.announce()
        sent = 0
        for _ in range(50):
            await asyncio.wait_for(gate.acquire(10), 1.0)
            sent += 1
            await ledger.drained(10)
        assert sent == 50
        assert gate.used_msgs <= gate.granted_msgs

    def test_bad_windows_rejected(self):
        with pytest.raises(ValueError):
            CreditLedger(lambda m, b: None, window_msgs=0)


async def _update(gate, msgs, nbytes):
    gate.update(msgs, nbytes)


class TestBatchAcquire:
    """`acquire_batch`: one blocking wait per pump batch, then greedy
    non-blocking takes — the credit arithmetic of a coalesced flush."""

    @async_test
    async def test_takes_whole_batch_when_window_allows(self):
        gate = open_gate(msgs=10, nbytes=10_000)
        taken = await gate.acquire_batch([100, 100, 100])
        assert taken == 3
        assert gate.used_msgs == 3

    @async_test
    async def test_partial_when_window_smaller_than_batch(self):
        # A batch larger than the window degrades to a window-sized
        # flush (the caller loops), never a deadlock.
        gate = open_gate(msgs=2, nbytes=10_000)
        taken = await gate.acquire_batch([10, 10, 10, 10])
        assert taken == 2
        assert gate.used_msgs == 2

    @async_test
    async def test_blocks_only_for_the_first_message(self):
        gate = open_gate(msgs=1, nbytes=1000)
        await gate.acquire(10)  # exhaust
        waiter = asyncio.ensure_future(gate.acquire_batch([10, 10, 10]))
        await asyncio.sleep(0.01)
        assert not waiter.done()
        gate.update(3, 3000)  # grant covers two more, not the third
        taken = await asyncio.wait_for(waiter, 1.0)
        assert taken == 2
        assert gate.used_msgs == 3

    @async_test
    async def test_empty_batch_is_free(self):
        gate = open_gate(msgs=1, nbytes=1000)
        assert await gate.acquire_batch([]) == 0
        assert gate.used_msgs == 0

    @async_test
    async def test_unlimited_gate_takes_everything(self):
        gate = CreditGate(unlimited=True)  # pre-v4 peer: never engages
        assert await gate.acquire_batch([10] * 50) == 50

    @async_test
    async def test_nowait_first_message_raises_when_exhausted(self):
        gate = open_gate(msgs=1, nbytes=1000)
        await gate.acquire(10)
        with pytest.raises(CreditExhaustedError):
            await gate.acquire_batch([10, 10], nowait=True)
