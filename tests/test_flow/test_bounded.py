"""Unit tests for the shared bounded-queue overflow primitive."""

import pytest

from repro.flow import BoundedQueue, Outcome


class TestDropPolicy:
    def test_enqueues_until_limit(self):
        queue = BoundedQueue(2, policy="drop")
        assert queue.offer("a") == (Outcome.ENQUEUED, 0)
        assert queue.offer("b") == (Outcome.ENQUEUED, 0)
        assert len(queue) == 2

    def test_drops_the_new_item_at_limit(self):
        queue = BoundedQueue(1, policy="drop")
        queue.offer("old")
        outcome, discarded = queue.offer("new")
        assert outcome is Outcome.DROPPED
        assert discarded == 1
        assert queue.pop() == "old"  # the backlog survived

    def test_counters(self):
        queue = BoundedQueue(1, policy="drop")
        queue.offer("a")
        queue.offer("b")
        queue.offer("c")
        assert queue.enqueued == 1
        assert queue.dropped == 2
        assert queue.stats()["dropped"] == 2


class TestCoalescePolicy:
    def test_backlog_collapses_to_newest(self):
        queue = BoundedQueue(2, policy="coalesce")
        queue.offer("a")
        queue.offer("b")
        outcome, discarded = queue.offer("c")
        assert outcome is Outcome.COALESCED
        assert discarded == 2
        assert len(queue) == 1
        assert queue.pop() == "c"
        assert queue.coalesced == 2


class TestEvictPolicy:
    def test_evict_outcome_leaves_queue_for_caller(self):
        queue = BoundedQueue(1, policy="evict")
        queue.offer("a")
        outcome, discarded = queue.offer("b")
        assert outcome is Outcome.EVICT
        assert discarded == 0
        # The caller owns eviction; the backlog is still inspectable.
        assert len(queue) == 1
        assert queue.clear() == 1
        assert len(queue) == 0


class TestBasics:
    def test_fifo_order(self):
        queue = BoundedQueue(4)
        for item in (1, 2, 3):
            queue.offer(item)
        assert [queue.pop(), queue.pop(), queue.pop()] == [1, 2, 3]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            BoundedQueue(1).pop()

    def test_bool(self):
        queue = BoundedQueue(1)
        assert not queue
        queue.offer("x")
        assert queue

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            BoundedQueue(1, policy="explode")

    def test_bad_limit_rejected(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)


class TestPopAll:
    def test_pop_all_drains_fifo(self):
        queue = BoundedQueue(8)
        for item in (1, 2, 3, 4):
            queue.offer(item)
        assert queue.pop_all() == [1, 2, 3, 4]
        assert len(queue) == 0
        assert not queue

    def test_pop_all_empty_returns_empty_list(self):
        assert BoundedQueue(1).pop_all() == []

    def test_pop_all_then_refill(self):
        # The batched pump's cycle: drain, deliver, drain again.
        queue = BoundedQueue(4)
        queue.offer("a")
        assert queue.pop_all() == ["a"]
        queue.offer("b")
        queue.offer("c")
        assert queue.pop_all() == ["b", "c"]
