"""Unit tests for priority classes, scopes, and the weighted mailbox."""

import asyncio

import pytest

from repro.errors import TaskError
from repro.flow import (
    DEFAULT_WEIGHTS,
    PriorityClass,
    PriorityMailbox,
    classify,
    current_priority,
    priority_scope,
    wire_priority,
)
from repro.tasks import TaskPool
from tests.support import async_test


class TestClassesAndScopes:
    def test_urgency_ordering(self):
        assert PriorityClass.INTERACTIVE < PriorityClass.SYNC < PriorityClass.BATCH

    def test_wire_priority_defaults_to_natural_class(self):
        assert wire_priority(PriorityClass.SYNC) == 2
        assert wire_priority(PriorityClass.BATCH) == 3

    def test_scope_overrides_the_default(self):
        with priority_scope(PriorityClass.INTERACTIVE):
            assert wire_priority(PriorityClass.BATCH) == 1
            assert current_priority() is PriorityClass.INTERACTIVE
        assert current_priority() is None

    def test_scopes_nest_innermost_wins(self):
        with priority_scope(PriorityClass.BATCH):
            with priority_scope(PriorityClass.INTERACTIVE):
                assert current_priority() is PriorityClass.INTERACTIVE
            assert current_priority() is PriorityClass.BATCH

    def test_classify_maps_wire_values(self):
        assert classify(1, PriorityClass.SYNC) is PriorityClass.INTERACTIVE
        assert classify(0, PriorityClass.SYNC) is PriorityClass.SYNC  # unspecified
        assert classify(99, PriorityClass.BATCH) is PriorityClass.BATCH  # garbage


class TestPriorityMailbox:
    @async_test
    async def test_urgent_class_jumps_the_line(self):
        mailbox = PriorityMailbox()
        mailbox.post("batch", priority=PriorityClass.BATCH)
        mailbox.post("interactive", priority=PriorityClass.INTERACTIVE)
        assert await mailbox.take() == "interactive"
        assert await mailbox.take() == "batch"

    @async_test
    async def test_fifo_within_a_class(self):
        mailbox = PriorityMailbox()
        for i in range(5):
            mailbox.post(i, priority=PriorityClass.SYNC)
        assert [await mailbox.take() for _ in range(5)] == list(range(5))

    @async_test
    async def test_weighted_shares_under_full_backlog(self):
        """Out of each 7-dequeue cycle: 4 INTERACTIVE, 2 SYNC, 1 BATCH."""
        mailbox = PriorityMailbox()
        for cls in PriorityClass:
            for i in range(28):
                mailbox.post((cls, i), priority=cls)
        first_cycle = [(await mailbox.take())[0] for _ in range(7)]
        assert first_cycle.count(PriorityClass.INTERACTIVE) == 4
        assert first_cycle.count(PriorityClass.SYNC) == 2
        assert first_cycle.count(PriorityClass.BATCH) == 1

    @async_test
    async def test_no_starvation_of_the_lowest_class(self):
        mailbox = PriorityMailbox()
        for i in range(70):
            mailbox.post(("hi", i), priority=PriorityClass.INTERACTIVE)
        mailbox.post(("lo", 0), priority=PriorityClass.BATCH)
        cycle = DEFAULT_WEIGHTS[PriorityClass.INTERACTIVE] + 1
        taken = [await mailbox.take() for _ in range(2 * cycle)]
        assert ("lo", 0) in taken  # served within two cycles

    @async_test
    async def test_idle_class_does_not_block_the_cycle(self):
        mailbox = PriorityMailbox()
        for i in range(10):
            mailbox.post(i, priority=PriorityClass.BATCH)
        assert [await mailbox.take() for _ in range(10)] == list(range(10))

    @async_test
    async def test_take_blocks_until_post(self):
        mailbox = PriorityMailbox()
        taker = asyncio.ensure_future(mailbox.take())
        await asyncio.sleep(0.005)
        assert not taker.done()
        mailbox.post("x")
        assert await asyncio.wait_for(taker, 1.0) == "x"

    @async_test
    async def test_close_drains_then_eof(self):
        mailbox = PriorityMailbox()
        mailbox.post("last")
        mailbox.close()
        assert await mailbox.take() == "last"
        with pytest.raises(EOFError):
            await mailbox.take()

    @async_test
    async def test_depth_and_len(self):
        mailbox = PriorityMailbox()
        mailbox.post("a", priority=PriorityClass.BATCH)
        mailbox.post("b", priority=PriorityClass.SYNC)
        assert len(mailbox) == 2
        assert mailbox.depth(PriorityClass.BATCH) == 1

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError):
            PriorityMailbox({PriorityClass.SYNC: 0})


class TestPrioritizedTaskPool:
    @async_test
    async def test_urgent_job_overtakes_a_batch_backlog(self):
        """An urgent job never waits behind more than one weighted cycle."""
        order = []
        release = asyncio.Event()

        async def blocker():
            await release.wait()

        def job(tag):
            async def run():
                order.append(tag)

            return run

        async with TaskPool(max_tasks=1, prioritized=True) as pool:
            first = pool.submit(blocker)
            await asyncio.sleep(0.005)  # the single worker is parked
            done = [
                pool.submit(job(f"batch-{i}"), priority=PriorityClass.BATCH)
                for i in range(10)
            ]
            done.append(
                pool.submit(job("urgent"), priority=PriorityClass.INTERACTIVE)
            )
            release.set()
            await asyncio.wait_for(asyncio.gather(first, *done), 5.0)
        # The turn pointer may owe BATCH at most its weight (1) before
        # the cycle wraps back to INTERACTIVE; FIFO batch work cannot
        # hold the urgent job longer than that.
        assert order.index("urgent") <= 1
        assert len(order) == 11

    @async_test
    async def test_priority_rejected_on_plain_pool(self):
        async with TaskPool(max_tasks=1) as pool:
            with pytest.raises(TaskError):
                pool.submit(lambda: None, priority=PriorityClass.BATCH)

    def test_weights_require_prioritized(self):
        with pytest.raises(TaskError):
            TaskPool(weights={PriorityClass.SYNC: 2})
