"""End-to-end overload behaviour: shed, hint, retry, bounded memory.

A real :class:`~repro.ClamServer` is put under admission control and a
real :class:`~repro.ClamClient` drives it.  What these tests pin:

- a shed surfaces client-side as a *typed*
  :class:`~repro.errors.ServerOverloadedError` with the server's
  ``retry_after_ms`` hint — even for a v3 peer, which carries the hint
  only inside the error message text;
- sheds are retryable regardless of idempotency (they happen before
  execution) and never poison the duplicate-serial cache: the retried
  serial executes;
- shed asynchronous posts are reported out of band (v3+) and counted,
  not conflated with stale-object errors;
- credits bound the server's queued-call memory under an open-loop
  flood: per-channel in-flight never exceeds the configured window;
- an admission floor keeps interactive-class traffic flowing while
  batch-class traffic sheds.
"""

import asyncio
import itertools

import pytest

from repro import ClamClient, ClamServer, RemoteInterface
from repro.errors import ServerOverloadedError
from repro.flow import PriorityClass, TokenBucket, priority_scope
from repro.rpc import RetryPolicy
from tests.support import async_test, eventually

_ids = itertools.count(1)

WORK_SOURCE = '''
import asyncio

from repro.stubs import RemoteInterface


class Work(RemoteInterface):
    def __init__(self):
        self.executed = 0
        self.posted = 0

    def bump(self) -> int:
        self.executed += 1
        return self.executed

    def note(self, value: int) -> None:
        self.posted += 1

    async def slow_note(self, value: int) -> None:
        self.posted += 1
        await asyncio.sleep(0.003)

    def counts(self) -> list[int]:
        return [self.executed, self.posted]
'''


class Work(RemoteInterface):
    def bump(self) -> int: ...
    def note(self, value: int) -> None: ...
    def slow_note(self, value: int) -> None: ...
    def counts(self) -> list[int]: ...


async def start(server_kwargs=None, client_kwargs=None):
    server = ClamServer(**(server_kwargs or {}))
    address = await server.start(f"memory://flow-e2e-{next(_ids)}")
    client = await ClamClient.connect(address, **(client_kwargs or {}))
    await client.load_module("flowwork", WORK_SOURCE)
    work = await client.create(Work)
    return server, client, work


class TestShedVerdicts:
    @async_test
    async def test_sync_shed_is_typed_with_hint(self):
        server, client, work = await start(
            server_kwargs=dict(admission=TokenBucket(5.0, burst=3))
        )
        try:
            with pytest.raises(ServerOverloadedError) as info:
                for _ in range(10):
                    await work.bump()
            assert info.value.retry_after_ms >= 1
            # Shed before execution: the bucket admitted exactly 3
            # bumps plus the create/load machinery it also judged.
            executed, _ = await _counts_eventually(work)
            assert executed <= 3
            assert server.metrics.counter("flow.admission.shed").value >= 1
        finally:
            await client.close()
            await server.shutdown()

    @async_test
    async def test_v3_peer_gets_typed_error_from_message_text(self):
        server, client, work = await start(
            server_kwargs=dict(admission=TokenBucket(5.0, burst=3)),
            client_kwargs=dict(protocol_version=3),
        )
        try:
            assert client.protocol_version == 3
            with pytest.raises(ServerOverloadedError) as info:
                for _ in range(10):
                    await work.bump()
            # The hint crossed the wire inside the message text.
            assert info.value.retry_after_ms >= 1
        finally:
            await client.close()
            await server.shutdown()

    @async_test
    async def test_retry_honours_hint_and_shed_is_not_cached(self):
        """The retried serial executes: a shed never enters the dedup cache."""
        server, client, work = await start(
            server_kwargs=dict(admission=TokenBucket(50.0, burst=1)),
            client_kwargs=dict(
                retry=RetryPolicy(attempts=6, base_delay=0.001, max_delay=0.5)
            ),
        )
        try:
            # Burst token spent by create(); each bump may shed first,
            # then succeed on a retry of the *same serial* ~20ms later.
            results = [await work.bump() for _ in range(3)]
            assert results == [1, 2, 3]
            assert client.rpc.overload_retries >= 1
        finally:
            await client.close()
            await server.shutdown()

    @async_test
    async def test_shed_post_reported_out_of_band(self):
        server, client, work = await start(
            server_kwargs=dict(admission=TokenBucket(5.0, burst=2)),
            client_kwargs=dict(flush_delay=0.0),
        )
        try:
            for i in range(10):
                await work.note(i)
            await client.flush()
            await eventually(lambda: client.rpc.overload_posts >= 1)
            # Overload is not staleness: the proxy keeps working once
            # the bucket refills.
            await asyncio.sleep(0.3)
            assert isinstance(await _retry_bump(work), int)
        finally:
            await client.close()
            await server.shutdown()


class TestBoundedMemory:
    @async_test
    async def test_credit_window_bounds_server_inflight(self):
        """Open-loop flood of slow posts: in-flight ≤ the credit window."""
        window = 8
        server, client, work = await start(
            server_kwargs=dict(credit_window=window, credit_bytes=1 << 20),
        )
        try:
            for i in range(100):
                await work.slow_note(i)
            await client.flush()
            session = next(iter(server.sessions.values()))
            flow = session.dispatcher.flow
            await eventually(lambda: flow.inflight == 0, timeout=10.0)
            assert flow.max_inflight <= window
            _, posted = await _counts_eventually(work, expect_posted=100)
            assert posted == 100  # bounded, not lossy
            gate = client.rpc.credit_gate
            assert gate.used_msgs <= gate.granted_msgs
            assert gate.stalls >= 1  # the flood really did block on credits
        finally:
            await client.close()
            await server.shutdown()


class TestPriorityFloor:
    @async_test
    async def test_floor_keeps_interactive_flowing_while_batch_sheds(self):
        # Setup calls run interactive-scoped so the deliberately tiny
        # bucket cannot shed load_module/create.
        with priority_scope(PriorityClass.INTERACTIVE):
            server, client, work = await start(
                server_kwargs=dict(
                    admission=TokenBucket(
                        2.0, burst=1, floor=PriorityClass.INTERACTIVE
                    )
                )
            )
        try:
            # The bucket is empty for SYNC/BATCH traffic...
            with pytest.raises(ServerOverloadedError):
                for _ in range(5):
                    await work.bump()
            # ...but an interactive-scoped call bypasses it entirely.
            with priority_scope(PriorityClass.INTERACTIVE):
                assert isinstance(await work.bump(), int)
            shed_batch = server.metrics.counter("flow.admission.shed.sync").value
            assert shed_batch >= 1
            assert (
                server.metrics.counter("flow.admission.shed.interactive").value == 0
            )
        finally:
            await client.close()
            await server.shutdown()


async def _counts_eventually(work, *, expect_posted=None):
    executed = posted = -1
    for _ in range(50):
        try:
            executed, posted = await work.counts()
        except ServerOverloadedError:
            await asyncio.sleep(0.1)
            continue
        if expect_posted is None or posted >= expect_posted:
            return executed, posted
        await asyncio.sleep(0.02)
    return executed, posted


async def _retry_bump(work):
    for _ in range(20):
        try:
            return await work.bump()
        except ServerOverloadedError:
            await asyncio.sleep(0.1)
    raise AssertionError("bucket never refilled")
