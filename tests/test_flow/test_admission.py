"""Unit tests for the admission policies (shed-before-execute)."""

import pytest

from repro.errors import ServerOverloadedError
from repro.flow import (
    AdmissionChain,
    AdmissionRequest,
    ConcurrencyLimit,
    DeadlineAware,
    PriorityClass,
    TokenBucket,
    overloaded,
    pack_retry_after,
    parse_retry_after,
)


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def request(priority=PriorityClass.SYNC, **kwargs):
    return AdmissionRequest(method="m", priority=priority, **kwargs)


class TestRetryAfterWire:
    def test_roundtrip_through_message_text(self):
        message = pack_retry_after("server shed 'm'", 125)
        assert parse_retry_after(message) == 125

    def test_absent_hint_parses_to_zero(self):
        assert parse_retry_after("plain remote error") == 0

    def test_overloaded_builds_typed_error(self):
        exc = overloaded("m", 0.05)
        assert isinstance(exc, ServerOverloadedError)
        assert exc.retry_after_ms == 50
        assert parse_retry_after(str(exc)) == 50

    def test_overloaded_sub_millisecond_hint_rounds_up(self):
        assert overloaded("m", 0.0001).retry_after_ms == 1

    def test_overloaded_zero_hint_stays_zero(self):
        assert overloaded("m", 0.0).retry_after_ms == 0


class TestTokenBucket:
    def test_burst_admits_then_sheds(self):
        clock = FakeClock()
        bucket = TokenBucket(10.0, burst=3, clock=clock)
        verdicts = [bucket.judge(request()) for _ in range(4)]
        assert verdicts[:3] == [None, None, None]
        assert verdicts[3] is not None and verdicts[3] > 0

    def test_hint_is_time_to_next_token(self):
        clock = FakeClock()
        bucket = TokenBucket(10.0, burst=1, clock=clock)
        assert bucket.judge(request()) is None
        hint = bucket.judge(request())
        assert hint == pytest.approx(0.1)  # 1 token / 10 per second

    def test_refill_restores_admission(self):
        clock = FakeClock()
        bucket = TokenBucket(10.0, burst=1, clock=clock)
        bucket.judge(request())
        assert bucket.judge(request()) is not None
        clock.advance(0.2)
        assert bucket.judge(request()) is None

    def test_floor_exempts_urgent_traffic(self):
        clock = FakeClock()
        bucket = TokenBucket(10.0, burst=1, clock=clock, floor=PriorityClass.INTERACTIVE)
        assert not bucket.applies_to(request(priority=PriorityClass.INTERACTIVE))
        assert bucket.applies_to(request(priority=PriorityClass.SYNC))
        assert bucket.applies_to(request(priority=PriorityClass.BATCH))

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0)


class TestConcurrencyLimit:
    def test_sheds_at_the_limit(self):
        limit = ConcurrencyLimit(initial=2, clock=FakeClock())
        limit.note_start(request())
        limit.note_start(request())
        assert limit.judge(request()) is not None
        limit.note_finish(request(), queue_wait=0.0, service_time=0.001)
        assert limit.judge(request()) is None

    def test_slow_queue_wait_shrinks_multiplicatively(self):
        clock = FakeClock()
        limit = ConcurrencyLimit(initial=100, target_wait=0.05, beta=0.5, clock=clock)
        limit.note_start(request())
        limit.note_finish(request(), queue_wait=0.5, service_time=0.001)
        assert limit.limit == pytest.approx(50.0)
        assert limit.shrinks == 1

    def test_cooldown_bounds_shrink_rate(self):
        clock = FakeClock()
        limit = ConcurrencyLimit(
            initial=100, target_wait=0.05, beta=0.5, cooldown=1.0, clock=clock
        )
        for _ in range(5):
            limit.note_start(request())
            limit.note_finish(request(), queue_wait=0.5, service_time=0.001)
        assert limit.shrinks == 1  # one burst, one shrink
        clock.advance(2.0)
        limit.note_start(request())
        limit.note_finish(request(), queue_wait=0.5, service_time=0.001)
        assert limit.shrinks == 2

    def test_on_target_completions_regrow_additively(self):
        clock = FakeClock()
        limit = ConcurrencyLimit(initial=4, max_limit=8, clock=clock)
        before = limit.limit
        for _ in range(16):
            limit.note_start(request())
            limit.note_finish(request(), queue_wait=0.0, service_time=0.001)
        assert before < limit.limit <= 8.0

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            ConcurrencyLimit(initial=0)
        with pytest.raises(ValueError):
            ConcurrencyLimit(beta=1.5)


class TestDeadlineAware:
    def test_no_deadline_never_judged(self):
        policy = DeadlineAware(initial_service_time=10.0)
        assert policy.judge(request(deadline_ms=0, queue_depth=100)) is None

    def test_unmeetable_deadline_sheds(self):
        policy = DeadlineAware(initial_service_time=0.1)
        # 10 queued ahead × 100ms each ≫ a 50ms deadline.
        verdict = policy.judge(request(deadline_ms=50, queue_depth=10))
        assert verdict is not None and verdict > 0

    def test_meetable_deadline_admits(self):
        policy = DeadlineAware(initial_service_time=0.001)
        assert policy.judge(request(deadline_ms=1000, queue_depth=3)) is None

    def test_service_time_is_learned(self):
        policy = DeadlineAware(initial_service_time=0.001, alpha=0.5)
        policy.note_finish(request(), queue_wait=0.0, service_time=1.0)
        assert policy.service_ewma == pytest.approx(0.5005)


class TestAdmissionChain:
    def test_first_shed_wins(self):
        clock = FakeClock()
        empty = TokenBucket(1.0, burst=1, clock=clock)
        empty.judge(request())  # drain the only token
        chain = AdmissionChain(empty, DeadlineAware())
        verdict = chain.judge(request())
        assert verdict == pytest.approx(1.0)  # the bucket's hint

    def test_notes_fan_out_to_all_members(self):
        clock = FakeClock()
        limit_a = ConcurrencyLimit(initial=10, clock=clock)
        limit_b = ConcurrencyLimit(initial=10, clock=clock)
        chain = AdmissionChain(limit_a, limit_b)
        chain.note_start(request())
        assert limit_a.active == 1 and limit_b.active == 1
        chain.note_finish(request(), queue_wait=0.0, service_time=0.001)
        assert limit_a.active == 0 and limit_b.active == 0

    def test_floor_respected_per_member(self):
        clock = FakeClock()
        batch_only = TokenBucket(
            1.0, burst=1, clock=clock, floor=PriorityClass.SYNC
        )
        batch_only.judge(request(priority=PriorityClass.BATCH))  # drain
        chain = AdmissionChain(batch_only)
        assert chain.judge(request(priority=PriorityClass.SYNC)) is None
        assert chain.judge(request(priority=PriorityClass.BATCH)) is not None
