"""Seeded chaos against the durable store-and-forward path.

Two claims from the durability design, each replayed per seed
(``CHAOS_SEED`` env var, else 1-5, same convention as
``test_chaos.py``):

- **kill-mid-stream exactly-once** — a durable subscriber rides a
  faulty wire (drops, duplicates, delays) and is then killed abruptly;
  a successor under the same durable id resumes from the victim's
  cursor.  Whatever the schedule did to the live phase, the union of
  the two cursors' admissions must be every event exactly once, in
  order: unconfirmed deliveries respill, duplicates fall to the
  cursor, and the replay fills every hole.  Reorder stays at zero —
  ordered delivery is a transport guarantee the store builds on, not
  one it re-creates.
- **power-cut prefix recovery** — an ``fsync="always"`` log cut at a
  seeded random byte offset must recover exactly the records whose
  bytes fully reached the disk before the cut, flag the damage as a
  torn tail (a normal crash signature, not corruption), and keep
  appending where the prefix left off.
"""

import itertools
import os
import random
from typing import Callable

import pytest

from repro import ClamClient, ClamServer, RemoteInterface
from repro.cluster import UpcallGroup
from repro.faults import FaultInjector, FaultRates, SeededSchedule
from repro.obs.metrics import MetricsRegistry
from repro.rpc import RetryPolicy
from repro.store import ReplayCursor, Spool, SubscriberLog
from tests.support import async_test, eventually

_ids = itertools.count(1)

SEEDS = [int(s) for s in os.environ.get("CHAOS_SEED", "").split(",") if s] or [
    1,
    2,
    3,
    4,
    5,
]

N_EVENTS = 120


class Hub(RemoteInterface):
    def __init__(self, spool: Spool):
        self.group = UpcallGroup(
            "events", store=spool, queue_limit=32, resume_poll=0.05
        )

    def join(
        self, proc: Callable[[int, int], None], durable: str, resume_from: int
    ) -> int:
        return self.group.subscribe(proc, durable=durable, resume_from=resume_from)


def store_chaos_rates() -> FaultRates:
    """Loss, latency, and duplication — but never reordering or
    injector-driven closes: the kill in the workload is the close, and
    in-order frames are the transport contract the cursor relies on."""
    return FaultRates(
        drop=0.02,
        delay=0.05,
        duplicate=0.03,
        reorder=0.0,
        corrupt=0.0,
        close=0.0,
        slow=0.02,
        max_delay=0.003,
    )


@pytest.mark.parametrize("seed", SEEDS)
@async_test
async def test_kill_mid_stream_is_exactly_once(seed, tmp_path):
    fault_metrics = MetricsRegistry()
    schedule = SeededSchedule(
        seed, rates=store_chaos_rates(), warmup=10, max_faults=100
    )
    injector = FaultInjector(schedule, metrics=fault_metrics)

    spool = Spool(str(tmp_path / "spool"), fsync="never")
    server = ClamServer(
        session_linger=30.0, degrade_upcalls=True, upcall_timeout=0.3
    )
    hub = Hub(spool)
    server.attach_store(spool)
    server.publish("hub", hub)
    address = await server.start(f"memory://store-chaos-{seed}-{next(_ids)}")
    chaos_url = injector.wrap_url(address)
    try:
        # -- the victim: a durable subscriber on the faulty wire -----------
        client_a = await ClamClient.connect(
            chaos_url,
            call_timeout=1.0,
            retry=RetryPolicy(
                attempts=8, base_delay=0.01, max_delay=0.1, seed=seed
            ),
        )
        cursor_a = ReplayCursor()
        got_a: list[tuple[int, int]] = []

        def on_event_a(seq: int, value: int) -> None:
            if cursor_a.admit(seq):
                got_a.append((seq, value))

        proxy_a = await client_a.lookup(Hub, "hub")
        await proxy_a.join(on_event_a, "sub", 0)

        # Phase 1: half the stream fights the schedule.  A dropped
        # upcall parks the subscription mid-phase — that is fine, the
        # kill below just lands on a subscriber that is already down.
        for value in range(N_EVENTS // 2):
            hub.group.post(value)
        await eventually(
            lambda: len(got_a) >= 10 or hub.group.parked_subscribers == 1,
            timeout=30.0,
        )
        await client_a.rpc.channel.close()
        await client_a._upcall_service._channel.close()

        # Phase 2: the publisher never pauses; everything spills.
        for value in range(N_EVENTS // 2, N_EVENTS):
            hub.group.post(value)
        await eventually(lambda: hub.group.parked_subscribers == 1)

        # -- the successor: same id, clean wire, resumes from the
        #    victim's cursor.  The replay must close every hole the
        #    chaos opened. ------------------------------------------------
        client_b = await ClamClient.connect(address)
        cursor_b = ReplayCursor(cursor_a.last)
        got_b: list[tuple[int, int]] = []

        def on_event_b(seq: int, value: int) -> None:
            if cursor_b.admit(seq):
                got_b.append((seq, value))

        proxy_b = await client_b.lookup(Hub, "hub")
        await proxy_b.join(on_event_b, "sub", cursor_a.last)
        await eventually(
            lambda: len(got_a) + len(got_b) == N_EVENTS, timeout=30.0
        )
        await hub.group.flush(timeout=30.0)

        combined = [value for _, value in got_a] + [value for _, value in got_b]
        assert combined == list(range(N_EVENTS)), (
            f"seed {seed}: exactly-once broken — "
            f"{len(combined)} admitted, victim saw {len(got_a)}"
        )
        seqs = [seq for seq, _ in got_a] + [seq for seq, _ in got_b]
        assert seqs == sorted(seqs)
        assert injector.injected > 0, f"seed {seed}: no faults injected"

        await client_b.close()
        try:
            await client_a.close()
        except Exception:
            pass
    finally:
        await hub.group.close()
        spool.close()
        await server.shutdown()
        injector.release_url()


@pytest.mark.parametrize("seed", SEEDS)
def test_power_cut_recovers_the_durable_prefix(seed, tmp_path):
    rng = random.Random(seed)
    path = str(tmp_path / "sub.log")
    log = SubscriberLog(path, fsync="always").open()
    records = []
    ends = []
    for i in range(40):
        payload = bytes(rng.randrange(256) for _ in range(rng.randint(1, 64)))
        log.append(i + 1, payload)
        records.append((i + 1, payload))
        ends.append(log.size_bytes)
    log.close()

    # The power cut: the file ends at an arbitrary byte.
    cut = rng.randint(0, ends[-1])
    os.truncate(path, cut)

    incidents = []
    again = SubscriberLog(
        path, on_incident=lambda r, d: incidents.append(r)
    ).open()
    keep = [rec for rec, end in zip(records, ends) if end <= cut]
    assert again.replay(0) == keep, f"seed {seed}: cut at {cut}"
    # A clean cut at a record boundary is not damage; anything else is
    # a torn tail — never a corruption incident.
    if cut in (0, *ends):
        assert again.truncations == 0
    else:
        assert again.truncations == 1
        assert "torn-tail" in again.recovered_detail
    assert incidents == []

    # The log keeps appending where the surviving prefix left off.
    next_seq = keep[-1][0] + 1 if keep else 1
    again.append(next_seq, b"after the outage")
    assert [s for s, _ in again.replay(0)] == [
        *[s for s, _ in keep],
        next_seq,
    ]
    again.close()
