"""Unit tests for the fault-injection layer itself.

Every :class:`~repro.faults.FaultKind` is exercised over a raw memory
connection pair, pinned down by a scripted schedule; the seeded
schedule is checked for determinism (the whole point of seeds: a chaos
failure replays); and the audit surfaces (records, counters, trace
points) are checked so a chaos run can prove faults actually fired.
"""

import asyncio

import pytest

from repro.errors import ConnectionClosedError, TransportError
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultRates,
    FaultRule,
    FaultyConnection,
    ScriptedSchedule,
    SeededSchedule,
)
from repro.ipc import register_scheme, transport_for_url, unregister_scheme
from repro.ipc.memory import MemoryConnection
from repro.netproto.link import LinkError, LossyLink
from repro.obs.metrics import MetricsRegistry
from repro.trace import KIND_FAULT_INJECT, Tracer
from tests.support import async_test


def faulty_pipe(rules, **injector_kwargs):
    """A (faulty, plain) connection pair driven by scripted rules."""
    a, b = MemoryConnection.pipe()
    injector = FaultInjector(ScriptedSchedule(rules), **injector_kwargs)
    return FaultyConnection(a, injector), b, injector


class TestFaultKinds:
    @async_test
    async def test_drop_on_send(self):
        faulty, plain, injector = faulty_pipe(
            [FaultRule(index=0, kind=FaultKind.DROP, direction="send")]
        )
        await faulty.send(b"lost")
        await faulty.send(b"kept")
        assert await plain.recv() == b"kept"
        assert injector.counts() == {"drop": 1}

    @async_test
    async def test_drop_on_recv(self):
        faulty, plain, injector = faulty_pipe(
            [FaultRule(index=0, kind=FaultKind.DROP, direction="recv")]
        )
        await plain.send(b"lost")
        await plain.send(b"kept")
        assert await faulty.recv() == b"kept"
        assert injector.counts() == {"drop": 1}

    @async_test
    async def test_delay_preserves_order(self):
        faulty, plain, injector = faulty_pipe(
            [FaultRule(index=0, kind=FaultKind.DELAY, direction="send", delay=0.01)]
        )
        await faulty.send(b"one")
        await faulty.send(b"two")
        assert await plain.recv() == b"one"
        assert await plain.recv() == b"two"
        assert injector.counts() == {"delay": 1}

    @async_test
    async def test_duplicate_on_send(self):
        faulty, plain, injector = faulty_pipe(
            [FaultRule(index=0, kind=FaultKind.DUPLICATE, direction="send")]
        )
        await faulty.send(b"twice")
        assert await plain.recv() == b"twice"
        assert await plain.recv() == b"twice"
        assert injector.counts() == {"duplicate": 1}

    @async_test
    async def test_duplicate_on_recv(self):
        faulty, plain, injector = faulty_pipe(
            [FaultRule(index=0, kind=FaultKind.DUPLICATE, direction="recv")]
        )
        await plain.send(b"twice")
        assert await faulty.recv() == b"twice"
        assert await faulty.recv() == b"twice"

    @async_test
    async def test_reorder_swaps_adjacent_frames(self):
        faulty, plain, injector = faulty_pipe(
            [FaultRule(index=0, kind=FaultKind.REORDER, direction="send")]
        )
        await faulty.send(b"first")
        await faulty.send(b"second")
        assert await plain.recv() == b"second"
        assert await plain.recv() == b"first"

    @async_test
    async def test_reorder_on_recv(self):
        faulty, plain, injector = faulty_pipe(
            [FaultRule(index=0, kind=FaultKind.REORDER, direction="recv")]
        )
        await plain.send(b"first")
        await plain.send(b"second")
        assert await faulty.recv() == b"second"
        assert await faulty.recv() == b"first"

    @async_test
    async def test_reordered_frame_survives_close(self):
        faulty, plain, injector = faulty_pipe(
            [FaultRule(index=0, kind=FaultKind.REORDER, direction="recv")]
        )
        await plain.send(b"held")
        await plain.close()
        assert await faulty.recv() == b"held"
        with pytest.raises(ConnectionClosedError):
            await faulty.recv()

    @async_test
    async def test_corrupt_flips_bytes(self):
        faulty, plain, injector = faulty_pipe(
            [FaultRule(index=0, kind=FaultKind.CORRUPT, direction="send", offset=1)]
        )
        await faulty.send(b"abc")
        mangled = await plain.recv()
        assert mangled != b"abc" and len(mangled) == 3
        assert mangled[0] == ord("a") and mangled[2] == ord("c")

    @async_test
    async def test_close_is_abrupt(self):
        faulty, plain, injector = faulty_pipe(
            [FaultRule(index=1, kind=FaultKind.CLOSE, direction="send")]
        )
        await faulty.send(b"fine")
        with pytest.raises(ConnectionClosedError, match="injected"):
            await faulty.send(b"doomed")
        assert faulty.closed

    @async_test
    async def test_slow_stalls_the_reader(self):
        faulty, plain, injector = faulty_pipe(
            [FaultRule(index=0, kind=FaultKind.SLOW, direction="recv", delay=0.02)]
        )
        await plain.send(b"late")
        loop = asyncio.get_running_loop()
        before = loop.time()
        assert await faulty.recv() == b"late"
        assert loop.time() - before >= 0.015


class TestAudit:
    @async_test
    async def test_records_counters_and_trace_points(self):
        metrics = MetricsRegistry()
        tracer = Tracer()
        seen = []
        tracer.subscribe(seen.append)
        faulty, plain, injector = faulty_pipe(
            [
                FaultRule(index=0, kind=FaultKind.DROP, direction="send"),
                FaultRule(index=1, kind=FaultKind.DUPLICATE, direction="send"),
            ],
            metrics=metrics,
            tracer=tracer,
        )
        await faulty.send(b"lost")
        await faulty.send(b"twice")
        assert metrics.counter("faults.injected", kind="drop").value == 1
        assert metrics.counter("faults.injected", kind="duplicate").value == 1
        assert metrics.counter("faults.injected.total").value == 2
        assert [r.kind for r in injector.records] == [
            FaultKind.DROP,
            FaultKind.DUPLICATE,
        ]
        assert [e.kind for e in seen] == [KIND_FAULT_INJECT, KIND_FAULT_INJECT]
        assert injector.injected == 2


class TestSeededSchedule:
    def _sequence(self, seed, frames=400):
        schedule = SeededSchedule(
            seed, rates=FaultRates(corrupt=0.01, close=0.01), warmup=0
        )
        return [
            (i, d.kind) if (d := schedule.decide("send", i, b"x")) else None
            for i in range(frames)
        ]

    def test_same_seed_same_faults(self):
        assert self._sequence(7) == self._sequence(7)

    def test_different_seeds_differ(self):
        assert self._sequence(7) != self._sequence(8)

    def test_warmup_frames_pass_untouched(self):
        schedule = SeededSchedule(1, rates=FaultRates(drop=1.0), warmup=3)
        decisions = [schedule.decide("send", i, b"x") for i in range(5)]
        assert decisions[:3] == [None, None, None]
        assert all(d is not None for d in decisions[3:])

    def test_max_faults_bounds_injection(self):
        schedule = SeededSchedule(1, rates=FaultRates(drop=1.0), warmup=0, max_faults=2)
        decisions = [schedule.decide("send", i, b"x") for i in range(10)]
        assert sum(d is not None for d in decisions) == 2


class TestChaosUrl:
    @async_test
    async def test_wrap_url_round_trips_through_injector(self):
        injector = FaultInjector(ScriptedSchedule([]))
        url = injector.wrap_url("memory://wrap-url-test")
        try:
            scheme = url.partition("://")[0]
            assert scheme.startswith("chaos")
            _transport, native = transport_for_url(url)
            assert native == "memory://wrap-url-test"
        finally:
            injector.release_url()
        with pytest.raises(TransportError):
            transport_for_url(url)

    def test_builtin_schemes_cannot_be_shadowed(self):
        with pytest.raises(TransportError):
            register_scheme("memory", lambda url: None)
        with pytest.raises(TransportError):
            register_scheme("bad://", lambda url: None)
        unregister_scheme("never-registered")  # no-op, no raise


class TestLossyLinkSeededDrop:
    @async_test
    async def test_drop_rate_is_deterministic_per_seed(self):
        async def run(seed):
            link = LossyLink(drop_rate=0.3, seed=seed)
            got = []

            async def receive(frame):
                got.append(frame)

            link.attach_b(receive)
            for i in range(100):
                await link.send_from_a(str(i))
            return got

        first, second, other = await run(5), await run(5), await run(6)
        assert first == second
        assert first != other
        assert 0 < len(first) < 100

    def test_policies_are_exclusive(self):
        with pytest.raises(LinkError):
            LossyLink(drop_rate=0.5, drop_every_nth=2)
        with pytest.raises(LinkError):
            LossyLink(drop_rate=1.5)
