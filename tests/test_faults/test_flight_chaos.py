"""The flight recorder under seeded chaos: incidents cut dumps.

The acceptance scenario for the telemetry plane: a seeded fault
schedule mistreats the wire while a deadline-scoped call overruns; the
server's dispatcher reports the expiry as an incident, and the
always-on flight recorder freezes the recent past into a JSONL
artifact under ``flight_dir`` — automatically, with no operator in the
loop.  Re-running with the same seed replays the same schedule.
"""

import itertools
import json
import os
import tempfile

import pytest

from repro import ClamClient, ClamServer, RemoteInterface
from repro.errors import CallTimeoutError, RemoteError
from repro.faults import FaultInjector, FaultRates, SeededSchedule
from repro.obs.metrics import MetricsRegistry
from repro.rpc import deadline_scope
from repro.stubs import idempotent
from tests.support import async_test, eventually

_ids = itertools.count(1)

NAPPER_SOURCE = '''
import asyncio

from repro.stubs import RemoteInterface


class Napper(RemoteInterface):
    def __init__(self):
        self.finished = 0

    async def nap(self, delay_ms: int) -> int:
        await asyncio.sleep(delay_ms / 1000)
        self.finished += 1
        return self.finished

    def ping(self) -> str:
        return "pong"
'''


class Napper(RemoteInterface):
    async def nap(self, delay_ms: int) -> int: ...
    @idempotent
    def ping(self) -> str: ...


def mild_rates() -> FaultRates:
    """Latency-only chaos: delays stretch the conversation without
    dropping the frames the deadline machinery rides on."""
    return FaultRates(
        drop=0.0, delay=0.2, duplicate=0.0, reorder=0.0,
        corrupt=0.0, close=0.0, slow=0.05, max_delay=0.01,
    )


@pytest.mark.parametrize("seed", [7, 11])
@async_test
async def test_deadline_expiry_under_chaos_cuts_flight_dump(seed):
    fault_metrics = MetricsRegistry()
    schedule = SeededSchedule(seed, rates=mild_rates(), warmup=4, max_faults=50)
    injector = FaultInjector(schedule, metrics=fault_metrics)

    with tempfile.TemporaryDirectory(prefix="clam-chaos-flight-") as flight_dir:
        server = ClamServer(flight_dir=flight_dir)
        address = await server.start(f"memory://flight-chaos-{seed}-{next(_ids)}")
        wrapped = injector.wrap_url(address)
        client = await ClamClient.connect(wrapped)
        try:
            await client.load_module("napper", NAPPER_SOURCE)
            napper = await client.create(Napper)
            assert await napper.ping() == "pong"

            # the incident: a call that cannot meet its deadline
            with pytest.raises((CallTimeoutError, RemoteError)):
                with deadline_scope(0.05):
                    await napper.nap(500)

            # the dump is cut by the dispatcher, not by this test
            await eventually(lambda: len(server.flight_dumps) >= 1)
            path = server.flight_dumps[0]
            assert os.path.dirname(path) == flight_dir
            assert "deadline-expired" in os.path.basename(path)

            lines = open(path, encoding="utf-8").read().splitlines()
            header = json.loads(lines[0])
            assert header["flight"] == 1
            assert header["reason"] == "deadline-expired"
            events = [json.loads(line) for line in lines[1:]]
            incident = next(e for e in events if e["kind"] == "incident")
            assert incident["name"] == "deadline-expired"
            assert "nap" in incident["detail"]
            # the frozen past includes the healthy traffic before it
            assert any(e["kind"] == "call" for e in events)

            # the audit trail agrees: an incident counter ticked and
            # the injected faults were themselves counted
            snapshot = server.metrics.snapshot()
            assert snapshot[
                "flight.incidents{reason=deadline-expired}"
            ] >= 1.0
        finally:
            await client.close()
            await server.shutdown()
            injector.release_url()
