"""Stale handles surfacing client-side (§3.5.1 validity checking).

After the server releases (or re-tags) an object, every outstanding
copy of its handle is a dangling capability.  These tests pin how that
surfaces at the client: synchronous calls raise
:class:`~repro.errors.RemoteStaleError` (a
:class:`~repro.errors.StaleHandleError`), *batched posts* — which have
no reply to carry the error — are reported out-of-band on protocol v3
and mark the handle locally, and once marked, later uses fail fast
without touching the wire.
"""

import itertools

import pytest

from repro import ClamClient, ClamServer, RemoteInterface
from repro.errors import RemoteError, RemoteStaleError, StaleHandleError
from repro.wire import DEADLINE_VERSION
from tests.support import async_test, eventually

_ids = itertools.count(1)

COUNTER_SOURCE = '''
from repro.stubs import RemoteInterface


class Counter(RemoteInterface):
    def __init__(self):
        self.value = 0

    def add(self, amount: int) -> None:
        self.value += amount

    def total(self) -> int:
        return self.value
'''


class Counter(RemoteInterface):
    def add(self, amount: int) -> None: ...
    def total(self) -> int: ...


async def start(**client_kwargs):
    server = ClamServer()
    address = await server.start(f"memory://stale-{next(_ids)}")
    client = await ClamClient.connect(address, **client_kwargs)
    await client.load_module("counter", COUNTER_SOURCE)
    counter = await client.create(Counter)
    return server, client, counter


class TestSyncCalls:
    @async_test
    async def test_released_handle_raises_stale(self):
        server, client, counter = await start()
        await counter.add(1)
        assert await counter.total() == 1
        await client.release(counter)
        with pytest.raises(StaleHandleError):
            await counter.total()
        await client.close()
        await server.shutdown()

    @async_test
    async def test_stale_error_is_also_a_remote_error(self):
        """Compatibility: callers catching RemoteError keep working."""
        server, client, counter = await start()
        await client.release(counter)
        with pytest.raises(RemoteError) as info:
            await counter.total()
        assert info.value.remote_type == "StaleHandleError"
        assert isinstance(info.value, RemoteStaleError)
        await client.close()
        await server.shutdown()

    @async_test
    async def test_marked_handle_fails_fast_without_wire_round_trip(self):
        server, client, counter = await start()
        await client.release(counter)
        with pytest.raises(StaleHandleError):
            await counter.total()
        sent_before = client.rpc.sync_calls
        with pytest.raises(StaleHandleError):
            await counter.total()
        assert client.rpc.sync_calls == sent_before  # rejected locally
        await client.close()
        await server.shutdown()

    @async_test
    async def test_rotated_tag_is_a_dead_capability(self):
        """Release-and-republish in one step: same oid, fresh tag.

        The old handle hits the §3.5.1 tag comparison and fails; the
        new handle reaches the same (surviving) object.
        """
        server, client, counter = await start()
        await counter.add(3)
        assert await counter.total() == 3  # fence the batched add
        old_handle = counter._clam_handle_
        new_handle = server.exports.table.rotate_tag(old_handle)
        assert (new_handle.oid, new_handle.tag) != (old_handle.oid, old_handle.tag)

        with pytest.raises(StaleHandleError) as info:
            await counter.total()
        assert info.value.remote_type == "ForgedHandleError"
        assert client.rpc.is_stale(old_handle)

        fresh = client.proxy(Counter, new_handle)
        assert await fresh.total() == 3  # the object itself survived
        await client.close()
        await server.shutdown()


class TestBatchedPosts:
    @async_test
    async def test_stale_post_marks_handle_out_of_band(self):
        """A post has no reply; v3 reports its stale fault unasked."""
        server, client, counter = await start()
        await counter.add(1)
        await client.release(counter)

        await counter.add(5)  # queued; the fault comes back later
        await client.flush()
        await eventually(lambda: client.rpc.is_stale(counter._clam_handle_))
        assert client.metrics.counter("rpc.client.stale_posts").value == 1

        # Later posts are refused locally, before batching.
        with pytest.raises(StaleHandleError):
            await counter.add(6)
        await client.close()
        await server.shutdown()

    @async_test
    async def test_v2_client_posts_fail_silently(self):
        """Interop: a pre-v3 peer gets no out-of-band fault reports.

        The post is dropped server-side (counted as an async error, the
        seed behaviour) and the client's handle is never marked.
        """
        server, client, counter = await start(
            protocol_version=DEADLINE_VERSION - 1
        )
        await client.release(counter)
        await counter.add(5)
        await client.flush()
        await client.sync()  # fence: the post has been processed
        assert not client.rpc.is_stale(counter._clam_handle_)
        assert len(server.async_errors) == 1
        await client.close()
        await server.shutdown()

    @async_test
    async def test_mixed_batch_survives_one_stale_post(self):
        """One bad post must not poison the batch around it."""
        server, client, doomed = await start()
        healthy = await client.create(Counter)
        await client.release(doomed)

        await doomed.add(1)
        await healthy.add(2)
        await healthy.add(3)
        await client.flush()
        assert await healthy.total() == 5
        await eventually(lambda: client.rpc.is_stale(doomed._clam_handle_))
        assert not client.rpc.is_stale(healthy._clam_handle_)
        await client.close()
        await server.shutdown()
