"""Resilience of the live stack: deadlines, retries, dedup, timeouts.

Scripted fault schedules pin down one precise network failure per test
(drop this request, duplicate that one) and the assertions check the
paired client/server mechanisms: retry with the *same* serial, the
server's duplicate-call cache keeping execution at-most-once, the
late-reply audit trail (logged once per connection), and the
``connect_timeout`` bound on establishment.
"""

import asyncio
import itertools
import logging

import pytest

import repro.server.clam as server_module
from repro import ClamClient, ClamServer, RemoteInterface
from repro.errors import CallTimeoutError, TransportError
from repro.faults import FaultInjector, FaultKind
from repro.ipc import serve
from repro.rpc import RetryPolicy, deadline_scope, remaining_deadline
from repro.stubs import idempotent
from repro.wire import DEADLINE_VERSION, PROTOCOL_VERSION
from tests.support import async_test, eventually

_ids = itertools.count(1)

WORKER_SOURCE = '''
import asyncio

from repro.stubs import RemoteInterface


class Worker(RemoteInterface):
    def __init__(self):
        self.executed = 0

    def bump(self) -> int:
        self.executed += 1
        return self.executed

    def slowop(self) -> int:
        self.executed += 1
        return self.executed

    async def nap(self, delay_ms: int) -> int:
        await asyncio.sleep(delay_ms / 1000)
        self.executed += 1
        return self.executed

    def total(self) -> int:
        return self.executed
'''


class Worker(RemoteInterface):
    @idempotent
    def bump(self) -> int: ...
    def slowop(self) -> int: ...
    async def nap(self, delay_ms: int) -> int: ...
    @idempotent
    def total(self) -> int: ...


class MethodSchedule:
    """Scripted schedule keyed on frame *content*, not index.

    Fires ``kind`` on the first frame (in ``direction``) containing
    ``marker`` — which pins the fault on a specific call's request
    regardless of how many setup frames preceded it.  Frames carrying
    the module *source* (which spells every method name too) are
    exempted by the ``exclude`` marker.
    """

    def __init__(self, direction, marker, kind, *, times=1, exclude=b"RemoteInterface"):
        from repro.faults import FaultDecision

        self._direction = direction
        self._marker = marker
        self._kind = kind
        self._left = times
        self._exclude = exclude
        self._decision = FaultDecision(kind=kind)

    def decide(self, direction, index, frame):
        if (
            self._left > 0
            and direction == self._direction
            and self._marker in frame
            and self._exclude not in frame
        ):
            self._left -= 1
            return self._decision
        return None


async def start(schedule=None, **client_kwargs):
    server = ClamServer()
    address = await server.start(f"memory://resilience-{next(_ids)}")
    injector = None
    if schedule is not None:
        injector = FaultInjector(schedule)
        address = injector.wrap_url(address)
    client = await ClamClient.connect(address, **client_kwargs)
    await client.load_module("worker", WORKER_SOURCE)
    worker = await client.create(Worker)
    return server, client, worker, injector


async def stop(server, client, injector=None):
    await client.close()
    await server.shutdown()
    if injector is not None:
        injector.release_url()


def only_session(server):
    (session,) = server.sessions.values()
    return session


class TestRetryAndDedup:
    @async_test
    async def test_retry_resends_after_dropped_request(self):
        schedule = MethodSchedule("send", b"bump", FaultKind.DROP)
        server, client, worker, injector = await start(
            schedule,
            call_timeout=0.1,
            retry=RetryPolicy(attempts=3, base_delay=0.01, seed=1),
        )
        assert await worker.bump() == 1
        assert await worker.total() == 1  # executed exactly once
        assert injector.counts() == {"drop": 1}
        assert client.metrics.counter("rpc.client.retries").value == 1
        await stop(server, client, injector)

    @async_test
    async def test_duplicate_request_executes_once(self):
        """The server's duplicate-serial cache keeps calls at-most-once.

        The duplicated request frame reaches the dispatcher twice; the
        second hit resends the cached answer without executing.  The
        surplus answer is absorbed by the client (as a no-op on the
        already-resolved waiter, or as a late reply — a scheduling
        race), never surfaced.
        """
        schedule = MethodSchedule("send", b"bump", FaultKind.DUPLICATE)
        server, client, worker, injector = await start(schedule)
        assert await worker.bump() == 1
        assert await worker.total() == 1
        session = only_session(server)
        await eventually(lambda: session.dispatcher.duplicate_calls == 1)
        # load_module, create, bump, total — the duplicate ran nothing.
        assert session.dispatcher.calls_executed == 4
        await stop(server, client, injector)

    @async_test
    async def test_unmarked_method_never_retries(self):
        schedule = MethodSchedule("send", b"slowop", FaultKind.DROP)
        server, client, worker, injector = await start(
            schedule,
            call_timeout=0.05,
            retry=RetryPolicy(attempts=5, base_delay=0.01, seed=1),
        )
        with pytest.raises(CallTimeoutError):
            await worker.slowop()
        assert client.metrics.counter("rpc.client.retries").value == 0
        await stop(server, client, injector)

    @async_test
    async def test_retry_survives_repeated_drops_until_attempts_exhaust(self):
        schedule = MethodSchedule("send", b"bump", FaultKind.DROP, times=10)
        server, client, worker, injector = await start(
            schedule,
            call_timeout=0.03,
            retry=RetryPolicy(attempts=3, base_delay=0.01, seed=1),
        )
        with pytest.raises(CallTimeoutError):
            await worker.bump()
        # Two retries happened (three attempts), all eaten by the wire.
        assert client.metrics.counter("rpc.client.retries").value == 2
        assert await worker.total() == 0
        await stop(server, client, injector)


class TestLateReplies:
    @async_test
    async def test_late_replies_counted_and_logged_once(self, caplog):
        """Satellite: the late-reply path is audited, not silent.

        A v2 peer has no wire deadlines, so a timed-out nap finishes
        remotely and its reply arrives after the waiter gave up: a late
        reply.  Every one is counted; only the first is logged.
        """
        server, client, worker, _ = await start(
            call_timeout=0.03, protocol_version=DEADLINE_VERSION - 1
        )
        with caplog.at_level(logging.WARNING, logger="repro.rpc.connection"):
            for _ in range(2):
                with pytest.raises(CallTimeoutError):
                    await worker.nap(60)
            await eventually(lambda: client.rpc.late_replies == 2)
        assert client.metrics.counter("rpc.client.late_replies").value == 2
        late_logs = [r for r in caplog.records if "late reply" in r.message]
        assert len(late_logs) == 1
        await stop(server, client)


class TestDeadlines:
    @async_test
    async def test_deadline_scope_aborts_server_work(self):
        # Either side may win the race to report expiry: the client's
        # local wait (CallTimeoutError) or the server's abort arriving
        # as a remote DeadlineExpiredError.  Both mean the same thing.
        from repro.errors import RemoteError

        server, client, worker, _ = await start()
        with pytest.raises((CallTimeoutError, RemoteError)):
            with deadline_scope(0.05):
                await worker.nap(500)
        await asyncio.sleep(0.05)
        session = only_session(server)
        assert session.dispatcher.deadline_expired == 1
        assert await worker.total() == 0  # the nap never finished
        await stop(server, client)

    @async_test
    async def test_expired_scope_fails_before_sending(self):
        server, client, worker, _ = await start()
        with pytest.raises(CallTimeoutError, match="already expired"):
            with deadline_scope(0.01):
                await asyncio.sleep(0.03)
                await worker.bump()
        assert await worker.total() == 0
        await stop(server, client)

    @async_test
    async def test_nested_scopes_shrink_only(self):
        async def check():
            with deadline_scope(10.0):
                with deadline_scope(0.05):
                    assert remaining_deadline() <= 0.05
                assert 0.05 < remaining_deadline() <= 10.0

        await check()
        assert remaining_deadline() is None

    @async_test
    async def test_deadline_not_sent_to_v2_peer(self):
        """A v2 wire has no deadline field; the server keeps working."""
        server, client, worker, _ = await start(
            protocol_version=DEADLINE_VERSION - 1
        )
        with pytest.raises(CallTimeoutError):
            with deadline_scope(0.05):
                await worker.nap(80)
        await asyncio.sleep(0.15)
        assert await worker.total() == 1  # finished into the void
        session = only_session(server)
        assert session.dispatcher.deadline_expired == 0
        await stop(server, client)


class TestConnectTimeout:
    @async_test
    async def test_connect_timeout_raises_transport_error(self):
        """Satellite: a server that accepts but never answers HELLO."""

        async def mute_handler(conn):
            await asyncio.sleep(3600)

        listener = await serve("memory://mute-server", mute_handler)
        try:
            with pytest.raises(TransportError, match="timed out"):
                await ClamClient.connect(
                    "memory://mute-server", connect_timeout=0.05
                )
        finally:
            await listener.close()

    @async_test
    async def test_fast_connect_unaffected(self):
        server, client, worker, _ = await start(connect_timeout=5.0)
        assert await worker.bump() == 1
        await stop(server, client)


class TestVersionNegotiation:
    @async_test
    async def test_v3_client_against_v2_server(self, monkeypatch):
        """A current client negotiates down to a deadline-less server.

        The server is pinned to answer protocol 2 (as a pre-deadline
        build would); the client, offering 3, must speak 2 on the wire
        and keep deadlines local.
        """
        v2 = DEADLINE_VERSION - 1
        monkeypatch.setattr(
            server_module, "negotiate_version", lambda offered: min(offered, v2)
        )
        server, client, worker, _ = await start(call_timeout=1.0)
        assert client.protocol_version == v2
        assert PROTOCOL_VERSION > v2
        assert await worker.bump() == 1
        with deadline_scope(5.0):  # local budget only; nothing on the wire
            assert await worker.bump() == 2
        await stop(server, client)
