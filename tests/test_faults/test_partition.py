"""Partitions: bidirectional cuts, normalization, timed healing.

Unit tests drive :class:`Partition` directly with a fake clock; the
integration test threads a cut through two :class:`FaultInjector`
wrapped endpoints and proves traffic stops *during* the cut and
resumes after :meth:`heal` — the primitive the election chaos suite
builds on.
"""

import itertools

import pytest

from repro.client import ClamClient
from repro.faults import (
    FaultInjector,
    FaultRates,
    Partition,
    SeededSchedule,
    normalize_endpoint,
)
from repro.server import ClamServer
from repro.stubs import RemoteInterface, idempotent
from tests.support import async_test

_ids = itertools.count(1)


class FakeClock:
    def __init__(self):
        self.now = 50.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestNormalizeEndpoint:
    def test_strips_scheme_and_fragment(self):
        assert normalize_endpoint("memory://node-1") == "node-1"
        assert normalize_endpoint("chaos3://node-1") == "node-1"
        assert normalize_endpoint("memory://node-1#client7") == "node-1"
        assert normalize_endpoint("node-1") == "node-1"


class TestPartition:
    def test_cut_is_bidirectional_and_scoped(self):
        net = Partition()
        net.partition("memory://a", "memory://b")
        assert net.severed("memory://a", "memory://b")
        assert net.severed("memory://b", "memory://a")
        assert not net.severed("memory://a", "memory://c")
        assert net.active == 1

    def test_cut_matches_normalized_identities(self):
        net = Partition()
        net.partition("chaos1://a", "memory://b")
        assert net.severed("memory://a", "memory://b#client3")

    def test_heal_named_pair(self):
        net = Partition()
        net.partition("a", "b")
        net.partition("a", "c")
        net.heal("a", "b")
        assert not net.severed("a", "b")
        assert net.severed("a", "c")

    def test_heal_everything(self):
        net = Partition()
        net.partition("a", "b")
        net.partition("c", "d")
        net.heal()
        assert net.active == 0

    def test_heal_one_endpoint_only_is_an_error(self):
        net = Partition()
        with pytest.raises(ValueError):
            net.heal("a")

    def test_timed_cut_heals_itself(self):
        clock = FakeClock()
        net = Partition(clock=clock)
        net.partition("a", "b", duration=2.0)
        assert net.severed("a", "b")
        clock.advance(1.9)
        assert net.severed("a", "b")
        clock.advance(0.2)
        assert not net.severed("a", "b")
        assert net.active == 0

    def test_repartition_replaces_deadline(self):
        clock = FakeClock()
        net = Partition(clock=clock)
        net.partition("a", "b", duration=1.0)
        net.partition("a", "b")  # now indefinite
        clock.advance(10.0)
        assert net.severed("a", "b")


class Echo(RemoteInterface):
    __clam_class__ = "partition.echo"

    @idempotent
    def echo(self, value: int) -> int: ...


class EchoImpl(Echo):
    def echo(self, value: int) -> int:
        return value


QUIET = FaultRates(
    drop=0.0, delay=0.0, duplicate=0.0, reorder=0.0,
    corrupt=0.0, close=0.0, slow=0.0,
)


@async_test
async def test_partition_stops_traffic_until_healed():
    """A cut between client and server drops every frame (both
    directions) while everything else flows; healing restores it."""
    run = next(_ids)
    net = Partition()
    # Zero random rates: the injector only enforces the partition, so
    # the test is deterministic.  The injector's endpoint names the
    # *dialing* side; the wrapped connection's peer is the server.
    injector = FaultInjector(
        SeededSchedule(1, rates=QUIET),
        endpoint=f"client-{run}",
        partition=net,
    )
    server = ClamServer()
    server.publish("echo", EchoImpl())
    url = await server.start(f"memory://part-{run}-server")
    wrapped = injector.wrap_url(url)
    client = await ClamClient.connect(wrapped, call_timeout=0.3)
    try:
        echo = await client.lookup(Echo, "echo")
        assert await echo.echo(1) == 1

        net.partition(f"client-{run}", url)
        from repro.errors import CallTimeoutError

        with pytest.raises(CallTimeoutError):
            await echo.echo(2)

        net.heal()
        assert await echo.echo(3) == 3
        assert injector.injected > 0  # partition drops were audited
    finally:
        await client.close()
        await server.shutdown()
        injector.release_url()
