"""Seeded chaos runs: the whole resilience stack under random faults.

One run per seed (``CHAOS_SEED`` env var, else 1-5): a seeded fault
schedule mistreats every frame of a live client/server conversation —
drops, delays, duplicates, reorders, slow reads, abrupt closes — while
the workload pushes hundreds of idempotent calls and a batch of
distributed upcalls through it.  The run must drain with:

- every call completed (retries + reconnects absorb the faults),
- **exactly-once** execution server-side (the duplicate-serial cache:
  executed counters equal logical call counts, no more, no less),
- every upcall either handled by the client or degraded into the §4
  error-report path (never a wedged server task),
- every injected fault visible in the obs counters (the audit trail).

Re-running with the seed from a failing CI job replays the same fault
schedule — that is what makes a chaos failure debuggable.
"""

import os
import itertools
from typing import Callable

import pytest

from repro import ClamClient, ClamServer, RemoteInterface
from repro.faults import FaultInjector, FaultRates, SeededSchedule
from repro.obs.metrics import MetricsRegistry
from repro.rpc import RetryPolicy
from repro.stubs import idempotent
from tests.support import async_test

_ids = itertools.count(1)

SEEDS = [int(s) for s in os.environ.get("CHAOS_SEED", "").split(",") if s] or [
    1,
    2,
    3,
    4,
    5,
]

N_CALLS = 200
N_UPCALLS = 30

WORKLOAD_SOURCE = '''
from typing import Callable

from repro.stubs import RemoteInterface


class Chaos(RemoteInterface):
    def __init__(self):
        self.bumps = 0
        self.pokes = 0
        self.proc = None

    def bump(self) -> int:
        self.bumps += 1
        return self.bumps

    def watch(self, proc: Callable[[int], None]) -> None:
        self.proc = proc

    async def poke(self, value: int) -> int:
        self.pokes += 1
        if self.proc is not None:
            await self.proc(value)
        return self.pokes

    def counts(self) -> list[int]:
        return [self.bumps, self.pokes]
'''


class Chaos(RemoteInterface):
    @idempotent
    def bump(self) -> int: ...
    def watch(self, proc: Callable[[int], None]) -> None: ...
    @idempotent
    def poke(self, value: int) -> int: ...
    @idempotent
    def counts(self) -> list[int]: ...


def chaos_rates() -> FaultRates:
    """A mild mix: mostly latency, some loss, occasional closes."""
    return FaultRates(
        drop=0.015,
        delay=0.04,
        duplicate=0.015,
        reorder=0.015,
        corrupt=0.0,
        close=0.004,
        slow=0.02,
        max_delay=0.004,
    )


@pytest.mark.parametrize("seed", SEEDS)
@async_test
async def test_chaos_run(seed):
    fault_metrics = MetricsRegistry()
    schedule = SeededSchedule(seed, rates=chaos_rates(), warmup=16, max_faults=120)
    injector = FaultInjector(schedule, metrics=fault_metrics)

    # Budget ordering matters: the upcall timeout (after which a dead
    # upcall degrades) must be shorter than the call deadline, or a
    # poke stuck on a faulted upcall frame is aborted by its own
    # propagated deadline before degradation can rescue it.
    server = ClamServer(
        session_linger=60.0, degrade_upcalls=True, upcall_timeout=0.3
    )
    address = await server.start(f"memory://chaos-{seed}-{next(_ids)}")
    chaos_url = injector.wrap_url(address)
    try:
        client = await ClamClient.connect(
            chaos_url,
            call_timeout=0.75,
            retry=RetryPolicy(attempts=8, base_delay=0.01, max_delay=0.1, seed=seed),
            reconnect=True,
            reconnect_policy=RetryPolicy(
                attempts=10, base_delay=0.01, max_delay=0.1, seed=seed
            ),
        )
        await client.load_module("chaos", WORKLOAD_SOURCE)
        target = await client.create(Chaos)

        seen = []
        await target.watch(seen.append)
        await client.flush()

        # -- the workload: every call must complete -------------------------
        for i in range(N_CALLS):
            assert await target.bump() >= 1
        for i in range(N_UPCALLS):
            assert await target.poke(i) >= 1

        # -- exactly-once: executed == logical, despite retries and
        #    duplicated request frames --------------------------------------
        bumps, pokes = await target.counts()
        assert bumps == N_CALLS, f"seed {seed}: {bumps} bumps for {N_CALLS} calls"
        assert pokes == N_UPCALLS, f"seed {seed}: {pokes} pokes for {N_UPCALLS} calls"

        # -- upcalls: handled or degraded, never lost in a wedged task ------
        degraded = len(server.degraded_upcalls)
        assert len(seen) >= N_UPCALLS - degraded
        assert client.upcalls_handled + degraded >= N_UPCALLS

        # -- audit: the run actually suffered, and every injected fault
        #    is visible in the obs counters ---------------------------------
        assert injector.injected > 0, f"seed {seed}: no faults injected"
        assert (
            fault_metrics.counter("faults.injected.total").value
            == injector.injected
        )
        for kind, count in injector.counts().items():
            assert (
                fault_metrics.counter("faults.injected", kind=kind).value == count
            )

        await client.close()
    finally:
        await server.shutdown()
        injector.release_url()
