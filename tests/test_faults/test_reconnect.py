"""Supervised reconnect, session resume, and upcall degradation.

The connection between a ``reconnect=True`` client and a
``session_linger`` server is dropped mid-conversation and the tests
check what survives: the session (token, dispatcher state, RUC
bindings), the proxies (revalidated by lookup replay), and the upcall
path (a fresh second stream replacing the dead one).  Upcall
degradation is exercised separately: a failing void upcall on a
``degrade_upcalls=True`` server becomes an error report, not a wedged
server layer.
"""

import asyncio
import itertools
from typing import Callable

import pytest

from repro import ClamClient, ClamServer, RemoteInterface
from repro.errors import RemoteError, RemoteStaleError, StaleHandleError
from repro.rpc import RetryPolicy
from repro.stubs import idempotent
from tests.support import async_test, eventually

_ids = itertools.count(1)

WORKER_SOURCE = '''
from repro.stubs import RemoteInterface


class Worker(RemoteInterface):
    def __init__(self):
        self.executed = 0

    def bump(self) -> int:
        self.executed += 1
        return self.executed

    def total(self) -> int:
        return self.executed
'''


class Worker(RemoteInterface):
    @idempotent
    def bump(self) -> int: ...
    @idempotent
    def total(self) -> int: ...


WATCHED_SOURCE = '''
from typing import Callable

from repro.stubs import RemoteInterface


class Watched(RemoteInterface):
    def __init__(self):
        self.proc = None

    def watch(self, proc: Callable[[int], None]) -> None:
        self.proc = proc

    async def poke(self, value: int) -> int:
        await self.proc(value)
        return value
'''


class Watched(RemoteInterface):
    def watch(self, proc: Callable[[int], None]) -> None: ...
    def poke(self, value: int) -> int: ...


async def start(server=None, **client_kwargs):
    if server is None:
        server = ClamServer(session_linger=30.0)
    address = await server.start(f"memory://reconnect-{next(_ids)}")
    client_kwargs.setdefault(
        "reconnect_policy", RetryPolicy(attempts=8, base_delay=0.01, seed=1)
    )
    client = await ClamClient.connect(address, reconnect=True, **client_kwargs)
    await client.load_module("worker", WORKER_SOURCE)
    worker = await client.create(Worker)
    return server, client, worker


async def drop_connection(client):
    """Sever the RPC stream as a network failure would."""
    await client.rpc.channel.close()
    await client.rpc.disconnected.wait()


class TestReconnect:
    @async_test
    async def test_supervisor_reestablishes_the_connection(self):
        server, client, worker = await start()
        assert await worker.bump() == 1
        token = client.session
        await drop_connection(client)
        await eventually(lambda: client.reconnects == 1)
        # Same session: the token survived and so did the worker state.
        assert client.session == token
        assert await worker.bump() == 2
        assert server.session_count == 1
        assert client.metrics.counter("rpc.client.reconnects").value == 1
        await client.close()
        await server.shutdown()

    @async_test
    async def test_call_path_reconnects_on_demand(self):
        """A call arriving while the stream is down rides the retry
        loop through a reconnect instead of failing."""
        server, client, worker = await start(
            retry=RetryPolicy(attempts=5, base_delay=0.02, seed=2),
            call_timeout=1.0,
        )
        assert await worker.bump() == 1
        await drop_connection(client)
        assert await worker.bump() == 2  # no sleep in between
        await client.close()
        await server.shutdown()

    @async_test
    async def test_without_linger_the_session_is_fresh(self):
        server, client, worker = await start(server=ClamServer())
        assert await worker.bump() == 1
        token = client.session
        await drop_connection(client)
        await eventually(lambda: client.reconnects == 1)
        await eventually(lambda: client.session != token)
        # Fresh token: the server retired the old session immediately.
        # Exports are server-wide, so the worker object itself survived.
        assert await worker.bump() == 2
        await client.close()
        await server.shutdown()

    @async_test
    async def test_reconnect_is_traced(self):
        server, client, worker = await start()
        from repro.trace import KIND_RECONNECT

        events = []
        client.tracer.subscribe(events.append)
        await drop_connection(client)
        await eventually(lambda: client.reconnects == 1)
        assert any(e.kind == KIND_RECONNECT for e in events)
        await client.close()
        await server.shutdown()


class TestLookupReplay:
    @async_test
    async def test_republished_name_marks_old_proxy_stale(self):
        server, client, worker = await start()
        await client.publish("the-worker", worker)
        looked_up = await client.lookup(Worker, "the-worker")
        assert await looked_up.bump() == 1

        # Server side: the object is released and the name republished
        # with a different incarnation while the client is away.
        replacement = await client.create(Worker)
        await client.release(looked_up)
        await client.publish("the-worker", replacement)

        await drop_connection(client)
        await eventually(lambda: client.reconnects == 1)
        await eventually(lambda: client.rpc.is_stale(looked_up._clam_handle_))

        with pytest.raises(StaleHandleError):
            await looked_up.bump()
        # A fresh lookup reaches the replacement.
        fresh = await client.lookup(Worker, "the-worker")
        assert await fresh.bump() == 1
        await client.close()
        await server.shutdown()

    @async_test
    async def test_vanished_name_marks_old_proxy_stale(self):
        server, client, worker = await start()
        await client.publish("ghost", worker)
        looked_up = await client.lookup(Worker, "ghost")
        await client.release(looked_up)

        await drop_connection(client)
        await eventually(lambda: client.reconnects == 1)
        await eventually(lambda: client.rpc.is_stale(looked_up._clam_handle_))
        with pytest.raises(StaleHandleError):
            await looked_up.total()
        await client.close()
        await server.shutdown()

    @async_test
    async def test_stable_name_survives_replay(self):
        server, client, worker = await start()
        await client.publish("stable", worker)
        looked_up = await client.lookup(Worker, "stable")
        await drop_connection(client)
        await eventually(lambda: client.reconnects == 1)
        await asyncio.sleep(0.05)  # let the replay task finish
        assert not client.rpc.is_stale(looked_up._clam_handle_)
        assert await looked_up.bump() == 1
        await client.close()
        await server.shutdown()


class TestUpcallsAcrossReconnect:
    @async_test
    async def test_ruc_binding_survives_session_resume(self):
        server, client, worker = await start()
        await client.load_module("watched", WATCHED_SOURCE)
        watched = await client.create(Watched)
        seen = []
        await watched.watch(seen.append)
        assert await watched.poke(1) == 1
        assert seen == [1]

        await drop_connection(client)
        await eventually(lambda: client.reconnects == 1)
        # The RUC object in the server still points at this client's
        # callback table entry; the upcall rides the *new* second
        # stream.
        assert await watched.poke(2) == 2
        assert seen == [1, 2]
        await client.close()
        await server.shutdown()


class TestUpcallDegradation:
    async def _watched(self, server):
        address = await server.start(f"memory://degrade-{next(_ids)}")
        client = await ClamClient.connect(address)
        await client.load_module("watched", WATCHED_SOURCE)
        watched = await client.create(Watched)
        return client, watched

    @async_test
    async def test_failed_void_upcall_degrades_to_error_report(self):
        server = ClamServer(degrade_upcalls=True)
        client, watched = await self._watched(server)

        def bad_watcher(value: int) -> None:
            raise RuntimeError(f"handler exploded on {value}")

        await watched.watch(bad_watcher)
        # The poke completes: the dead upcall degraded to a no-op
        # instead of failing the RPC that happened to trigger it.
        assert await watched.poke(7) == 7
        assert len(server.degraded_upcalls) == 1
        _token, _cb, error_type, message = server.degraded_upcalls[0]
        assert error_type == "RemoteError"
        assert "handler exploded on 7" in message
        assert server.metrics.counter("upcall.server.degraded").value == 1
        await client.close()
        await server.shutdown()

    @async_test
    async def test_degraded_upcall_reaches_error_port(self):
        server = ClamServer(degrade_upcalls=True)
        client, watched = await self._watched(server)
        reports = []
        await client.register_error_handler(
            lambda cls, version, error_type, message: reports.append(
                (cls, error_type)
            )
        )

        def bad_watcher(value: int) -> None:
            raise RuntimeError("boom")

        await watched.watch(bad_watcher)
        await watched.poke(1)
        await eventually(lambda: len(reports) == 1)
        assert reports[0][0] == "<upcall>"
        await client.close()
        await server.shutdown()

    @async_test
    async def test_default_server_still_propagates(self):
        """Degradation is opt-in: the seed behaviour is unchanged."""
        server = ClamServer()
        client, watched = await self._watched(server)

        def bad_watcher(value: int) -> None:
            raise RuntimeError("boom")

        await watched.watch(bad_watcher)
        with pytest.raises(RemoteError, match="boom"):
            await watched.poke(1)
        assert len(server.degraded_upcalls) == 0
        await client.close()
        await server.shutdown()

    @async_test
    async def test_value_returning_upcall_never_degrades(self):
        server = ClamServer(degrade_upcalls=True)
        address = await server.start(f"memory://degrade-{next(_ids)}")
        client = await ClamClient.connect(address)
        await client.load_module(
            "consult",
            '''
from typing import Callable

from repro.stubs import RemoteInterface


class Consult(RemoteInterface):
    def __init__(self):
        self.proc = None

    def watch(self, proc: Callable[[int], int]) -> None:
        self.proc = proc

    async def ask(self, value: int) -> int:
        return await self.proc(value)
''',
        )

        class Consult(RemoteInterface):
            def watch(self, proc: Callable[[int], int]) -> None: ...
            def ask(self, value: int) -> int: ...

        consult = await client.create(Consult)

        def bad_oracle(value: int) -> int:
            raise RuntimeError("no answer")

        await consult.watch(bad_oracle)
        # The caller needs the result, so the failure must surface.
        with pytest.raises(RemoteError, match="no answer"):
            await consult.ask(5)
        assert len(server.degraded_upcalls) == 0
        await client.close()
        await server.shutdown()


class TestRemoteStaleErrorShape:
    def test_is_both_remote_and_stale(self):
        exc = RemoteStaleError("StaleHandleError", "gone")
        assert isinstance(exc, RemoteError)
        assert isinstance(exc, StaleHandleError)
        assert exc.remote_type == "StaleHandleError"
