"""Seeded chaos against the credit window (protocol v4).

CREDIT frames ride the same streams as everything else, so a faulty
link drops, duplicates, and reorders them like any other frame.  The
design claims two invariants survive *any* schedule:

- **no deadlock** — a producer stalled on a lost grant probes its way
  out (``CreditGate`` probe loop), so the flood below always drains;
- **no over-admission** — grants max-merge, so duplicated or reordered
  CREDIT frames can never widen the window beyond what the consumer
  actually granted: ``used <= granted`` holds at every step, and the
  server's per-channel in-flight peak stays within the window.

One run per seed (``CHAOS_SEED`` env var, else 1-5), same convention
as ``test_chaos.py`` — a failing seed replays exactly in CI and at a
desk.
"""

import itertools
import os

import pytest

from repro import ClamClient, ClamServer, RemoteInterface
from repro.faults import FaultInjector, FaultRates, SeededSchedule
from repro.obs.metrics import MetricsRegistry
from repro.rpc import RetryPolicy
from repro.stubs import idempotent
from tests.support import async_test, eventually

_ids = itertools.count(1)

SEEDS = [int(s) for s in os.environ.get("CHAOS_SEED", "").split(",") if s] or [
    1,
    2,
    3,
    4,
    5,
]

N_POSTS = 120
WINDOW = 8

FLOOD_SOURCE = '''
import asyncio

from repro.stubs import RemoteInterface


class Flood(RemoteInterface):
    def __init__(self):
        self.absorbed = 0

    async def soak(self, value: int) -> None:
        self.absorbed += 1
        await asyncio.sleep(0.001)

    def absorbed_count(self) -> int:
        return self.absorbed
'''


class Flood(RemoteInterface):
    def soak(self, value: int) -> None: ...
    @idempotent
    def absorbed_count(self) -> int: ...


def credit_chaos_rates() -> FaultRates:
    """Loss, duplication, and reordering — the CREDIT-hostile mix.

    No closes: reconnects reset both ends' credit arithmetic, which is
    covered elsewhere; this schedule keeps one channel alive and lets
    the frame-level faults land on CREDIT grants and probes.
    """
    return FaultRates(
        drop=0.03,
        delay=0.05,
        duplicate=0.03,
        reorder=0.03,
        corrupt=0.0,
        close=0.0,
        slow=0.02,
        max_delay=0.003,
    )


@pytest.mark.parametrize("seed", SEEDS)
@async_test
async def test_credit_window_survives_chaos(seed):
    fault_metrics = MetricsRegistry()
    schedule = SeededSchedule(
        seed, rates=credit_chaos_rates(), warmup=10, max_faults=150
    )
    injector = FaultInjector(schedule, metrics=fault_metrics)

    server = ClamServer(credit_window=WINDOW, credit_bytes=1 << 20)
    address = await server.start(f"memory://flow-chaos-{seed}-{next(_ids)}")
    chaos_url = injector.wrap_url(address)
    try:
        client = await ClamClient.connect(
            chaos_url,
            call_timeout=1.0,
            retry=RetryPolicy(attempts=8, base_delay=0.01, max_delay=0.1, seed=seed),
        )
        await client.load_module("flood", FLOOD_SOURCE)
        target = await client.create(Flood)

        # -- the flood: open-loop posts against a deliberately small
        #    window; progress is the no-deadlock proof (async_test caps
        #    the whole run, so a wedged gate fails loudly) -------------------
        for i in range(N_POSTS):
            await target.soak(i)
        await client.flush()

        gate = client.rpc.credit_gate
        session = next(iter(server.sessions.values()))
        flow = session.dispatcher.flow

        # -- no over-admission, producer side: usage within the grant ------
        assert not gate.unlimited
        assert gate.used_msgs <= gate.granted_msgs, (
            f"seed {seed}: over-admitted {gate.used_msgs} msgs "
            f"against a grant of {gate.granted_msgs}"
        )
        assert gate.used_bytes <= gate.granted_bytes

        # -- no over-admission, consumer side: queued-call memory stayed
        #    inside the window the server granted.  A duplicated frame
        #    is briefly in server memory before the dedup drains it, so
        #    the bound widens by the duplicates the schedule injected. --
        dups = injector.counts().get("duplicate", 0)
        assert flow.max_inflight <= WINDOW + dups, (
            f"seed {seed}: {flow.max_inflight} calls in flight "
            f"for a window of {WINDOW} (+{dups} duplicated frames)"
        )

        # -- the flood really did drain (dropped post frames are lost
        #    messages, not lost liveness: the server absorbed the rest) ----
        await eventually(lambda: flow.inflight == 0, timeout=10.0)
        absorbed = await target.absorbed_count()
        assert absorbed <= N_POSTS  # duplicates were deduplicated
        assert absorbed >= 1

        # -- audit: the schedule actually hurt this run --------------------
        assert injector.injected > 0, f"seed {seed}: no faults injected"

        await client.close()
    finally:
        await server.shutdown()
        injector.release_url()
