"""Property tests: automatic bundling round-trips arbitrary composite data.

A recursive hypothesis strategy builds random (annotation, value)
pairs over the full derivable grammar — primitives, Optionals, lists,
fixed tuples, dicts, and dataclass structs — and checks that the
derived bundler round-trips every one.  This is "the compiler can
handle the primitive data types and data structures without pointers"
(§3.1) tested over the whole space rather than hand-picked examples.
"""

from dataclasses import dataclass

from hypothesis import given, settings, strategies as st

from repro.bundlers import BundlerRegistry
from repro.bundlers.auto import structural_resolver
from repro.xdr import XdrStream


@dataclass
class Pair:
    first: int
    second: str


@dataclass
class Nested:
    label: str
    inner: Pair
    flag: bool


def fresh_registry():
    registry = BundlerRegistry()
    registry.add_resolver(structural_resolver)
    return registry


# -- recursive (annotation, value-strategy) pairs ---------------------------------

ints = st.integers(min_value=-(2**62), max_value=2**62)
base_types = st.sampled_from(
    [
        (int, ints),
        (bool, st.booleans()),
        (str, st.text(max_size=32)),
        (bytes, st.binary(max_size=32)),
        (float, st.floats(allow_nan=False, allow_infinity=False)),
        (Pair, st.builds(Pair, first=ints, second=st.text(max_size=16))),
        (
            Nested,
            st.builds(
                Nested,
                label=st.text(max_size=8),
                inner=st.builds(Pair, first=ints, second=st.text(max_size=8)),
                flag=st.booleans(),
            ),
        ),
    ]
)


def compose(children):
    def make_list(child):
        annotation, values = child
        return (list[annotation], st.lists(values, max_size=4))

    def make_optional(child):
        annotation, values = child
        return (annotation | None, st.one_of(st.none(), values))

    def make_pair_tuple(child):
        annotation, values = child
        return (tuple[annotation, annotation], st.tuples(values, values))

    def make_dict(child):
        annotation, values = child
        return (
            dict[str, annotation],
            st.dictionaries(st.text(max_size=6), values, max_size=3),
        )

    return st.one_of(
        children.map(make_list),
        children.map(make_optional),
        children.map(make_pair_tuple),
        children.map(make_dict),
    )


typed_values = st.recursive(base_types, compose, max_leaves=6).flatmap(
    lambda pair: st.tuples(st.just(pair[0]), pair[1])
)


@given(typed_values)
@settings(max_examples=200, deadline=None)
def test_derived_bundler_roundtrips(typed_value):
    annotation, value = typed_value
    registry = fresh_registry()
    bundler = registry.bundler_for(annotation)
    enc = XdrStream.encoder()
    bundler(enc, value)
    dec = XdrStream.decoder(enc.getvalue())
    result = bundler(dec, None)
    dec.expect_exhausted()
    assert result == value


@given(typed_values, typed_values)
@settings(max_examples=50, deadline=None)
def test_concatenated_bundles_decode_in_order(a, b):
    """Two bundled parameters share one stream, as in a request payload."""
    registry = fresh_registry()
    bundler_a = registry.bundler_for(a[0])
    bundler_b = registry.bundler_for(b[0])
    enc = XdrStream.encoder()
    bundler_a(enc, a[1])
    bundler_b(enc, b[1])
    dec = XdrStream.decoder(enc.getvalue())
    assert bundler_a(dec, None) == a[1]
    assert bundler_b(dec, None) == b[1]
    dec.expect_exhausted()
