"""Tests for automatic bundler derivation (paper §3.1: the Lupine side)."""

import enum
from dataclasses import dataclass
from typing import Optional

import pytest

from repro.errors import BundleError
from repro.bundlers import BundlerRegistry, derive_bundler
from repro.bundlers.auto import structural_resolver
from repro.xdr import XdrStream


def fresh_registry():
    registry = BundlerRegistry()
    registry.add_resolver(structural_resolver)
    return registry


def roundtrip(annotation, value, registry=None):
    registry = registry or fresh_registry()
    bundler = derive_bundler(annotation, registry)
    enc = XdrStream.encoder()
    bundler(enc, value)
    dec = XdrStream.decoder(enc.getvalue())
    result = bundler(dec, None)
    dec.expect_exhausted()
    return result


@dataclass
class Point:
    """The paper's Point struct (Fig 3.1): three shorts — pointer-free."""

    x: int
    y: int
    z: int


@dataclass
class Line:
    start: Point
    end: Point
    label: str


@dataclass(frozen=True)
class FrozenPoint:
    x: int
    y: int


@dataclass
class Node:
    value: int
    next: Optional["Node"]


class Color(enum.Enum):
    RED = 1
    GREEN = 2
    BLUE = 3


class Weird(enum.Enum):
    NAMED = "name"


class TestPrimitives:
    @pytest.mark.parametrize(
        "annotation,value",
        [
            (int, -123456789),
            (bool, True),
            (float, 2.5),
            (str, "window"),
            (bytes, b"\x00\x01"),
            (type(None), None),
        ],
    )
    def test_roundtrip(self, annotation, value):
        assert roundtrip(annotation, value) == value

    def test_none_annotation_means_nonetype(self):
        assert roundtrip(None, None) is None


class TestStructs:
    def test_point_roundtrip(self):
        """Pointer-free structs bundle automatically (paper §3.1)."""
        assert roundtrip(Point, Point(1, -2, 3)) == Point(1, -2, 3)

    def test_nested_struct(self):
        line = Line(Point(0, 0, 0), Point(9, 9, 9), "diag")
        assert roundtrip(Line, line) == line

    def test_frozen_dataclass(self):
        assert roundtrip(FrozenPoint, FrozenPoint(4, 5)) == FrozenPoint(4, 5)

    def test_wrong_type_rejected_on_encode(self):
        bundler = derive_bundler(Point, fresh_registry())
        with pytest.raises(BundleError):
            bundler(XdrStream.encoder(), "not a point")

    def test_recursive_struct_refused(self):
        """§3.1: the stub generator can't know how much data to pass."""
        with pytest.raises(BundleError, match="recursive"):
            derive_bundler(Node, fresh_registry())

    def test_recursion_refusal_mentions_pointer_module(self):
        with pytest.raises(BundleError, match="pointer"):
            derive_bundler(Node, fresh_registry())

    def test_derivation_failure_leaves_registry_usable(self):
        registry = fresh_registry()
        with pytest.raises(BundleError):
            derive_bundler(Node, registry)
        # A later, valid derivation still works.
        assert roundtrip(Point, Point(1, 2, 3), registry) == Point(1, 2, 3)


class TestContainers:
    def test_list_of_int(self):
        assert roundtrip(list[int], [1, 2, 3]) == [1, 2, 3]

    def test_list_of_struct(self):
        pts = [Point(i, i, i) for i in range(4)]
        assert roundtrip(list[Point], pts) == pts

    def test_empty_list(self):
        assert roundtrip(list[str], []) == []

    def test_optional_present_and_absent(self):
        assert roundtrip(Optional[int], 5) == 5
        assert roundtrip(Optional[int], None) is None

    def test_optional_pep604(self):
        assert roundtrip(int | None, 7) == 7
        assert roundtrip(int | None, None) is None

    def test_optional_struct(self):
        assert roundtrip(Optional[Point], Point(1, 2, 3)) == Point(1, 2, 3)

    def test_fixed_tuple(self):
        assert roundtrip(tuple[int, str, bool], (1, "a", True)) == (1, "a", True)

    def test_fixed_tuple_arity_mismatch(self):
        bundler = derive_bundler(tuple[int, str], fresh_registry())
        with pytest.raises(BundleError):
            bundler(XdrStream.encoder(), (1, "a", "extra"))

    def test_variadic_tuple(self):
        assert roundtrip(tuple[int, ...], (1, 2, 3)) == (1, 2, 3)

    def test_dict(self):
        d = {"w1": 10, "w2": 20}
        assert roundtrip(dict[str, int], d) == d

    def test_nested_containers(self):
        value = [[1, 2], [], [3]]
        assert roundtrip(list[list[int]], value) == value

    def test_general_union_refused(self):
        with pytest.raises(BundleError, match="union"):
            derive_bundler(int | str, fresh_registry())


class TestEnums:
    def test_enum_roundtrip(self):
        assert roundtrip(Color, Color.GREEN) is Color.GREEN

    def test_enum_wrong_member_type_rejected(self):
        bundler = derive_bundler(Color, fresh_registry())
        with pytest.raises(BundleError):
            bundler(XdrStream.encoder(), 2)  # raw int, not a Color

    def test_non_integer_enum_refused(self):
        with pytest.raises(BundleError, match="non-integer"):
            derive_bundler(Weird, fresh_registry())

    def test_enum_in_struct(self):
        @dataclass
        class Pixel:
            pos: Point
            color: Color

        pixel = Pixel(Point(1, 2, 3), Color.BLUE)
        assert roundtrip(Pixel, pixel) == pixel


class TestRegistryPrecedence:
    def test_typedef_registration_wins_over_derivation(self):
        """The typedef form (§3.2): register once, used everywhere."""
        calls = []

        def custom_point_bundler(stream, value, *extra):
            calls.append(stream.op)
            if stream.encoding:
                stream.xint(value.x)  # only x crosses the wire
                return value
            return Point(stream.xint(), 0, 0)

        registry = fresh_registry()
        registry.register(Point, custom_point_bundler)
        out = roundtrip(Point, Point(7, 8, 9), registry)
        assert out == Point(7, 0, 0)
        assert len(calls) == 2

    def test_registered_bundler_used_inside_containers(self):
        def tiny(stream, value, *extra):
            if stream.encoding:
                stream.xint(value.x)
                return value
            return Point(stream.xint(), 0, 0)

        registry = fresh_registry()
        registry.register(Point, tiny)
        out = roundtrip(list[Point], [Point(1, 2, 3), Point(4, 5, 6)], registry)
        assert out == [Point(1, 0, 0), Point(4, 0, 0)]

    def test_unknown_type_message_mentions_bundled(self):
        class Mystery:
            pass

        with pytest.raises(BundleError, match="Bundled"):
            derive_bundler(Mystery, fresh_registry())

    def test_child_registry_isolated(self):
        parent = fresh_registry()
        child = parent.child()
        child.register(Point, lambda s, v, *e: v)
        assert parent.registered(Point) is None
        assert child.registered(Point) is not None
