"""Tests for the two pointer strategies (paper §3.1, §3.5).

The running example is the paper's own: "the ways in which a node of
a threaded, binary tree can be passed to a remote procedure."
"""

from dataclasses import dataclass
from typing import Optional

import pytest

from repro.errors import BundleError
from repro.bundlers import closure_bundler, referent_bundler
from repro.xdr import XdrStream


@dataclass
class TreeNode:
    """A threaded binary tree node: left/right children plus a thread
    pointer to the in-order successor — the graph is cyclic."""

    key: int
    left: Optional["TreeNode"]
    right: Optional["TreeNode"]
    thread: Optional["TreeNode"]


def build_threaded_tree(keys):
    """Build a BST then thread it: each node's ``thread`` is its in-order successor."""
    root = None
    for key in keys:
        node = TreeNode(key, None, None, None)
        if root is None:
            root = node
            continue
        cursor = root
        while True:
            if key < cursor.key:
                if cursor.left is None:
                    cursor.left = node
                    break
                cursor = cursor.left
            else:
                if cursor.right is None:
                    cursor.right = node
                    break
                cursor = cursor.right
    order = []

    def inorder(n):
        if n is None:
            return
        inorder(n.left)
        order.append(n)
        inorder(n.right)

    inorder(root)
    for a, b in zip(order, order[1:]):
        a.thread = b
    return root, order


def run(bundler, value):
    enc = XdrStream.encoder()
    bundler(enc, value)
    dec = XdrStream.decoder(enc.getvalue())
    result = bundler(dec, None)
    dec.expect_exhausted()
    return result, len(enc.getvalue())


class TestReferentBundler:
    def test_node_only_children_nil(self):
        """§3.5: "it bundles only the object referred to by the pointer"."""
        root, _ = build_threaded_tree([5, 3, 8])
        bundler = referent_bundler(TreeNode)
        out, _size = run(bundler, root)
        assert out.key == 5
        assert out.left is None and out.right is None and out.thread is None

    def test_nil_pointer(self):
        bundler = referent_bundler(TreeNode)
        out, _ = run(bundler, None)
        assert out is None

    def test_size_independent_of_tree_size(self):
        bundler = referent_bundler(TreeNode)
        small_root, _ = build_threaded_tree([1])
        big_root, _ = build_threaded_tree(list(range(100)))
        _, small_size = run(bundler, small_root)
        _, big_size = run(bundler, big_root)
        assert small_size == big_size

    def test_wrong_type_rejected(self):
        bundler = referent_bundler(TreeNode)
        with pytest.raises(BundleError):
            bundler(XdrStream.encoder(), "not a node")

    def test_non_dataclass_rejected(self):
        with pytest.raises(BundleError):
            referent_bundler(int)


class TestClosureBundler:
    def test_whole_tree_travels(self):
        """§3.1: "taking the transitive closure can cause the whole tree
        to be passed remotely"."""
        root, order = build_threaded_tree([5, 3, 8, 1, 4, 7, 9])
        bundler = closure_bundler(TreeNode)
        out, _ = run(bundler, root)

        def keys_inorder(n, acc):
            if n is None:
                return acc
            keys_inorder(n.left, acc)
            acc.append(n.key)
            keys_inorder(n.right, acc)
            return acc

        assert keys_inorder(out, []) == [n.key for n in order]

    def test_threads_preserved(self):
        """Cycles (thread pointers) survive the closure."""
        root, order = build_threaded_tree([5, 3, 8])
        bundler = closure_bundler(TreeNode)
        out, _ = run(bundler, root)
        decoded_order = []

        def inorder(n):
            if n is None:
                return
            inorder(n.left)
            decoded_order.append(n)
            inorder(n.right)

        inorder(out)
        for a, b in zip(decoded_order, decoded_order[1:]):
            assert a.thread is b

    def test_sharing_preserved(self):
        shared = TreeNode(1, None, None, None)
        root = TreeNode(0, shared, shared, None)
        bundler = closure_bundler(TreeNode)
        out, _ = run(bundler, root)
        assert out.left is out.right

    def test_self_cycle(self):
        node = TreeNode(1, None, None, None)
        node.thread = node
        bundler = closure_bundler(TreeNode)
        out, _ = run(bundler, node)
        assert out.thread is out

    def test_nil(self):
        bundler = closure_bundler(TreeNode)
        out, _ = run(bundler, None)
        assert out is None

    def test_size_grows_with_tree(self):
        """The §3.1 performance argument: closure size scales with the graph."""
        bundler = closure_bundler(TreeNode)
        small, _ = build_threaded_tree(list(range(4)))
        big, _ = build_threaded_tree(list(range(64)))
        _, small_size = run(bundler, small)
        _, big_size = run(bundler, big)
        assert big_size > small_size * 10

    def test_heterogeneous_pointer_rejected(self):
        @dataclass
        class Other:
            v: int

        @dataclass
        class Mixed:
            child: Optional[Other]

        with pytest.raises(BundleError, match="homogeneous"):
            closure_bundler(Mixed)

    def test_corrupt_index_rejected(self):
        bundler = closure_bundler(TreeNode)
        enc = XdrStream.encoder()
        enc.xuint(1)        # one node
        enc.xhyper(5)       # key
        enc.xint(99)        # left -> out of range
        enc.xint(-1)
        enc.xint(-1)
        with pytest.raises(BundleError):
            bundler(XdrStream.decoder(enc.getvalue()), None)


class TestStrategyComparison:
    def test_closure_bigger_than_referent(self):
        """The paper's trade-off in one assertion: when only the node is
        wanted, the closure's extra bytes are pure waste."""
        root, _ = build_threaded_tree(list(range(50)))
        _, referent_size = run(referent_bundler(TreeNode), root)
        _, closure_size = run(closure_bundler(TreeNode), root)
        assert closure_size > referent_size * 20
