"""Compiled bundler plans: byte-identity with the interpreted path.

The contract of :mod:`repro.bundlers.compiled` is that the fast path
is *observationally identical* to the interpreted field walk: same
bytes out, same values back, same errors for bad input.  These tests
exercise that property over generated values, plus the structural
rules for when fusion happens at all.
"""

from __future__ import annotations

import dataclasses
import enum
import random
from typing import Optional

import pytest

from repro.errors import BundleError, XdrError
from repro.bundlers.auto import derive_bundler, structural_resolver
from repro.bundlers.base import BundlerRegistry
from repro.bundlers.compiled import CompiledPlan, plan_for
from repro.xdr import XdrStream
from repro.xdr.stream import XdrOp


class Color(enum.Enum):
    RED = 1
    GREEN = 2
    BLUE = 7


@dataclasses.dataclass
class Point:
    x: int
    y: int


@dataclasses.dataclass
class Reading:
    sensor: int
    seq: int
    value: float
    scale: float


@dataclasses.dataclass
class Mixed:
    a: int
    name: str
    b: float
    ok: bool
    c: Color


@dataclasses.dataclass
class Nested:
    p: Point
    q: Point
    label: str


@dataclasses.dataclass
class WithList:
    tag: int
    values: list[int]
    weight: float


@dataclasses.dataclass
class WithOptional:
    a: int
    maybe: Optional[int]
    b: int


def encode(bundler, value) -> bytes:
    stream = XdrStream(XdrOp.ENCODE)
    try:
        bundler(stream, value)
        return stream.getvalue()
    finally:
        stream.release()


def decode(bundler, data):
    stream = XdrStream(XdrOp.DECODE, data)
    value = bundler(stream, None)
    stream.expect_exhausted()
    return value


def random_value(cls, rng: random.Random):
    if cls is Point:
        return Point(rng.randint(-(2**62), 2**62), rng.randint(-(2**62), 2**62))
    if cls is Reading:
        return Reading(rng.randint(0, 1000), rng.randint(0, 2**40),
                       rng.uniform(-1e6, 1e6), rng.uniform(0.1, 10.0))
    if cls is Mixed:
        return Mixed(rng.randint(-100, 100), "s" * rng.randint(0, 8),
                     rng.uniform(-10, 10), rng.random() < 0.5,
                     rng.choice(list(Color)))
    if cls is Nested:
        return Nested(random_value(Point, rng), random_value(Point, rng),
                      "n" * rng.randint(0, 5))
    if cls is WithList:
        return WithList(rng.randint(0, 9),
                        [rng.randint(-5, 5) for _ in range(rng.randint(0, 6))],
                        rng.uniform(-2, 2))
    if cls is WithOptional:
        return WithOptional(rng.randint(-9, 9),
                            rng.randint(0, 99) if rng.random() < 0.5 else None,
                            rng.randint(-9, 9))
    raise AssertionError(cls)


ALL_CLASSES = [Point, Reading, Mixed, Nested, WithList, WithOptional]


# -- byte-identity ------------------------------------------------------------

@pytest.mark.parametrize("cls", ALL_CLASSES)
def test_compiled_output_byte_identical_to_interpreted(cls):
    bundler = derive_bundler(cls)
    interpreted = getattr(bundler, "interpreted", bundler)
    rng = random.Random(20260807)
    for _ in range(100):
        value = random_value(cls, rng)
        fast = encode(bundler, value)
        slow = encode(interpreted, value)
        assert fast == slow, f"{cls.__name__}: {value!r}"
        assert decode(bundler, slow) == value
        assert decode(interpreted, fast) == value


def test_compiled_decodes_interpreted_bytes_and_vice_versa():
    bundler = derive_bundler(Nested)
    interpreted = bundler.interpreted
    value = Nested(Point(1, 2), Point(-3, 4), "lab")
    assert decode(bundler, encode(interpreted, value)) == value
    assert decode(interpreted, encode(bundler, value)) == value


# -- plan structure -----------------------------------------------------------

def test_flat_primitive_record_fully_fuses():
    plan = plan_for(derive_bundler(Point))
    assert isinstance(plan, CompiledPlan)
    assert plan.fully_fused
    assert plan.fused_leaves == 2


def test_variable_length_field_splits_the_run():
    plan = plan_for(derive_bundler(Mixed))
    assert plan is not None and not plan.fully_fused
    kinds = [step[0] for step in plan.steps]
    assert kinds == ["fused", "field", "fused"]  # int | str | float,bool,enum


def test_nested_flat_record_splices_into_parent_run():
    plan = plan_for(derive_bundler(Nested))
    # p.x, p.y, q.x, q.y fuse into one struct; label stays interpreted.
    assert plan.fused_leaves == 4
    assert [step[0] for step in plan.steps] == ["fused", "field"]


def test_too_few_scalars_keeps_interpreted_bundler():
    @dataclasses.dataclass
    class OneScalar:
        n: int
        s: str

    bundler = derive_bundler(OneScalar)
    assert plan_for(bundler) is None
    value = OneScalar(4, "x")
    assert decode(bundler, encode(bundler, value)) == value


def test_keyword_only_dataclass_is_not_compiled():
    """kw_only fields break positional construction, so no fast path."""

    @dataclasses.dataclass(kw_only=True)
    class KwOnly:
        a: int
        b: int

    bundler = derive_bundler(KwOnly)
    assert plan_for(bundler) is None
    value = KwOnly(a=1, b=2)
    assert decode(bundler, encode(bundler, value)) == value


def test_user_registration_breaks_fusion():
    """§3.2 precedence: a user bundler for a field type must be called."""
    calls = []

    def traced_int(stream, value, *extra):
        calls.append("hit")
        return stream.xint(value)

    registry = BundlerRegistry()
    registry.add_resolver(structural_resolver)
    registry.register(int, traced_int)

    @dataclasses.dataclass
    class UserTyped:
        a: int
        b: int

    bundler = registry.bundler_for(UserTyped)
    assert plan_for(bundler) is None
    encode(bundler, UserTyped(1, 2))
    assert calls == ["hit", "hit"]


# -- error parity -------------------------------------------------------------

@pytest.mark.parametrize(
    "bad",
    [
        Point(True, 2),          # bool in an int slot
        Point("a", 2),           # wrong type
        Point(2**80, 1),         # out of 64-bit range
    ],
)
def test_encode_errors_match_interpreted(bad):
    bundler = derive_bundler(Point)
    interpreted = bundler.interpreted
    outcomes = []
    for fn in (bundler, interpreted):
        try:
            outcomes.append(("ok", encode(fn, bad)))
        except (XdrError, BundleError) as exc:
            outcomes.append((type(exc).__name__, str(exc)))
    assert outcomes[0] == outcomes[1]


def test_decode_underflow_matches_interpreted():
    bundler = derive_bundler(Point)
    interpreted = bundler.interpreted
    data = encode(bundler, Point(1, 2))[:10]
    for fn in (bundler, interpreted):
        with pytest.raises(XdrError):
            decode(fn, data)


def test_wrong_record_type_raises_bundle_error():
    bundler = derive_bundler(Point)
    with pytest.raises(BundleError, match="expected Point"):
        encode(bundler, "not a point")


def test_enum_wire_value_round_trips_and_rejects_unknown():
    bundler = derive_bundler(Mixed)
    interpreted = bundler.interpreted
    value = Mixed(1, "x", 2.0, False, Color.BLUE)
    data = encode(bundler, value)
    assert decode(bundler, data) == value
    # Corrupt the enum field (last 4 bytes) to a non-member value.
    bad = data[:-4] + (99).to_bytes(4, "big")
    for fn in (bundler, interpreted):
        with pytest.raises(XdrError):
            decode(fn, bad)


# -- fallback rewind ---------------------------------------------------------

def test_encode_fallback_leaves_stream_exactly_as_interpreted_would():
    """On failure the fast path rewinds its own bytes and replays the
    interpreted bundler, so stream state afterwards is byte-for-byte
    what a pure interpreted walk would have left (including the
    partial fields the interpreted path itself wrote before failing)."""
    bundler = derive_bundler(Point)
    interpreted = bundler.interpreted
    leftovers = []
    for fn in (bundler, interpreted):
        stream = XdrStream(XdrOp.ENCODE)
        try:
            stream.xstring("prefix")
            with pytest.raises(XdrError):
                fn(stream, Point(1, 2**90))
            leftovers.append(stream.getvalue())
        finally:
            stream.release()
    assert leftovers[0] == leftovers[1]


def test_decode_fallback_replays_from_same_offset():
    bundler = derive_bundler(Point)
    enc = XdrStream(XdrOp.ENCODE)
    try:
        enc.xstring("pre")
        bundler(enc, Point(5, 6))
        data = enc.getvalue()
    finally:
        enc.release()
    dec = XdrStream(XdrOp.DECODE, data)
    dec.xstring()
    assert bundler(dec, None) == Point(5, 6)
    dec.expect_exhausted()


# -- caching ------------------------------------------------------------------

def test_plans_are_cached_per_class_and_bundlers():
    b1 = derive_bundler(Reading)
    b2 = derive_bundler(Reading)
    assert plan_for(b1) is plan_for(b2)
