"""Property tests: every wire message round-trips for arbitrary content."""

from hypothesis import given, strategies as st

from repro.wire import (
    BatchMessage,
    CallMessage,
    ChannelRole,
    ExceptionMessage,
    HelloMessage,
    ReplyMessage,
    UpcallExceptionMessage,
    UpcallMessage,
    UpcallReplyMessage,
    decode_message,
    encode_message,
)

serials = st.integers(min_value=0, max_value=2**32 - 1)
oids = st.integers(min_value=0, max_value=2**64 - 1)
payloads = st.binary(max_size=256)
texts = st.text(max_size=128)

calls = st.builds(
    CallMessage,
    serial=serials,
    oid=oids,
    tag=oids,
    method=texts,
    args=payloads,
    expects_reply=st.booleans(),
)

async_calls = st.builds(
    CallMessage,
    serial=serials,
    oid=oids,
    tag=oids,
    method=texts,
    args=payloads,
    expects_reply=st.just(False),
)

messages = st.one_of(
    st.builds(
        HelloMessage,
        role=st.sampled_from(list(ChannelRole)),
        session=texts,
    ),
    calls,
    st.builds(ReplyMessage, serial=serials, results=payloads),
    st.builds(
        ExceptionMessage,
        serial=serials,
        remote_type=texts,
        message=texts,
        traceback=texts,
    ),
    st.builds(BatchMessage, calls=st.lists(async_calls, max_size=10).map(tuple)),
    st.builds(
        UpcallMessage,
        serial=serials,
        ruc_id=oids,
        args=payloads,
        expects_reply=st.booleans(),
    ),
    st.builds(UpcallReplyMessage, serial=serials, results=payloads),
    st.builds(
        UpcallExceptionMessage,
        serial=serials,
        remote_type=texts,
        message=texts,
        traceback=texts,
    ),
)


@given(messages)
def test_any_message_roundtrips(message):
    assert decode_message(encode_message(message)) == message


@given(st.lists(messages, max_size=8))
def test_message_streams_are_self_delimiting(stream):
    """Concatenated frames decode independently — the property the
    shared-stream (single-channel) mode relies on."""
    frames = [encode_message(m) for m in stream]
    decoded = [decode_message(f) for f in frames]
    assert decoded == stream


@given(messages, st.integers(min_value=1, max_value=16))
def test_truncation_never_decodes_silently(message, cut):
    """A truncated frame raises; it never yields a wrong message."""
    from repro.errors import ClamError

    data = encode_message(message)
    if cut >= len(data):
        return
    truncated = data[:-cut]
    try:
        decoded = decode_message(truncated)
    except ClamError:
        return
    # Rarely a truncation can still parse (e.g. dropping trailing
    # bytes of an opaque that re-frames) — but it must not EQUAL the
    # original while being shorter.
    assert decoded != message
