"""Golden wire bytes: the encoded form of every message type is pinned.

These hex strings were captured from the wire encoder before the
compiled-bundler / zero-copy-XDR rewrite and must never drift — a
mismatch means the marshalling fast path (or any later change) broke
protocol compatibility with deployed peers.  Both protocol versions
are pinned; messages without trace context encode identically at v1
and v2.
"""

from __future__ import annotations

import pytest

from repro.wire import (
    BatchMessage,
    CallMessage,
    ChannelRole,
    CreditMessage,
    ExceptionMessage,
    HelloMessage,
    ReplyMessage,
    UpcallExceptionMessage,
    UpcallMessage,
    UpcallReplyMessage,
    decode_message,
    encode_message,
)


def _messages():
    return {
        "hello": HelloMessage(role=ChannelRole.UPCALL, session="sess-1",
                              protocol_version=2),
        "call_v2": CallMessage(serial=7, oid=3, tag=9, method="move",
                               args=b"\x01\x02\x03", expects_reply=True,
                               trace_id="t-abc", parent_span=77),
        "reply": ReplyMessage(serial=7, results=b"RESULT"),
        "exc": ExceptionMessage(serial=8, remote_type="ValueError",
                                message="boom", traceback="tb"),
        "batch": BatchMessage(calls=(
            CallMessage(serial=1, oid=2, tag=3, method="a", args=b"x",
                        expects_reply=False),
            CallMessage(serial=2, oid=2, tag=3, method="bb", args=b"yz",
                        expects_reply=False, trace_id="tid", parent_span=5),
        )),
        "upcall": UpcallMessage(serial=4, ruc_id=11, args=b"ARGS",
                                expects_reply=True, trace_id="up",
                                parent_span=6),
        "upcall_reply": UpcallReplyMessage(serial=4, results=b"OK"),
        "upcall_exc": UpcallExceptionMessage(serial=4, remote_type="E",
                                             message="m", traceback=""),
        # v3 adds deadline_ms; v4 adds priority (and the CREDIT type,
        # whose encoding is version-independent).
        "call_v3": CallMessage(serial=9, oid=3, tag=9, method="move",
                               args=b"\x01\x02\x03", expects_reply=True,
                               trace_id="t-abc", parent_span=77,
                               deadline_ms=1500),
        "call_v4": CallMessage(serial=10, oid=3, tag=9, method="move",
                               args=b"\x01\x02\x03", expects_reply=True,
                               trace_id="t-abc", parent_span=77,
                               deadline_ms=1500, priority=1),
        "credit": CreditMessage(msg_credit=256, byte_credit=4 << 20),
        "credit_probe": CreditMessage(msg_credit=12, byte_credit=900,
                                      probe=True),
        # v5 appends the fencing token (epoch, counter as hypers).  An
        # unfenced call still encodes the two zero hypers at v5 — the
        # fields are positional, not optional.
        "call_v5": CallMessage(serial=11, oid=3, tag=9, method="move",
                               args=b"\x01\x02\x03", expects_reply=True,
                               trace_id="t-abc", parent_span=77,
                               deadline_ms=1500, priority=1,
                               fence_epoch=4, fence_counter=129),
    }


GOLDEN = {
    ("hello", 1): "000000010000000200000006736573732d31000000000002",
    ("hello", 2): "000000010000000200000006736573732d31000000000002",
    ("call_v2", 1): "000000020000000700000000000000030000000000000009"
                    "000000046d6f7665000000030102030000000001",
    ("call_v2", 2): "000000020000000700000000000000030000000000000009"
                    "000000046d6f766500000003010203000000000100000005"
                    "742d616263000000000000000000004d",
    ("reply", 1): "000000030000000700000006524553554c540000",
    ("reply", 2): "000000030000000700000006524553554c540000",
    ("exc", 1): "00000004000000080000000a56616c75654572726f72000000000004"
                "626f6f6d0000000274620000",
    ("exc", 2): "00000004000000080000000a56616c75654572726f72000000000004"
                "626f6f6d0000000274620000",
    ("batch", 1): "00000005000000020000000100000000000000020000000000000003"
                  "00000001610000000000000178000000000000000000000200000000"
                  "000000020000000000000003000000026262000000000002797a0000"
                  "00000000",
    ("batch", 2): "00000005000000020000000100000000000000020000000000000003"
                  "00000001610000000000000178000000000000000000000000000000"
                  "00000000000000020000000000000002000000000000000300000002"
                  "6262000000000002797a000000000000000000037469640000000000"
                  "00000005",
    ("upcall", 1): "0000000600000004000000000000000b000000044152475300000001",
    ("upcall", 2): "0000000600000004000000000000000b0000000441524753000000"
                   "0100000002757000000000000000000006",
    ("upcall_reply", 1): "0000000700000004000000024f4b0000",
    ("upcall_reply", 2): "0000000700000004000000024f4b0000",
    ("upcall_exc", 1): "00000008000000040000000145000000000000016d00000000000000",
    ("upcall_exc", 2): "00000008000000040000000145000000000000016d00000000000000",
    ("call_v3", 3): "000000020000000900000000000000030000000000000009"
                    "000000046d6f766500000003010203000000000100000005"
                    "742d616263000000000000000000004d000005dc",
    ("call_v3", 4): "000000020000000900000000000000030000000000000009"
                    "000000046d6f766500000003010203000000000100000005"
                    "742d616263000000000000000000004d000005dc00000000",
    ("call_v4", 4): "000000020000000a00000000000000030000000000000009"
                    "000000046d6f766500000003010203000000000100000005"
                    "742d616263000000000000000000004d000005dc00000001",
    ("credit", 1): "000000090000000000000100000000000040000000000000",
    ("credit", 4): "000000090000000000000100000000000040000000000000",
    ("credit_probe", 4): "00000009000000000000000c000000000000038400000001",
    ("call_v4", 5): "000000020000000a00000000000000030000000000000009"
                    "000000046d6f766500000003010203000000000100000005"
                    "742d616263000000000000000000004d000005dc00000001"
                    "00000000000000000000000000000000",
    ("call_v5", 5): "000000020000000b00000000000000030000000000000009"
                    "000000046d6f766500000003010203000000000100000005"
                    "742d616263000000000000000000004d000005dc00000001"
                    "00000000000000040000000000000081",
}


@pytest.mark.parametrize("name,version", sorted(GOLDEN))
def test_encoding_matches_golden_bytes(name, version):
    message = _messages()[name]
    assert encode_message(message, version=version).hex() == GOLDEN[(name, version)]


@pytest.mark.parametrize("name,version", sorted(GOLDEN))
def test_golden_bytes_decode_to_the_message(name, version):
    data = bytes.fromhex(GOLDEN[(name, version)])
    decoded = decode_message(data, version=version)
    if version >= 2:
        assert decoded == _messages()[name]
    else:
        # v1 drops trace context (including inside batched calls);
        # everything that survives the version must round-trip exactly.
        assert encode_message(decoded, version=1).hex() == GOLDEN[(name, version)]
