"""Tests for the typed wire messages (paper §3.4, §4.4)."""

import pytest

from repro.errors import ProtocolError
from repro.wire import (
    PROTOCOL_VERSION,
    BatchMessage,
    CallMessage,
    ChannelRole,
    ExceptionMessage,
    HelloMessage,
    ReplyMessage,
    UpcallExceptionMessage,
    UpcallMessage,
    UpcallReplyMessage,
    decode_message,
    encode_message,
)


def roundtrip(message):
    return decode_message(encode_message(message))


class TestRoundtrips:
    def test_hello(self):
        msg = HelloMessage(role=ChannelRole.UPCALL, session="tok-123")
        out = roundtrip(msg)
        assert out == msg
        assert out.protocol_version == PROTOCOL_VERSION

    def test_call(self):
        msg = CallMessage(serial=7, oid=42, tag=0xDEAD, method="draw_point",
                          args=b"\x00\x00\x00\x01", expects_reply=True)
        assert roundtrip(msg) == msg

    def test_call_async(self):
        msg = CallMessage(serial=8, oid=1, tag=2, method="move",
                          args=b"", expects_reply=False)
        assert roundtrip(msg) == msg

    def test_reply(self):
        msg = ReplyMessage(serial=7, results=b"\x01\x02\x03\x04")
        assert roundtrip(msg) == msg

    def test_exception(self):
        msg = ExceptionMessage(serial=7, remote_type="ValueError",
                               message="bad point", traceback="Traceback ...")
        assert roundtrip(msg) == msg

    def test_batch(self):
        calls = tuple(
            CallMessage(serial=i, oid=1, tag=1, method="m", args=b"", expects_reply=False)
            for i in range(5)
        )
        msg = BatchMessage(calls=calls)
        out = roundtrip(msg)
        assert out.calls == calls

    def test_empty_batch(self):
        assert roundtrip(BatchMessage()).calls == ()

    def test_upcall(self):
        msg = UpcallMessage(serial=3, ruc_id=99, args=b"xy", expects_reply=True)
        assert roundtrip(msg) == msg

    def test_upcall_reply(self):
        msg = UpcallReplyMessage(serial=3, results=b"")
        assert roundtrip(msg) == msg

    def test_upcall_exception(self):
        msg = UpcallExceptionMessage(serial=3, remote_type="KeyError", message="w1")
        assert roundtrip(msg) == msg


class TestValidation:
    def test_batch_rejects_sync_calls(self):
        sync_call = CallMessage(serial=1, oid=1, tag=1, method="get",
                                args=b"", expects_reply=True)
        with pytest.raises(ProtocolError):
            BatchMessage(calls=(sync_call,))

    def test_unknown_type_code(self):
        from repro.xdr import XdrStream

        enc = XdrStream.encoder()
        enc.xuint(200)
        with pytest.raises(ProtocolError):
            decode_message(enc.getvalue())

    def test_trailing_bytes_rejected(self):
        data = encode_message(ReplyMessage(serial=1, results=b"")) + b"\x00\x00\x00\x00"
        with pytest.raises(ProtocolError):
            decode_message(data)

    def test_truncated_body_raises(self):
        from repro.errors import XdrError

        data = encode_message(CallMessage(serial=1, oid=1, tag=1, method="m",
                                          args=b"abc", expects_reply=True))
        with pytest.raises(XdrError):
            decode_message(data[:-6])

    def test_hello_bad_role_rejected(self):
        from repro.errors import XdrError
        from repro.xdr import XdrStream

        enc = XdrStream.encoder()
        enc.xuint(1)   # HELLO type code
        enc.xint(9)    # invalid role
        enc.xstring("")
        enc.xuint(1)
        with pytest.raises(XdrError):
            decode_message(enc.getvalue())


class TestDistinctness:
    def test_all_type_codes_distinct(self):
        messages = [
            HelloMessage(role=ChannelRole.RPC),
            CallMessage(serial=0, oid=0, tag=0, method="", args=b"", expects_reply=True),
            ReplyMessage(serial=0, results=b""),
            ExceptionMessage(serial=0, remote_type="", message=""),
            BatchMessage(),
            UpcallMessage(serial=0, ruc_id=0, args=b""),
            UpcallReplyMessage(serial=0, results=b""),
            UpcallExceptionMessage(serial=0, remote_type="", message=""),
        ]
        codes = [m.TYPE_CODE for m in messages]
        assert len(set(codes)) == len(codes)
        for msg in messages:
            assert type(roundtrip(msg)) is type(msg)
