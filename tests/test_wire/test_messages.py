"""Tests for the typed wire messages (paper §3.4, §4.4)."""

import pytest

from repro.errors import ProtocolError
from repro.wire import (
    MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    TRACE_CONTEXT_VERSION,
    BatchMessage,
    CallMessage,
    ChannelRole,
    ExceptionMessage,
    HelloMessage,
    ReplyMessage,
    UpcallExceptionMessage,
    UpcallMessage,
    UpcallReplyMessage,
    decode_message,
    encode_message,
    negotiate_version,
)


def roundtrip(message):
    return decode_message(encode_message(message))


class TestRoundtrips:
    def test_hello(self):
        msg = HelloMessage(role=ChannelRole.UPCALL, session="tok-123")
        out = roundtrip(msg)
        assert out == msg
        assert out.protocol_version == PROTOCOL_VERSION

    def test_call(self):
        msg = CallMessage(serial=7, oid=42, tag=0xDEAD, method="draw_point",
                          args=b"\x00\x00\x00\x01", expects_reply=True)
        assert roundtrip(msg) == msg

    def test_call_async(self):
        msg = CallMessage(serial=8, oid=1, tag=2, method="move",
                          args=b"", expects_reply=False)
        assert roundtrip(msg) == msg

    def test_reply(self):
        msg = ReplyMessage(serial=7, results=b"\x01\x02\x03\x04")
        assert roundtrip(msg) == msg

    def test_exception(self):
        msg = ExceptionMessage(serial=7, remote_type="ValueError",
                               message="bad point", traceback="Traceback ...")
        assert roundtrip(msg) == msg

    def test_batch(self):
        calls = tuple(
            CallMessage(serial=i, oid=1, tag=1, method="m", args=b"", expects_reply=False)
            for i in range(5)
        )
        msg = BatchMessage(calls=calls)
        out = roundtrip(msg)
        assert out.calls == calls

    def test_empty_batch(self):
        assert roundtrip(BatchMessage()).calls == ()

    def test_upcall(self):
        msg = UpcallMessage(serial=3, ruc_id=99, args=b"xy", expects_reply=True)
        assert roundtrip(msg) == msg

    def test_upcall_reply(self):
        msg = UpcallReplyMessage(serial=3, results=b"")
        assert roundtrip(msg) == msg

    def test_upcall_exception(self):
        msg = UpcallExceptionMessage(serial=3, remote_type="KeyError", message="w1")
        assert roundtrip(msg) == msg


class TestValidation:
    def test_batch_rejects_sync_calls(self):
        sync_call = CallMessage(serial=1, oid=1, tag=1, method="get",
                                args=b"", expects_reply=True)
        with pytest.raises(ProtocolError):
            BatchMessage(calls=(sync_call,))

    def test_unknown_type_code(self):
        from repro.xdr import XdrStream

        enc = XdrStream.encoder()
        enc.xuint(200)
        with pytest.raises(ProtocolError):
            decode_message(enc.getvalue())

    def test_trailing_bytes_rejected(self):
        data = encode_message(ReplyMessage(serial=1, results=b"")) + b"\x00\x00\x00\x00"
        with pytest.raises(ProtocolError):
            decode_message(data)

    def test_truncated_body_raises(self):
        from repro.errors import XdrError

        data = encode_message(CallMessage(serial=1, oid=1, tag=1, method="m",
                                          args=b"abc", expects_reply=True))
        with pytest.raises(XdrError):
            decode_message(data[:-6])

    def test_hello_bad_role_rejected(self):
        from repro.errors import XdrError
        from repro.xdr import XdrStream

        enc = XdrStream.encoder()
        enc.xuint(1)   # HELLO type code
        enc.xint(9)    # invalid role
        enc.xstring("")
        enc.xuint(1)
        with pytest.raises(XdrError):
            decode_message(enc.getvalue())


class TestDistinctness:
    def test_all_type_codes_distinct(self):
        messages = [
            HelloMessage(role=ChannelRole.RPC),
            CallMessage(serial=0, oid=0, tag=0, method="", args=b"", expects_reply=True),
            ReplyMessage(serial=0, results=b""),
            ExceptionMessage(serial=0, remote_type="", message=""),
            BatchMessage(),
            UpcallMessage(serial=0, ruc_id=0, args=b""),
            UpcallReplyMessage(serial=0, results=b""),
            UpcallExceptionMessage(serial=0, remote_type="", message=""),
        ]
        codes = [m.TYPE_CODE for m in messages]
        assert len(set(codes)) == len(codes)
        for msg in messages:
            assert type(roundtrip(msg)) is type(msg)


class TestVersioning:
    """Protocol v2 appends trace context; v1 peers never see it."""

    def test_negotiate_takes_the_min(self):
        assert negotiate_version(PROTOCOL_VERSION) == PROTOCOL_VERSION
        assert negotiate_version(1) == 1
        assert negotiate_version(99) == PROTOCOL_VERSION

    def test_negotiate_rejects_prehistoric_peers(self):
        with pytest.raises(ProtocolError):
            negotiate_version(MIN_PROTOCOL_VERSION - 1)

    def test_call_trace_context_roundtrips_at_v2(self):
        msg = CallMessage(serial=1, oid=2, tag=3, method="poke", args=b"x",
                          expects_reply=True, trace_id="ab" * 8,
                          parent_span=0x1234_5678_9ABC)
        out = decode_message(encode_message(msg))
        assert out.trace_id == msg.trace_id
        assert out.parent_span == msg.parent_span

    def test_v1_encoding_omits_trace_context(self):
        with_ctx = CallMessage(serial=1, oid=2, tag=3, method="poke",
                               args=b"x", expects_reply=True,
                               trace_id="ab" * 8, parent_span=7)
        without = CallMessage(serial=1, oid=2, tag=3, method="poke",
                              args=b"x", expects_reply=True)
        v1_bytes = encode_message(with_ctx, version=1)
        # identical to what a context-free peer would produce...
        assert v1_bytes == encode_message(without, version=1)
        # ...and a v1 decoder reads it back with empty context
        out = decode_message(v1_bytes, version=1)
        assert out.trace_id == ""
        assert out.parent_span == 0

    def test_versions_are_not_wire_compatible_midstream(self):
        """A v2 frame fed to a v1 decoder has trailing bytes — the
        negotiation exists precisely so this never happens."""
        from repro.errors import XdrError

        msg = CallMessage(serial=1, oid=2, tag=3, method="poke", args=b"x",
                          expects_reply=True, trace_id="ab" * 8, parent_span=7)
        with pytest.raises((ProtocolError, XdrError)):
            decode_message(encode_message(msg, version=2), version=1)

    def test_batch_members_follow_the_batch_version(self):
        calls = [
            CallMessage(serial=i, oid=1, tag=1, method="m", args=b"",
                        expects_reply=False, trace_id="cd" * 8, parent_span=i)
            for i in range(1, 4)
        ]
        batch = BatchMessage(calls=calls)
        v2 = decode_message(encode_message(batch, version=2), version=2)
        assert [c.parent_span for c in v2.calls] == [1, 2, 3]
        v1 = decode_message(encode_message(batch, version=1), version=1)
        assert all(c.trace_id == "" for c in v1.calls)

    def test_upcall_trace_context_versioned(self):
        msg = UpcallMessage(serial=5, ruc_id=9, args=b"a",
                            trace_id="ef" * 8, parent_span=11)
        v2 = decode_message(encode_message(msg))
        assert (v2.trace_id, v2.parent_span) == (msg.trace_id, 11)
        v1 = decode_message(encode_message(msg, version=1), version=1)
        assert (v1.trace_id, v1.parent_span) == ("", 0)

    def test_hello_layout_is_version_independent(self):
        """The HELLO must be readable before negotiation: encoding it
        at any version yields identical bytes."""
        msg = HelloMessage(role=ChannelRole.RPC, session="tok",
                           protocol_version=2)
        assert encode_message(msg, version=1) == encode_message(msg, version=2)

    def test_trace_context_version_constant(self):
        assert MIN_PROTOCOL_VERSION < TRACE_CONTEXT_VERSION <= PROTOCOL_VERSION
