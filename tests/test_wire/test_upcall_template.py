"""Golden parity for the encode-once/write-N upcall fast path.

The fan-out hot path encodes an :class:`UpcallMessage` *once* as a
template and patches only the per-subscriber fields (serial, ruc_id)
into a copy per stream (:func:`repro.wire.patch_upcall_frame`).  The
optimization is only sound if a patched template is **byte-identical**
to encoding the full message per subscriber — these tests pin that,
across every protocol version and across the trace-context fields, so
any future field reorder in ``UpcallMessage.bundle`` that silently
moves the patch offsets fails loudly here rather than corrupting
frames on the wire.
"""

import pytest

from repro.wire import (
    MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    UpcallMessage,
    decode_message,
    encode_message,
    encode_upcall_template,
    patch_upcall_frame,
)
from repro.wire.messages import UPCALL_RUC_OFFSET, UPCALL_SERIAL_OFFSET

ALL_VERSIONS = range(MIN_PROTOCOL_VERSION, PROTOCOL_VERSION + 1)


@pytest.mark.parametrize("version", ALL_VERSIONS)
def test_patched_template_matches_full_encode(version):
    args = b"\x00\x01\x02payload-bytes\xff" * 3
    template = encode_upcall_template(
        args,
        expects_reply=True,
        trace_id="trace-abc",
        parent_span=0x1122334455,
        version=version,
    )
    for serial, ruc_id in [(1, 1), (7, 42), (0xFFFFFFFF, 2**63 - 1), (0, 0)]:
        patched = bytes(patch_upcall_frame(template, serial, ruc_id))
        golden = encode_message(
            UpcallMessage(
                serial=serial,
                ruc_id=ruc_id,
                args=args,
                expects_reply=True,
                trace_id="trace-abc",
                parent_span=0x1122334455,
            ),
            version=version,
        )
        assert patched == golden, (
            f"v{version} serial={serial} ruc={ruc_id}: patched frame "
            f"differs from per-subscriber encode"
        )


@pytest.mark.parametrize("version", ALL_VERSIONS)
@pytest.mark.parametrize("expects_reply", [True, False])
def test_patched_template_decodes_correctly(version, expects_reply):
    args = b"round-trip"
    template = encode_upcall_template(
        args, expects_reply=expects_reply, trace_id="t", parent_span=9,
        version=version,
    )
    message = decode_message(
        bytes(patch_upcall_frame(template, 31337, 0xDEAD)), version=version
    )
    assert isinstance(message, UpcallMessage)
    assert message.serial == 31337
    assert message.ruc_id == 0xDEAD
    assert message.args == args
    assert message.expects_reply is expects_reply
    if version >= 2:
        assert message.trace_id == "t"
        assert message.parent_span == 9


def test_write_n_shares_one_template():
    """The write-N shape: one template, N patched frames, all golden."""
    args = b"fan-out-event"
    template = encode_upcall_template(args, trace_id="tr", parent_span=5)
    subscribers = [(serial, 1000 + serial) for serial in range(1, 6)]
    frames = [
        bytes(patch_upcall_frame(template, serial, ruc_id))
        for serial, ruc_id in subscribers
    ]
    for frame, (serial, ruc_id) in zip(frames, subscribers):
        assert frame == encode_message(
            UpcallMessage(
                serial=serial, ruc_id=ruc_id, args=args,
                trace_id="tr", parent_span=5,
            )
        )
    # Every frame differs from the template only at the patched fields.
    for frame in frames:
        for i, (a, b) in enumerate(zip(frame, template)):
            if a != b:
                assert (
                    UPCALL_SERIAL_OFFSET <= i < UPCALL_SERIAL_OFFSET + 4
                    or UPCALL_RUC_OFFSET <= i < UPCALL_RUC_OFFSET + 8
                ), f"patch touched unexpected byte {i}"


def test_patch_offsets_pin_the_wire_layout():
    """The fixed offsets assume serial/ruc_id lead the body after the
    type code; decoding a frame with distinctive sentinel bytes proves
    the assumption against the real codec."""
    template = encode_upcall_template(b"")
    patched = patch_upcall_frame(template, 0x0A0B0C0D, 0x0102030405060708)
    assert bytes(patched[UPCALL_SERIAL_OFFSET:UPCALL_SERIAL_OFFSET + 4]) == bytes(
        [0x0A, 0x0B, 0x0C, 0x0D]
    )
    assert bytes(patched[UPCALL_RUC_OFFSET:UPCALL_RUC_OFFSET + 8]) == bytes(
        [0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08]
    )
    message = decode_message(bytes(patched))
    assert message.serial == 0x0A0B0C0D
    assert message.ruc_id == 0x0102030405060708
