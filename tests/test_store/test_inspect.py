"""Smoke tests for the ``python -m repro.store.inspect`` CLI."""

import json
import os
import subprocess
import sys

from repro.store import SubscriberLog
from repro.store.inspect import main


def make_spool(tmp_path) -> str:
    root = tmp_path / "spool" / "events"
    log = SubscriberLog(str(root / "sub-a.log")).open()
    log.append(1, b"alpha")
    log.append(2, b"beta")
    log.append(3, b"gamma")
    log.ack(1)
    log.close()
    return str(tmp_path / "spool")


class TestInspect:
    def test_clean_log_exits_zero(self, tmp_path, capsys):
        root = make_spool(tmp_path)
        assert main([root]) == 0
        out = capsys.readouterr().out
        assert "sub-a.log" in out
        assert "acked cursor: 1" in out
        assert "seq=1 acked" in out
        assert "seq=2 replay" in out
        assert "scan: complete" in out

    def test_damaged_log_exits_one(self, tmp_path, capsys):
        root = make_spool(tmp_path)
        path = os.path.join(root, "events", "sub-a.log")
        os.truncate(path, os.path.getsize(path) - 3)
        assert main([path]) == 1
        out = capsys.readouterr().out
        assert "torn-tail" in out
        assert "recovery would truncate" in out

    def test_json_mode(self, tmp_path, capsys):
        root = make_spool(tmp_path)
        assert main(["--json", root]) == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["status"] == "complete"
        assert payload["acked"] == 1
        assert [r["seq"] for r in payload["records"]] == [1, 2, 3]
        assert [r["acked"] for r in payload["records"]] == [True, False, False]

    def test_usage_errors_exit_two(self, tmp_path):
        assert main([str(tmp_path / "nope")]) == 2
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main([str(empty)]) == 2

    def test_runs_as_a_module(self, tmp_path):
        """The CI smoke invocation: ``python -m repro.store.inspect``."""
        root = make_spool(tmp_path)
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.store.inspect", root],
            capture_output=True,
            text=True,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "scan: complete" in proc.stdout
