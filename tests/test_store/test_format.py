"""Record framing: roundtrips, and the torn-tail vs corruption verdict.

The recovery scan's one hard job is telling a *clean crash* (damage
that reaches the end of the file — truncate and move on) from *bit
rot* (a CRC mismatch with plausible data behind it — truncate AND
raise an incident).  These tests pin that boundary byte by byte.
"""

import pytest

from repro.store import format as fmt


def _log(*payloads: bytes, start: int = 1) -> bytes:
    return b"".join(
        fmt.encode_record(start + i, payload, 1000.0 + i)
        for i, payload in enumerate(payloads)
    )


class TestRoundtrip:
    def test_encode_decode(self):
        encoded = fmt.encode_record(7, b"hello", 123.5)
        record = fmt.decode_at(encoded, 0)
        assert (record.seq, record.payload, record.ts) == (7, b"hello", 123.5)
        assert record.offset == 0
        assert record.end == len(encoded) == fmt.record_size(b"hello")

    def test_empty_payload(self):
        record = fmt.decode_at(fmt.encode_record(1, b"", 0.0), 0)
        assert record.payload == b""

    def test_scan_complete(self):
        data = _log(b"a", b"bb", b"ccc")
        result = fmt.scan(data)
        assert result.status == fmt.COMPLETE
        assert [r.seq for r in result.records] == [1, 2, 3]
        assert result.good_end == len(data)

    def test_iter_records_stops_silently(self):
        data = _log(b"a", b"bb") + b"\x00garbage"
        assert [r.seq for r in fmt.iter_records(data)] == [1, 2]


class TestDamage:
    def test_short_header_is_torn_tail(self):
        data = _log(b"one", b"two")
        result = fmt.scan(data[:-fmt.HEADER_SIZE - 1])  # cut into record 2
        assert result.status == fmt.TORN_TAIL
        assert [r.seq for r in result.records] == [1]
        assert result.good_end == fmt.record_size(b"one")

    def test_short_payload_is_torn_tail(self):
        data = _log(b"one", b"a-longer-payload")
        result = fmt.scan(data[:-3])  # header intact, payload cut
        assert result.status == fmt.TORN_TAIL
        assert result.good_end == fmt.record_size(b"one")
        assert "short payload" in result.detail

    def test_flipped_bit_with_data_behind_is_bad_crc(self):
        first = fmt.encode_record(1, b"aaaa", 1.0)
        rest = fmt.encode_record(2, b"bbbb", 2.0)
        corrupt = bytearray(first + rest)
        corrupt[fmt.HEADER_SIZE] ^= 0xFF  # flip inside record 1's payload
        result = fmt.scan(bytes(corrupt))
        assert result.status == fmt.BAD_CRC
        assert result.records == []
        assert result.good_end == 0

    def test_crc_mismatch_at_tail_without_plausible_rest(self):
        # The damaged record IS the tail and shorter than a header's
        # worth of trailing bytes cannot hide another record — but a
        # full bad record at the tail still reads as corruption, since
        # the payload is complete and only the checksum disagrees.
        data = bytearray(_log(b"xyz"))
        data[-1] ^= 0x01
        result = fmt.scan(bytes(data))
        assert result.status == fmt.BAD_CRC
        assert result.good_end == 0

    def test_implausible_length_prefix(self):
        data = _log(b"ok") + b"\xff\xff\xff\xff" + b"\x00" * 64
        result = fmt.scan(data)
        assert result.status == fmt.BAD_CRC
        assert "implausible" in result.detail
        assert [r.seq for r in result.records] == [1]

    def test_decode_raises_on_each_damage_class(self):
        encoded = fmt.encode_record(1, b"payload", 1.0)
        with pytest.raises(ValueError):
            fmt.decode_at(encoded[:10], 0)
        with pytest.raises(ValueError):
            fmt.decode_at(encoded[:-2], 0)
        mangled = bytearray(encoded)
        mangled[-1] ^= 0x01
        with pytest.raises(ValueError):
            fmt.decode_at(bytes(mangled), 0)
