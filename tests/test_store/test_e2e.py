"""End-to-end durable fan-out over the wire: crash, resume, replay.

The acceptance run for repro.store: 500 events posted while the
durable subscriber suffers a mid-run kill; a successor process
(a fresh client, same durable id) resumes from its cursor and must
observe **all 500 events exactly once, in order**, with the replay
throttled by its CREDIT window — never a firehose.
"""

import asyncio
import itertools
from typing import Callable

from repro import ClamClient, ClamServer, RemoteInterface
from repro.cluster import UpcallGroup
from repro.store import ReplayCursor, Spool
from tests.support import async_test, eventually

_ids = itertools.count(1)

N_EVENTS = 500
KILL_AFTER = 200  # kill the first subscriber once it has seen this many


class Hub(RemoteInterface):
    """Host-embedded durable fan-out hub."""

    def __init__(self, spool: Spool, metrics=None):
        self.group = UpcallGroup(
            "events",
            store=spool,
            queue_limit=64,
            resume_poll=0.05,
            metrics=metrics,
        )

    def join(
        self, proc: Callable[[int, int], None], durable: str, resume_from: int
    ) -> int:
        return self.group.subscribe(proc, durable=durable, resume_from=resume_from)


async def kill(client: ClamClient) -> None:
    """Sever both channels abruptly, as a crashed process would."""
    await client.rpc.channel.close()
    await client._upcall_service._channel.close()


@async_test
async def test_500_events_survive_a_mid_run_kill_exactly_once(tmp_path):
    spool = Spool(str(tmp_path / "spool"), fsync="never")
    server = ClamServer(
        session_linger=30.0, degrade_upcalls=True, upcall_timeout=0.5
    )
    hub = Hub(spool, metrics=server.metrics)
    server.attach_store(spool)
    server.publish("hub", hub)
    address = await server.start(f"memory://store-e2e-{next(_ids)}")

    # -- first incarnation: subscribes durably, dies mid-run ---------------
    client_a = await ClamClient.connect(address, upcall_window_msgs=8)
    cursor_a = ReplayCursor()
    got_a: list[tuple[int, int]] = []

    def on_event_a(seq: int, value: int) -> None:
        if cursor_a.admit(seq):
            got_a.append((seq, value))

    proxy_a = await client_a.lookup(Hub, "hub")
    await proxy_a.join(on_event_a, "sub", 0)

    try:
        # Phase 1: post half the stream, kill A once it has absorbed
        # KILL_AFTER events — whatever is queued or in flight at that
        # instant is the in-doubt window the cursors must absorb.
        for value in range(N_EVENTS // 2):
            hub.group.post(value)
        await eventually(lambda: len(got_a) >= KILL_AFTER, timeout=30.0)
        await kill(client_a)

        # Phase 2: the publisher never stops.  The pump notices the
        # dead path on the next delivery, parks the subscription, and
        # everything spills to the log.
        for value in range(N_EVENTS // 2, N_EVENTS):
            hub.group.post(value)
        await eventually(lambda: hub.group.parked_subscribers == 1)
        assert hub.group.parks == 1
        backlog = hub.group.stats()["parked"]["sub"]["backlog_events"]
        assert backlog >= N_EVENTS // 2

        # -- second incarnation: same durable id, resumes from cursor ------
        client_b = await ClamClient.connect(address, upcall_window_msgs=8)
        cursor_b = ReplayCursor(cursor_a.last)
        got_b: list[tuple[int, int]] = []

        def on_event_b(seq: int, value: int) -> None:
            if cursor_b.admit(seq):
                got_b.append((seq, value))

        proxy_b = await client_b.lookup(Hub, "hub")
        await proxy_b.join(on_event_b, "sub", cursor_a.last)
        await eventually(
            lambda: len(got_a) + len(got_b) == N_EVENTS, timeout=30.0
        )
        await hub.group.flush(timeout=30.0)

        # Exactly once, in order, nothing lost across the crash.
        combined = [value for _, value in got_a] + [value for _, value in got_b]
        assert combined == list(range(N_EVENTS))
        seqs = [seq for seq, _ in got_a] + [seq for seq, _ in got_b]
        assert seqs == sorted(seqs)
        assert hub.group.replayed >= N_EVENTS // 2

        # The replay was paced by B's CREDIT window: a backlog this
        # size cannot fit one grant, so B must have re-granted many
        # times while absorbing it.
        ledger = client_b._upcall_service._ledger
        assert ledger is not None
        assert ledger.grants_sent > 2

        # -- acknowledge: the cursor RPC truncates the spill log -----------
        acked = await client_b.store_ack("events", "sub", cursor_b.last)
        assert acked == cursor_b.last == N_EVENTS
        assert spool.topic("events").subscription("sub").backlog_events == 0
        stats = await client_b.store_stats()
        assert stats["events.sub.acked"] == float(N_EVENTS)
        assert stats["events.last_seq"] == float(N_EVENTS)

        # Server-side observability saw the whole story.
        metrics = server.metrics.snapshot()
        assert metrics["store.parks"] == 1.0
        assert metrics["store.spilled_events"] >= N_EVENTS // 2
        assert metrics["store.replayed_events"] >= N_EVENTS // 2

        await client_b.close()
    finally:
        try:
            await client_a.close()
        except Exception:
            pass
        await hub.group.close()
        spool.close()
        await server.shutdown()


@async_test
async def test_server_restart_preserves_the_backlog(tmp_path):
    """The stronger durability claim: the *server* dies with spilled
    events on disk; its successor replays them to a re-subscriber."""
    root = str(tmp_path / "spool")
    spool = Spool(root, fsync="always")
    server = ClamServer(session_linger=5.0)
    hub = Hub(spool)
    server.attach_store(spool)
    server.publish("hub", hub)
    address = await server.start(f"memory://store-restart-{next(_ids)}")

    client = await ClamClient.connect(address)
    got: list[tuple[int, int]] = []
    proxy = await client.lookup(Hub, "hub")
    await proxy.join(lambda seq, value: got.append((seq, value)), "sub", 0)
    for value in range(5):
        hub.group.post(value)
    await hub.group.flush()
    assert [value for _, value in got] == list(range(5))
    await kill(client)
    for value in range(5, 12):
        hub.group.post(value)
    await eventually(lambda: hub.group.parked_subscribers == 1)
    # Hard stop: no clean close of the group or spool.
    await server.shutdown()

    spool2 = Spool(root, fsync="always")
    server2 = ClamServer()
    hub2 = Hub(spool2)
    server2.attach_store(spool2)
    server2.publish("hub", hub2)
    address2 = await server2.start(f"memory://store-restart-{next(_ids)}")
    client2 = await ClamClient.connect(address2)
    cursor = ReplayCursor(got[-1][0])
    got2: list[tuple[int, int]] = []

    def on_event(seq: int, value: int) -> None:
        if cursor.admit(seq):
            got2.append((seq, value))

    proxy2 = await client2.lookup(Hub, "hub")
    await proxy2.join(on_event, "sub", got[-1][0])
    await eventually(lambda: len(got2) == 7, timeout=10.0)
    assert [value for _, value in got2] == list(range(5, 12))
    # Seqs keep rising across the restart.
    hub2.group.post(99)
    await hub2.group.flush()
    assert got2[-1][1] == 99 and got2[-1][0] > 12
    await client2.close()
    await hub2.group.close()
    spool2.close()
    await server2.shutdown()
