"""SubscriberLog crash recovery, acknowledgement, and retention.

The satellite-3 crash tests live here: a log whose tail was torn by a
crash mid-append recovers to the last intact record and keeps
appending; a log corrupted in the middle truncates *and* raises a
flight-recorder incident.  Plus the cursor/compaction arithmetic the
exactly-once story leans on.
"""

import os

import pytest

from repro.errors import StoreError
from repro.store import Retention, SubscriberLog
from repro.store import format as fmt


def make_log(tmp_path, **kwargs) -> SubscriberLog:
    return SubscriberLog(str(tmp_path / "sub.log"), **kwargs).open()


def fill(log: SubscriberLog, n: int, *, start: int = 1, size: int = 8) -> None:
    log.append_many([(start + i, bytes([65 + i % 26]) * size) for i in range(n)])


class TestAppendReplay:
    def test_roundtrip_in_order(self, tmp_path):
        log = make_log(tmp_path)
        log.append(1, b"one")
        log.append_many([(2, b"two"), (5, b"five")])
        assert log.replay(0) == [(1, b"one"), (2, b"two"), (5, b"five")]
        assert log.replay(2) == [(5, b"five")]
        assert log.replay(5) == []
        log.close()

    def test_replay_windows(self, tmp_path):
        log = make_log(tmp_path)
        fill(log, 10)
        assert [s for s, _ in log.replay(0, max_events=3)] == [1, 2, 3]
        one = fmt.record_size(b"x" * 8)
        assert [s for s, _ in log.replay(0, max_bytes=one * 2)] == [1, 2]
        # max_bytes always yields at least one record, however small.
        assert len(log.replay(0, max_bytes=1)) == 1
        log.close()

    def test_seqs_must_increase(self, tmp_path):
        log = make_log(tmp_path)
        log.append(5, b"x")
        with pytest.raises(StoreError):
            log.append(5, b"again")
        with pytest.raises(StoreError):
            log.append(4, b"backwards")
        log.close()

    def test_reopen_sees_everything(self, tmp_path):
        log = make_log(tmp_path)
        fill(log, 4)
        log.ack(2)
        log.close()
        again = SubscriberLog(log.path).open()
        assert again.acked == 2
        assert [s for s, _ in again.replay(again.acked)] == [3, 4]
        again.close()


class TestCrashRecovery:
    def test_truncated_tail_recovers_to_last_record(self, tmp_path):
        log = make_log(tmp_path, fsync="always")
        fill(log, 5)
        log.close()
        # Crash mid-append: the tail record is half-written.
        size = os.path.getsize(log.path)
        os.truncate(log.path, size - 5)
        incidents = []
        again = SubscriberLog(
            log.path, on_incident=lambda r, d: incidents.append(r)
        ).open()
        assert [s for s, _ in again.replay(0)] == [1, 2, 3, 4]
        assert again.truncations == 1
        assert "torn-tail" in again.recovered_detail
        # A torn tail is a normal crash signature, not corruption.
        assert incidents == []
        # The log keeps working where it left off.
        again.append(6, b"after")
        assert [s for s, _ in again.replay(4)] == [6]
        again.close()

    def test_corrupted_crc_truncates_and_raises_incident(self, tmp_path):
        log = make_log(tmp_path)
        fill(log, 4)
        log.close()
        # Flip a payload bit in record 3 — records 3 and 4 are lost
        # (the scan cannot trust anything past the damage).
        offset = fmt.record_size(b"x" * 8) * 2 + fmt.HEADER_SIZE + 1
        with open(log.path, "r+b") as fh:
            fh.seek(offset)
            byte = fh.read(1)[0]
            fh.seek(offset)
            fh.write(bytes([byte ^ 0xFF]))
        incidents = []
        again = SubscriberLog(
            log.path, on_incident=lambda r, d: incidents.append((r, d))
        ).open()
        assert [s for s, _ in again.replay(0)] == [1, 2]
        assert incidents and incidents[0][0] == "store-log-corrupt"
        assert "crc mismatch" in incidents[0][1]
        again.close()

    def test_empty_and_missing_files(self, tmp_path):
        log = make_log(tmp_path)
        assert log.replay(0) == []
        assert log.backlog_events == 0
        log.close()

    def test_corrupt_cursor_sidecar_reads_as_zero(self, tmp_path):
        log = make_log(tmp_path)
        fill(log, 2)
        log.ack(1)
        log.close()
        with open(log.path + ".ack", "r+b") as fh:
            fh.write(b"\xde\xad")
        again = SubscriberLog(log.path).open()
        # A torn cursor never advances the cursor wrongly — it resets
        # to 0 and redelivery is deduped client-side.
        assert again.acked == 0
        again.close()


class TestAckCompaction:
    def test_ack_is_cumulative_max_merge(self, tmp_path):
        log = make_log(tmp_path)
        fill(log, 4)
        assert log.ack(3) == 3
        assert log.ack(1) == 3  # stale ack is a no-op
        assert log.ack(3) == 3  # duplicate too
        assert log.backlog_events == 1
        log.close()

    def test_compaction_drops_acked_prefix(self, tmp_path):
        log = make_log(tmp_path, compact_bytes=1)  # compact eagerly
        fill(log, 8, size=32)
        before = log.size_bytes
        log.ack(6)
        assert log.compactions >= 1
        assert log.size_bytes < before
        assert log.first_seq == 7
        assert [s for s, _ in log.replay(log.acked)] == [7, 8]
        # Compaction survives a reopen: same records, same cursor.
        log.close()
        again = SubscriberLog(log.path).open()
        assert again.acked == 6
        assert [s for s, _ in again.replay(again.acked)] == [7, 8]
        again.close()


class TestRetention:
    def test_max_bytes_evicts_oldest_and_counts(self, tmp_path):
        incidents = []
        one = fmt.record_size(b"x" * 32)
        log = SubscriberLog(
            str(tmp_path / "sub.log"),
            retention=Retention(max_bytes=one * 3),
            on_incident=lambda r, d: incidents.append(r),
        ).open()
        fill(log, 6, size=32)
        # Only ~3 records' worth may remain; the dropped ones were
        # never delivered, so the eviction is loud.
        assert log.size_bytes <= one * 3
        assert log.evicted_events >= 3
        assert "store-retention-evict" in incidents
        # The cursor advanced past the evicted floor so replay never
        # hands out a gap it cannot fill.
        assert log.acked >= log.first_seq - 1
        log.close()

    def test_max_age_evicts_expired(self, tmp_path):
        now = [1000.0]
        log = SubscriberLog(
            str(tmp_path / "sub.log"),
            retention=Retention(max_age=10.0),
            clock=lambda: now[0],
        ).open()
        log.append(1, b"old")
        log.append(2, b"old2")
        now[0] = 1020.0
        log.append(3, b"fresh")
        assert [s for s, _ in log.replay(log.acked)] == [3]
        assert log.evicted_events == 2
        log.close()

    def test_acked_records_evict_quietly(self, tmp_path):
        one = fmt.record_size(b"x" * 32)
        incidents = []
        log = SubscriberLog(
            str(tmp_path / "sub.log"),
            retention=Retention(max_bytes=one * 4),
            on_incident=lambda r, d: incidents.append(r),
        ).open()
        fill(log, 4, size=32)
        log.ack(4)  # everything delivered...
        fill(log, 4, start=5, size=32)  # ...then pushed out by new spills
        assert log.evicted_events == 0
        assert incidents.count("store-retention-evict") == 0
        log.close()
