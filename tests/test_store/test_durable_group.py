"""Durable subscriptions on a local UpcallGroup: park, spill, replay.

Local subscribers (plain callables + an explicit signature) exercise
the whole durable state machine without a wire: a dead delivery path
parks the subscription and spills its backlog, a re-subscribe under
the same id replays the log in seq order, queue overflow spills
instead of dropping, and the topic seq survives a simulated restart.
"""

import asyncio

import pytest

from repro.bundlers import default_registry
from repro.cluster import UpcallGroup
from repro.core import UpcallSignature
from repro.errors import (
    FlushTimeoutError,
    StoreError,
    UpcallError,
)
from repro.store import ReplayCursor, Spool
from tests.support import async_test, eventually

SIG = UpcallSignature((int, int), type(None), default_registry())


def make_group(tmp_path, **kwargs) -> tuple[UpcallGroup, Spool]:
    spool = Spool(str(tmp_path / "spool"), fsync="never")
    kwargs.setdefault("resume_poll", 0.02)
    group = UpcallGroup("events", store=spool, **kwargs)
    return group, spool


class TestRegistration:
    @async_test
    async def test_durable_requires_a_store(self):
        group = UpcallGroup("plain")
        with pytest.raises(StoreError):
            group.subscribe(lambda s, v: None, durable="a", signature=SIG)
        await group.close()

    @async_test
    async def test_local_durable_requires_a_signature(self, tmp_path):
        group, _ = make_group(tmp_path)
        with pytest.raises(StoreError):
            group.subscribe(lambda s, v: None, durable="a")
        await group.close()

    @async_test
    async def test_events_carry_the_topic_seq(self, tmp_path):
        group, _ = make_group(tmp_path)
        seen: list[tuple[int, int]] = []
        group.subscribe(
            lambda seq, value: seen.append((seq, value)),
            durable="a",
            signature=SIG,
        )
        for value in range(5):
            group.post(value)
        await group.flush()
        assert seen == [(i + 1, i) for i in range(5)]
        await group.close()

    @async_test
    async def test_takeover_is_latest_wins(self, tmp_path):
        group, _ = make_group(tmp_path)
        first: list[int] = []
        second: list[int] = []
        group.subscribe(
            lambda s, v: first.append(v), durable="a", signature=SIG
        )
        group.post(0)
        await group.flush()
        group.subscribe(
            lambda s, v: second.append(v), durable="a", signature=SIG
        )
        assert len(group) == 1  # the old registration was detached
        group.post(1)
        await group.flush()
        assert first == [0] and second == [1]
        await group.close()


class TestParkAndReplay:
    @async_test
    async def test_dead_path_parks_and_resubscribe_replays(self, tmp_path):
        group, _ = make_group(tmp_path)
        alive: list[tuple[int, int]] = []

        def dying(seq: int, value: int) -> None:
            if value >= 3:
                raise UpcallError("client gone")
            alive.append((seq, value))

        group.subscribe(dying, durable="a", signature=SIG)
        for value in range(10):
            group.post(value)
        await eventually(lambda: group.parked_subscribers == 1)
        assert alive == [(1, 0), (2, 1), (3, 2)]
        assert group.parks == 1
        # Posts while parked keep spilling.
        group.post(10)
        stats = group.stats()
        assert stats["parked"]["a"]["backlog_events"] == 8
        # The subscriber returns: replay hands it everything it missed,
        # in seq order, exactly once.
        cursor = ReplayCursor(3)
        replayed: list[tuple[int, int]] = []

        def revived(seq: int, value: int) -> None:
            if cursor.admit(seq):
                replayed.append((seq, value))

        group.subscribe(revived, durable="a", signature=SIG)
        await group.flush()
        assert replayed == [(seq, seq - 1) for seq in range(4, 12)]
        assert group.parked_subscribers == 0
        assert group.replayed == 8
        assert cursor.duplicates == 0
        await group.close()

    @async_test
    async def test_replay_is_fenced_from_live_posts(self, tmp_path):
        """Posts racing a replay land behind it — never interleaved."""
        group, _ = make_group(tmp_path, replay_chunk=2)
        boom = [True]

        def dying(seq: int, value: int) -> None:
            if boom[0]:
                raise UpcallError("down")

        group.subscribe(dying, durable="a", signature=SIG)
        for value in range(6):
            group.post(value)
        await eventually(lambda: group.parked_subscribers == 1)
        order: list[int] = []

        async def slow(seq: int, value: int) -> None:
            order.append(seq)
            await asyncio.sleep(0.001)

        group.subscribe(slow, durable="a", signature=SIG)
        # Race live posts against the replay that is now running.
        for value in range(6, 12):
            group.post(value)
        await group.flush()
        assert order == sorted(order)
        assert order == list(range(1, 13))
        await group.close()

    @async_test
    async def test_resume_from_closes_the_in_doubt_window(self, tmp_path):
        group, _ = make_group(tmp_path)

        def dying(seq: int, value: int) -> None:
            raise UpcallError("down")

        group.subscribe(dying, durable="a", signature=SIG)
        for value in range(5):
            group.post(value)
        await eventually(lambda: group.parked_subscribers == 1)
        got: list[int] = []
        # The client's own cursor says 1..3 were fully absorbed before
        # the crash: replay starts after them.
        group.subscribe(
            lambda s, v: got.append(s),
            durable="a",
            resume_from=3,
            signature=SIG,
        )
        await group.flush()
        assert got == [4, 5]
        await group.close()

    @async_test
    async def test_unsubscribe_spills_pending_for_later(self, tmp_path):
        group, _ = make_group(tmp_path)
        blocker = asyncio.Event()
        seen: list[int] = []

        async def slow(seq: int, value: int) -> None:
            await blocker.wait()
            seen.append(seq)

        key = group.subscribe(slow, durable="a", signature=SIG)
        for value in range(4):
            group.post(value)
        await asyncio.sleep(0.01)  # pump is blocked mid-delivery of seq 1
        group.unsubscribe(key)
        blocker.set()
        # The identity is not parked (unsubscribe is deliberate), but
        # the undelivered events — the in-flight one included, it never
        # completed — wait in the log for a re-subscribe.
        assert group.parked_subscribers == 0
        got: list[int] = []
        group.subscribe(
            lambda s, v: got.append(s), durable="a", signature=SIG
        )
        await group.flush()
        assert got == [1, 2, 3, 4]
        await group.close()


class TestOverflow:
    @async_test
    async def test_overflow_spills_instead_of_dropping(self, tmp_path):
        group, _ = make_group(tmp_path, queue_limit=2)
        release = asyncio.Event()
        seen: list[int] = []

        async def slow(seq: int, value: int) -> None:
            await release.wait()
            seen.append(seq)

        group.subscribe(slow, durable="a", signature=SIG)
        for value in range(12):
            group.post(value)
            await asyncio.sleep(0)
        release.set()
        await group.flush()
        # Nothing dropped, nothing reordered, nothing doubled — the
        # overflow drained through the spill log.
        assert seen == list(range(1, 13))
        assert group.dropped == 0
        assert group.evicted_subscribers == 0
        assert group.spilled > 0
        await group.close()


class TestRestart:
    @async_test
    async def test_seq_and_backlog_survive_a_restart(self, tmp_path):
        group, spool = make_group(tmp_path)

        def dying(seq: int, value: int) -> None:
            raise UpcallError("down")

        group.subscribe(dying, durable="a", signature=SIG)
        for value in range(5):
            group.post(value)
        await eventually(lambda: group.parked_subscribers == 1)
        await group.close()
        spool.close()

        # "Restart": a fresh spool over the same directory.
        spool2 = Spool(str(tmp_path / "spool"), fsync="never")
        group2 = UpcallGroup("events", store=spool2)
        got: list[tuple[int, int]] = []
        group2.subscribe(
            lambda s, v: got.append((s, v)), durable="a", signature=SIG
        )
        await group2.flush()
        assert got == [(i + 1, i) for i in range(5)]
        # New posts continue past the old seqs — never reused, even
        # though live deliveries were not logged.
        group2.post(99)
        await group2.flush()
        assert got[-1][1] == 99 and got[-1][0] > 5
        await group2.close()
        spool2.close()

    @async_test
    async def test_forget_drops_the_identity(self, tmp_path):
        group, _ = make_group(tmp_path)

        def dying(seq: int, value: int) -> None:
            raise UpcallError("down")

        group.subscribe(dying, durable="a", signature=SIG)
        group.post(0)
        await eventually(lambda: group.parked_subscribers == 1)
        assert group.forget("a") is True
        assert group.parked_subscribers == 0
        got: list[int] = []
        group.subscribe(lambda s, v: got.append(s), durable="a", signature=SIG)
        await group.flush()
        assert got == []  # the old backlog is gone
        await group.close()


class TestObservability:
    @async_test
    async def test_flush_timeout_names_the_durable_laggard(self, tmp_path):
        group, _ = make_group(tmp_path)
        blocker = asyncio.Event()

        async def stuck(seq: int, value: int) -> None:
            await blocker.wait()

        group.subscribe(stuck, durable="slowpoke", signature=SIG)
        for value in range(5):
            group.post(value)
        await asyncio.sleep(0.01)
        with pytest.raises(FlushTimeoutError) as err:
            await group.flush(timeout=0.05)
        assert "slowpoke" in str(err.value)
        assert "queued" in str(err.value)
        assert isinstance(err.value, asyncio.TimeoutError)  # old handlers
        blocker.set()
        await group.close()

    @async_test
    async def test_stats_expose_durable_depths(self, tmp_path):
        group, _ = make_group(tmp_path)

        def dying(seq: int, value: int) -> None:
            raise UpcallError("down")

        group.subscribe(dying, durable="a", signature=SIG)
        for value in range(3):
            group.post(value)
        await eventually(lambda: group.parked_subscribers == 1)
        stats = group.stats()
        assert stats["parks"] == 1
        assert stats["spilled"] >= 3
        parked = stats["parked"]["a"]
        assert parked["backlog_events"] == 3
        assert parked["backlog_bytes"] > 0
        # A live durable subscriber reports its identity and depth.
        got: list[int] = []
        group.subscribe(lambda s, v: got.append(s), durable="a", signature=SIG)
        await group.flush()
        stats = group.stats()
        (entry,) = stats["per_subscriber"].values()
        assert entry["durable"] == "a"
        assert entry["depth"] == 0
        assert entry["backlog_events"] == 0
        await group.close()

    @async_test
    async def test_ack_truncates_through_the_group(self, tmp_path):
        group, spool = make_group(tmp_path)

        def dying(seq: int, value: int) -> None:
            raise UpcallError("down")

        group.subscribe(dying, durable="a", signature=SIG)
        for value in range(4):
            group.post(value)
        await eventually(lambda: group.parked_subscribers == 1)
        assert group.ack("a", 4) == 4
        assert spool.topic("events").subscription("a").backlog_events == 0
        # Idempotent: a stale ack never regresses the cursor.
        assert group.ack("a", 2) == 4
        await group.close()
