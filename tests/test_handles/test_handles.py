"""Tests for the handle mechanism (paper §3.5.1, Figure 3.3)."""

import pytest

from repro.errors import ForgedHandleError, StaleHandleError
from repro.handles import NIL_HANDLE, Handle, ObjectTable
from repro.handles.handle import handle_filter
from repro.xdr import XdrStream


class Thing:
    pass


class TestHandleWireForm:
    def test_roundtrip(self):
        handle = Handle(oid=17, tag=0xFEEDFACE)
        enc = XdrStream.encoder()
        handle.bundle(enc)
        dec = XdrStream.decoder(enc.getvalue())
        assert Handle.unbundle(dec) == handle

    def test_nil_handle(self):
        assert NIL_HANDLE.is_nil
        assert not Handle(oid=1, tag=0).is_nil

    def test_module_filter_bidirectional(self):
        handle = Handle(oid=3, tag=99)
        enc = XdrStream.encoder()
        handle_filter(enc, handle)
        dec = XdrStream.decoder(enc.getvalue())
        assert handle_filter(dec) == handle

    def test_repr(self):
        assert "nil" in repr(NIL_HANDLE)
        assert "oid=4" in repr(Handle(oid=4, tag=1))


class TestObjectTable:
    def test_issue_and_resolve(self):
        table = ObjectTable()
        obj = Thing()
        handle = table.issue(obj, "Thing")
        assert table.resolve(handle) is obj

    def test_figure_3_3_descriptor_contents(self):
        """The descriptor holds class id, version, tag, and the object."""
        table = ObjectTable()
        obj = Thing()
        handle = table.issue(obj, "window", version=3)
        descriptor = table.descriptor(handle)
        assert descriptor.class_name == "window"
        assert descriptor.version == 3
        assert descriptor.tag == handle.tag
        assert descriptor.obj is obj

    def test_none_issues_nil(self):
        assert ObjectTable().issue(None, "any") == NIL_HANDLE

    def test_nil_resolves_to_none(self):
        assert ObjectTable().resolve(NIL_HANDLE) is None

    def test_same_object_same_handle(self):
        table = ObjectTable()
        obj = Thing()
        assert table.issue(obj, "Thing") == table.issue(obj, "Thing")

    def test_different_objects_different_handles(self):
        table = ObjectTable()
        h1 = table.issue(Thing(), "Thing")
        h2 = table.issue(Thing(), "Thing")
        assert h1 != h2

    def test_forged_tag_rejected(self):
        table = ObjectTable()
        handle = table.issue(Thing(), "Thing")
        forged = Handle(oid=handle.oid, tag=handle.tag ^ 1)
        with pytest.raises(ForgedHandleError):
            table.resolve(forged)

    def test_never_issued_oid_is_stale(self):
        """§3.5.1: a pointer must be passed OUT before it can come back IN."""
        table = ObjectTable()
        with pytest.raises(StaleHandleError):
            table.resolve(Handle(oid=999, tag=1))

    def test_revoked_handle_is_stale(self):
        table = ObjectTable()
        obj = Thing()
        handle = table.issue(obj, "Thing")
        assert table.revoke(handle) is obj
        with pytest.raises(StaleHandleError):
            table.resolve(handle)

    def test_revoke_then_reissue_gets_fresh_handle(self):
        table = ObjectTable()
        obj = Thing()
        old = table.issue(obj, "Thing")
        table.revoke(old)
        new = table.issue(obj, "Thing")
        assert new != old
        assert table.resolve(new) is obj
        with pytest.raises(StaleHandleError):
            table.resolve(old)

    def test_oids_never_reused(self):
        table = ObjectTable()
        handles = set()
        for _ in range(50):
            handle = table.issue(Thing(), "Thing")
            assert handle.oid not in {h.oid for h in handles}
            handles.add(handle)
            table.revoke(handle)

    def test_handle_for(self):
        table = ObjectTable()
        obj = Thing()
        assert table.handle_for(obj) is None
        handle = table.issue(obj, "Thing")
        assert table.handle_for(obj) == handle
        table.revoke(handle)
        assert table.handle_for(obj) is None

    def test_len_and_iter(self):
        table = ObjectTable()
        objs = [Thing() for _ in range(3)]
        for obj in objs:
            table.issue(obj, "Thing")
        assert len(table) == 3
        assert {d.obj for d in table} == set(objs)

    def test_nil_descriptor_is_stale(self):
        with pytest.raises(StaleHandleError):
            ObjectTable().descriptor(NIL_HANDLE)

    def test_tags_are_unpredictable(self):
        table = ObjectTable()
        tags = {table.issue(Thing(), "Thing").tag for _ in range(20)}
        assert len(tags) == 20  # 64-bit random: collisions vanishingly unlikely
