"""Stateful property testing of the object table (paper §3.5.1).

A hypothesis state machine issues, resolves, and revokes handles in
arbitrary interleavings and checks the capability invariants after
every step:

- a live handle always resolves to exactly its object;
- a revoked or never-issued handle is always stale;
- a tag-tampered handle is always rejected;
- object identifiers are never reused.
"""

from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    consumes,
    invariant,
    rule,
)

import pytest

from repro.errors import ForgedHandleError, StaleHandleError
from repro.handles import Handle, ObjectTable


class Payload:
    """Distinct identity per issued object."""

    def __init__(self, marker: int):
        self.marker = marker


class ObjectTableMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.table = ObjectTable()
        self.live: dict[Handle, Payload] = {}
        self.dead: set[Handle] = set()
        self.seen_oids: set[int] = set()
        self.counter = 0

    handles = Bundle("handles")

    @rule(target=handles)
    def issue(self):
        self.counter += 1
        obj = Payload(self.counter)
        handle = self.table.issue(obj, "Payload")
        assert handle.oid not in self.seen_oids, "oid reuse"
        self.seen_oids.add(handle.oid)
        self.live[handle] = obj
        return handle

    @rule(handle=handles)
    def resolve(self, handle):
        if handle in self.live:
            assert self.table.resolve(handle) is self.live[handle]
        else:
            with pytest.raises(StaleHandleError):
                self.table.resolve(handle)

    @rule(handle=handles)
    def reissue_same_object(self, handle):
        if handle in self.live:
            again = self.table.issue(self.live[handle], "Payload")
            assert again == handle

    @rule(handle=consumes(handles))
    def revoke(self, handle):
        if handle in self.live:
            obj = self.table.revoke(handle)
            assert obj is self.live.pop(handle)
            self.dead.add(handle)
        else:
            with pytest.raises(StaleHandleError):
                self.table.revoke(handle)

    @rule(handle=handles, flip=st.integers(min_value=0, max_value=63))
    def forged_tag_rejected(self, handle, flip):
        forged = Handle(oid=handle.oid, tag=handle.tag ^ (1 << flip))
        if handle in self.live:
            with pytest.raises(ForgedHandleError):
                self.table.resolve(forged)
        else:
            with pytest.raises((StaleHandleError, ForgedHandleError)):
                self.table.resolve(forged)

    @invariant()
    def live_count_matches(self):
        assert len(self.table) == len(self.live)

    @invariant()
    def dead_stay_dead(self):
        for handle in list(self.dead)[:5]:
            with pytest.raises(StaleHandleError):
                self.table.resolve(handle)


TestObjectTableStateful = ObjectTableMachine.TestCase
