"""Unit tests for the client's upcall task (paper §4.4)."""

import asyncio
from typing import Callable

import pytest

from repro.bundlers import BundlerRegistry
from repro.bundlers.auto import structural_resolver
from repro.client.upcall_task import UpcallService
from repro.core import CallbackTable, UpcallSignature
from repro.ipc import MessageChannel
from repro.ipc.memory import MemoryConnection
from repro.wire import (
    ReplyMessage,
    UpcallExceptionMessage,
    UpcallMessage,
    UpcallReplyMessage,
)
from tests.support import async_test, eventually


def build(max_active=1):
    registry = BundlerRegistry()
    registry.add_resolver(structural_resolver)
    server_side, client_side = MemoryConnection.pipe()
    server_channel = MessageChannel(server_side)
    client_channel = MessageChannel(client_side)
    callbacks = CallbackTable()
    signature = UpcallSignature.from_annotation(Callable[[int], int], registry)
    service = UpcallService(client_channel, callbacks, max_active=max_active)
    return server_channel, callbacks, signature, service


class TestSequentialService:
    @async_test
    async def test_handles_and_replies(self):
        server_channel, callbacks, signature, service = build()
        callback_id = callbacks.register(lambda x: x + 1, signature)
        task = asyncio.get_running_loop().create_task(service.run())

        await server_channel.send(
            UpcallMessage(serial=1, ruc_id=callback_id,
                          args=signature.bundle_args((41,)))
        )
        reply = await server_channel.recv()
        assert isinstance(reply, UpcallReplyMessage)
        assert signature.unbundle_result(reply.results) == 42
        assert service.upcalls_handled == 1
        await service.close()
        await task

    @async_test
    async def test_handler_exception_becomes_upcall_exception(self):
        server_channel, callbacks, signature, service = build()

        def bad(x):
            raise LookupError("missing window")

        callback_id = callbacks.register(bad, signature)
        task = asyncio.get_running_loop().create_task(service.run())
        await server_channel.send(
            UpcallMessage(serial=9, ruc_id=callback_id,
                          args=signature.bundle_args((1,)))
        )
        reply = await server_channel.recv()
        assert isinstance(reply, UpcallExceptionMessage)
        assert reply.serial == 9
        assert reply.remote_type == "LookupError"
        assert service.upcalls_failed == 1
        await service.close()
        await task

    @async_test
    async def test_unknown_callback_id(self):
        server_channel, callbacks, signature, service = build()
        task = asyncio.get_running_loop().create_task(service.run())
        await server_channel.send(UpcallMessage(serial=2, ruc_id=404, args=b""))
        reply = await server_channel.recv()
        assert isinstance(reply, UpcallExceptionMessage)
        assert "404" in reply.message
        await service.close()
        await task

    @async_test
    async def test_wrong_message_type_stops_service(self):
        server_channel, callbacks, signature, service = build()
        task = asyncio.get_running_loop().create_task(service.run())
        await server_channel.send(ReplyMessage(serial=1, results=b""))
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            await task

    @async_test
    async def test_close_ends_run(self):
        server_channel, callbacks, signature, service = build()
        task = asyncio.get_running_loop().create_task(service.run())
        await asyncio.sleep(0.005)
        await service.close()
        await asyncio.wait_for(task, timeout=5)  # clean exit

    @async_test
    async def test_no_reply_requested(self):
        server_channel, callbacks, signature, service = build()
        seen = []
        callback_id = callbacks.register(lambda x: seen.append(x) or 0, signature)
        task = asyncio.get_running_loop().create_task(service.run())
        await server_channel.send(
            UpcallMessage(serial=3, ruc_id=callback_id,
                          args=signature.bundle_args((5,)), expects_reply=False)
        )
        await eventually(lambda: seen == [5])
        assert service.upcalls_handled == 1
        await service.close()
        await task


class TestConcurrentService:
    @async_test
    async def test_concurrency_tracked(self):
        server_channel, callbacks, signature, service = build(max_active=4)

        async def slow(x):
            await asyncio.sleep(0.01)
            return x

        callback_id = callbacks.register(slow, signature)
        task = asyncio.get_running_loop().create_task(service.run())
        for serial in range(1, 5):
            await server_channel.send(
                UpcallMessage(serial=serial, ruc_id=callback_id,
                              args=signature.bundle_args((serial,)))
            )
        replies = [await server_channel.recv() for _ in range(4)]
        assert {r.serial for r in replies} == {1, 2, 3, 4}
        assert 2 <= service.max_concurrency_seen <= 4
        await service.close()
        await task
