"""Tests for URL → transport resolution."""

import pytest

from repro.errors import TransportError
from repro.ipc import LatencyTransport, MemoryTransport, TcpTransport, UnixTransport
from repro.ipc.registry import transport_for_url
from repro.ipc.tcp import parse_host_port


class TestTransportForUrl:
    def test_memory(self):
        transport, address = transport_for_url("memory://name")
        assert isinstance(transport, MemoryTransport)
        assert address == "memory://name"

    def test_memory_is_process_wide_singleton(self):
        t1, _ = transport_for_url("memory://a")
        t2, _ = transport_for_url("memory://b")
        assert t1 is t2

    def test_unix(self):
        transport, address = transport_for_url("unix:///tmp/x.sock")
        assert isinstance(transport, UnixTransport)
        assert address == "unix:///tmp/x.sock"

    def test_tcp(self):
        transport, address = transport_for_url("tcp://127.0.0.1:80")
        assert isinstance(transport, TcpTransport)

    def test_wan_with_delay(self):
        transport, address = transport_for_url("wan://127.0.0.1:80?delay=0.25")
        assert isinstance(transport, LatencyTransport)
        assert transport._delay == 0.25
        assert address == "tcp://127.0.0.1:80"

    def test_wan_default_delay(self):
        from repro.ipc.latency import DEFAULT_ONE_WAY_DELAY

        transport, _ = transport_for_url("wan://127.0.0.1:80")
        assert transport._delay == DEFAULT_ONE_WAY_DELAY

    def test_unknown_scheme(self):
        with pytest.raises(TransportError):
            transport_for_url("gopher://hole")

    def test_missing_scheme(self):
        with pytest.raises(TransportError):
            transport_for_url("/just/a/path")


class TestHostPortParsing:
    def test_plain(self):
        assert parse_host_port("tcp://example.org:4047") == ("example.org", 4047)

    def test_ephemeral(self):
        assert parse_host_port("tcp://0.0.0.0:0") == ("0.0.0.0", 0)

    def test_no_port(self):
        with pytest.raises(TransportError):
            parse_host_port("tcp://hostonly")

    def test_bad_port(self):
        with pytest.raises(TransportError):
            parse_host_port("tcp://h:eighty")

    def test_empty_host(self):
        with pytest.raises(TransportError):
            parse_host_port("tcp://:80")
