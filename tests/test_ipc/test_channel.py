"""Tests for MessageChannel: typed messages over raw connections."""

import pytest

from repro.errors import ConnectionClosedError
from repro.ipc import MessageChannel
from repro.ipc.memory import MemoryConnection
from repro.wire import CallMessage, ChannelRole, HelloMessage, ReplyMessage
from tests.support import async_test


@async_test
async def test_message_roundtrip_over_memory_pipe():
    a, b = MemoryConnection.pipe()
    chan_a, chan_b = MessageChannel(a), MessageChannel(b)
    call = CallMessage(serial=1, oid=5, tag=7, method="mouse",
                       args=b"\x00\x00\x00\x09", expects_reply=True)
    await chan_a.send(call)
    assert await chan_b.recv() == call
    reply = ReplyMessage(serial=1, results=b"")
    await chan_b.send(reply)
    assert await chan_a.recv() == reply
    await chan_a.close()
    await chan_b.close()


@async_test
async def test_hello_handshake_sequence():
    a, b = MemoryConnection.pipe()
    chan_a, chan_b = MessageChannel(a), MessageChannel(b)
    await chan_a.send(HelloMessage(role=ChannelRole.RPC))
    hello = await chan_b.recv()
    assert isinstance(hello, HelloMessage)
    assert hello.role is ChannelRole.RPC
    await chan_a.close()
    await chan_b.close()


@async_test
async def test_recv_on_closed_channel_raises():
    a, b = MemoryConnection.pipe()
    chan_a, chan_b = MessageChannel(a), MessageChannel(b)
    await chan_a.close()
    with pytest.raises(ConnectionClosedError):
        await chan_b.recv()


@async_test
async def test_channel_context_manager():
    a, b = MemoryConnection.pipe()
    async with MessageChannel(a) as chan:
        assert not chan.closed
    assert chan.closed
    await b.close()


@async_test
async def test_peer_passthrough():
    a, b = MemoryConnection.pipe(peer_a="memory:x", peer_b="memory:y")
    assert MessageChannel(a).peer == "memory:y"
    await a.close()
    await b.close()
