"""Event-loop policy hook: uvloop as a strictly optional extra.

The repository must work — and these tests must pass — with or
without uvloop installed.  The install test skips itself when the
extra is absent; the availability/fallback tests run everywhere.
"""

import asyncio

import pytest

from repro.ipc import install_uvloop, loop_mode, uvloop_available


def _uvloop_importable() -> bool:
    try:
        import uvloop  # noqa: F401
    except ImportError:
        return False
    return True


def test_availability_matches_import():
    assert uvloop_available() == _uvloop_importable()


def test_loop_mode_names_a_known_implementation():
    assert loop_mode() in ("asyncio", "uvloop")


@pytest.mark.skipif(_uvloop_importable(), reason="uvloop is installed")
def test_missing_uvloop_fails_softly():
    assert install_uvloop() is False
    assert loop_mode() == "asyncio"


@pytest.mark.skipif(_uvloop_importable(), reason="uvloop is installed")
def test_missing_uvloop_strict_raises_with_hint():
    with pytest.raises(RuntimeError, match="repro\\[uvloop\\]"):
        install_uvloop(strict=True)


@pytest.mark.skipif(not _uvloop_importable(), reason="uvloop not installed")
def test_install_uvloop_switches_policy():
    original = asyncio.get_event_loop_policy()
    try:
        assert install_uvloop(strict=True) is True
        assert loop_mode() == "uvloop"

        async def probe():
            return type(asyncio.get_running_loop()).__module__

        assert asyncio.run(probe()).split(".")[0] == "uvloop"
    finally:
        asyncio.set_event_loop_policy(original)
