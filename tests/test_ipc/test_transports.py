"""Transport-ladder tests: memory, unix, tcp, wan (paper §4.4, §5).

Each transport must provide reliable, in-order frame delivery — the
property the paper's batching protocol depends on ("Our underlying
communication medium guarantees reliable, in-order delivery of
messages, so batched calls will arrive in the correct order", §3.4).
"""

import asyncio

import pytest

from repro.errors import ConnectionClosedError, TransportError
from repro.ipc import dial, serve
from tests.support import async_test

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def echo_urls(tmp_path):
    return [
        "memory://echo-test",
        f"unix://{tmp_path}/echo.sock",
        "tcp://127.0.0.1:0",
    ]


async def start_echo(url):
    async def handler(conn):
        while True:
            frame = await conn.recv()
            await conn.send(frame)

    listener = await serve(url, handler)
    return listener


class TestEachTransport:
    @pytest.mark.parametrize("scheme", ["memory", "unix", "tcp", "wan"])
    @async_test
    async def test_echo_roundtrip(self, scheme, tmp_path):
        url = {
            "memory": "memory://echo-rt",
            "unix": f"unix://{tmp_path}/rt.sock",
            "tcp": "tcp://127.0.0.1:0",
            "wan": "wan://127.0.0.1:0?delay=0.001",
        }[scheme]
        listener = await start_echo(url)
        dial_url = listener.address
        if scheme == "wan":
            dial_url = "wan://" + dial_url.removeprefix("tcp://") + "?delay=0.001"
        conn = await dial(dial_url)
        try:
            await conn.send(b"hello clam")
            assert await conn.recv() == b"hello clam"
        finally:
            await conn.close()
            await listener.close()

    @pytest.mark.parametrize("scheme", ["memory", "unix", "tcp"])
    @async_test
    async def test_ordering_many_frames(self, scheme, tmp_path):
        url = {
            "memory": "memory://echo-order",
            "unix": f"unix://{tmp_path}/order.sock",
            "tcp": "tcp://127.0.0.1:0",
        }[scheme]
        listener = await start_echo(url)
        conn = await dial(listener.address)
        try:
            frames = [f"frame-{i}".encode() for i in range(200)]
            for frame in frames:
                await conn.send(frame)
            received = [await conn.recv() for _ in frames]
            assert received == frames
        finally:
            await conn.close()
            await listener.close()

    @pytest.mark.parametrize("scheme", ["memory", "unix", "tcp"])
    @async_test
    async def test_large_frame(self, scheme, tmp_path):
        url = {
            "memory": "memory://echo-large",
            "unix": f"unix://{tmp_path}/large.sock",
            "tcp": "tcp://127.0.0.1:0",
        }[scheme]
        listener = await start_echo(url)
        conn = await dial(listener.address)
        try:
            payload = bytes(range(256)) * 4096  # 1 MiB
            await conn.send(payload)
            assert await conn.recv() == payload
        finally:
            await conn.close()
            await listener.close()

    @pytest.mark.parametrize("scheme", ["memory", "unix", "tcp"])
    @async_test
    async def test_empty_frame(self, scheme, tmp_path):
        url = {
            "memory": "memory://echo-empty",
            "unix": f"unix://{tmp_path}/empty.sock",
            "tcp": "tcp://127.0.0.1:0",
        }[scheme]
        listener = await start_echo(url)
        conn = await dial(listener.address)
        try:
            await conn.send(b"")
            assert await conn.recv() == b""
        finally:
            await conn.close()
            await listener.close()


class TestCloseSemantics:
    @async_test
    async def test_recv_after_peer_close_raises(self):
        server_conns = []

        async def handler(conn):
            server_conns.append(conn)
            await conn.close()

        listener = await serve("memory://close-test", handler)
        conn = await dial("memory://close-test")
        with pytest.raises(ConnectionClosedError):
            await conn.recv()
        await listener.close()

    @async_test
    async def test_send_after_close_raises(self):
        listener = await start_echo("memory://send-closed")
        conn = await dial("memory://send-closed")
        await conn.close()
        with pytest.raises(ConnectionClosedError):
            await conn.send(b"x")
        await listener.close()

    @async_test
    async def test_self_close_wakes_own_blocked_reader(self):
        """Closing a connection must unblock a recv() pending on it —
        like EOF on a self-closed socket (regression: memory pipes
        used to wake only the peer)."""
        from repro.ipc.memory import MemoryConnection

        a, b = MemoryConnection.pipe()
        reader = asyncio.get_running_loop().create_task(a.recv())
        await asyncio.sleep(0.005)
        await a.close()
        with pytest.raises(ConnectionClosedError):
            await asyncio.wait_for(reader, timeout=5)
        await b.close()

    @async_test
    async def test_close_is_idempotent(self):
        listener = await start_echo("memory://idem")
        conn = await dial("memory://idem")
        await conn.close()
        await conn.close()
        assert conn.closed
        await listener.close()

    @async_test
    async def test_tcp_peer_disappearing(self):
        async def handler(conn):
            await conn.recv()
            await conn.close()

        listener = await serve("tcp://127.0.0.1:0", handler)
        conn = await dial(listener.address)
        await conn.send(b"bye")
        with pytest.raises(ConnectionClosedError):
            # Possibly several recvs needed while FIN propagates.
            for _ in range(3):
                await conn.recv()
        await listener.close()


class TestAddressing:
    @async_test
    async def test_unknown_scheme(self):
        with pytest.raises(TransportError):
            await dial("carrier-pigeon://nest")

    @async_test
    async def test_no_scheme(self):
        with pytest.raises(TransportError):
            await dial("just-a-name")

    @async_test
    async def test_memory_nothing_listening(self):
        with pytest.raises(TransportError):
            await dial("memory://ghost")

    @async_test
    async def test_memory_duplicate_listen(self):
        listener = await serve("memory://dup", lambda c: asyncio.sleep(0))
        with pytest.raises(TransportError):
            await serve("memory://dup", lambda c: asyncio.sleep(0))
        await listener.close()

    @async_test
    async def test_memory_listen_again_after_close(self):
        listener = await serve("memory://reuse", lambda c: asyncio.sleep(0))
        await listener.close()
        listener2 = await serve("memory://reuse", lambda c: asyncio.sleep(0))
        await listener2.close()

    @async_test
    async def test_tcp_ephemeral_port_reported(self):
        listener = await start_echo("tcp://127.0.0.1:0")
        assert not listener.address.endswith(":0")
        await listener.close()

    @async_test
    async def test_unix_relative_path_rejected(self):
        with pytest.raises(TransportError):
            await dial("unix://relative/path.sock")

    @async_test
    async def test_bad_tcp_port(self):
        with pytest.raises(TransportError):
            await dial("tcp://127.0.0.1:notaport")


class TestLatencyInjection:
    @async_test
    async def test_wan_adds_round_trip_delay(self):
        delay = 0.02
        listener = await start_echo("tcp://127.0.0.1:0")
        wan_url = "wan://" + listener.address.removeprefix("tcp://") + f"?delay={delay}"
        conn = await dial(wan_url)
        plain = await dial(listener.address)
        try:
            loop = asyncio.get_running_loop()

            start = loop.time()
            await plain.send(b"x")
            await plain.recv()
            plain_rtt = loop.time() - start

            start = loop.time()
            await conn.send(b"x")
            await conn.recv()
            wan_rtt = loop.time() - start

            # Dialer-side wrapper delays the outbound leg only (the
            # listener side is plain TCP here), so expect >= one delay.
            assert wan_rtt >= plain_rtt + delay * 0.8
        finally:
            await conn.close()
            await plain.close()
            await listener.close()

    @async_test
    async def test_latency_preserves_order(self):
        from repro.ipc import LatencyConnection
        from repro.ipc.memory import MemoryConnection

        a, b = MemoryConnection.pipe()
        slow = LatencyConnection(a, one_way_delay=0.001)
        try:
            for i in range(50):
                await slow.send(f"m{i}".encode())
            received = [await b.recv() for _ in range(50)]
            assert received == [f"m{i}".encode() for i in range(50)]
        finally:
            await slow.close()
            await b.close()

    @async_test
    async def test_zero_delay_allowed(self):
        from repro.ipc import LatencyConnection
        from repro.ipc.memory import MemoryConnection

        a, b = MemoryConnection.pipe()
        instant = LatencyConnection(a, one_way_delay=0)
        try:
            await instant.send(b"now")
            assert await b.recv() == b"now"
        finally:
            await instant.close()
            await b.close()

    @async_test
    async def test_negative_delay_rejected(self):
        from repro.ipc import LatencyConnection
        from repro.ipc.memory import MemoryConnection

        a, b = MemoryConnection.pipe()
        with pytest.raises(ValueError):
            LatencyConnection(a, one_way_delay=-1)
        await a.close()
        await b.close()


class TestConcurrentSenders:
    @async_test
    async def test_interleaved_senders_do_not_corrupt_frames(self):
        """Concurrent tasks share one connection without frame tearing."""
        listener = await start_echo("tcp://127.0.0.1:0")
        conn = await dial(listener.address)
        try:
            payloads = [bytes([i]) * (1000 + i) for i in range(20)]

            async def send_one(p):
                await conn.send(p)

            await asyncio.gather(*(send_one(p) for p in payloads))
            received = sorted([await conn.recv() for _ in payloads])
            assert received == sorted(payloads)
        finally:
            await conn.close()
            await listener.close()
