"""Tracing through the live runtimes: server and client boundaries."""

import itertools
from typing import Callable

import pytest

from repro import ClamClient, ClamServer, RemoteError, RemoteInterface
from repro.trace import (
    KIND_CALL,
    KIND_CLIENT_CALL,
    KIND_FAULT,
    KIND_FLUSH,
    KIND_LOAD,
    KIND_UPCALL,
    TimelineRecorder,
)
from tests.support import async_test

_ids = itertools.count(1)

SOURCE = '''
from typing import Callable

from repro.stubs import RemoteInterface


class Traced(RemoteInterface):
    def __init__(self):
        self.proc = None
        self.hits = 0

    def tick(self) -> None:
        self.hits += 1

    def count(self) -> int:
        return self.hits

    def register(self, proc: Callable[[int], int]) -> bool:
        self.proc = proc
        return True

    async def call_back(self, value: int) -> int:
        return await self.proc(value)

    def crash(self) -> int:
        raise RuntimeError("traced crash")
'''


class Traced(RemoteInterface):
    def tick(self) -> None: ...
    def count(self) -> int: ...
    def register(self, proc: Callable[[int], int]) -> bool: ...
    def call_back(self, value: int) -> int: ...
    def crash(self) -> int: ...


async def start():
    server = ClamServer()
    recorder = TimelineRecorder()
    server.tracer.subscribe(recorder)
    address = await server.start(f"memory://trace-{next(_ids)}")
    client = await ClamClient.connect(address)
    client_recorder = TimelineRecorder()
    client.tracer.subscribe(client_recorder)
    await client.load_module("traced", SOURCE)
    traced = await client.create(Traced)
    return server, client, traced, recorder, client_recorder


class TestServerSideTracing:
    @async_test
    async def test_calls_traced_with_class_and_method(self):
        server, client, traced, recorder, _ = await start()
        await traced.count()
        names = {e.name for e in recorder.of_kind(KIND_CALL)}
        assert "Traced.count" in names
        assert "clam.server.load_module" in names
        await client.close()
        await server.shutdown()

    @async_test
    async def test_load_event(self):
        server, client, traced, recorder, _ = await start()
        loads = recorder.of_kind(KIND_LOAD)
        assert len(loads) == 1
        assert loads[0].name == "traced"
        assert "Traced" in loads[0].detail
        await client.close()
        await server.shutdown()

    @async_test
    async def test_upcall_span(self):
        server, client, traced, recorder, _ = await start()
        await traced.register(lambda v: v * 2)
        assert await traced.call_back(4) == 8
        upcalls = recorder.of_kind(KIND_UPCALL)
        assert [e.phase for e in upcalls] == ["start", "end"]
        assert upcalls[1].duration_us > 0
        await client.close()
        await server.shutdown()

    @async_test
    async def test_error_phase_and_fault_point(self):
        server, client, traced, recorder, _ = await start()
        with pytest.raises(RemoteError):
            await traced.crash()
        errors = [e for e in recorder.of_kind(KIND_CALL) if e.phase == "error"]
        assert any("Traced.crash" == e.name for e in errors)
        faults = recorder.of_kind(KIND_FAULT)
        assert len(faults) == 1
        assert "traced crash" in faults[0].detail
        await client.close()
        await server.shutdown()

    @async_test
    async def test_untraced_server_pays_nothing(self):
        server = ClamServer()  # nobody subscribed
        address = await server.start(f"memory://trace-{next(_ids)}")
        client = await ClamClient.connect(address)
        await client.ping()
        assert server.tracer.counters == {}
        await client.close()
        await server.shutdown()


class TestClientSideTracing:
    @async_test
    async def test_sync_call_and_flush_events(self):
        server, client, traced, _, client_recorder = await start()
        for _ in range(5):
            await traced.tick()       # batched posts
        await traced.count()          # sync → flush then call
        calls = client_recorder.of_kind(KIND_CLIENT_CALL)
        assert any(e.name == "count" for e in calls)
        flushes = client_recorder.of_kind(KIND_FLUSH)
        assert any(e.detail == "5" for e in flushes)
        await client.close()
        await server.shutdown()

    @async_test
    async def test_summary_durations(self):
        server, client, traced, recorder, client_recorder = await start()
        for _ in range(3):
            await traced.count()
        summary = client_recorder.summary()
        assert summary[KIND_CLIENT_CALL]["count"] >= 3
        assert summary[KIND_CLIENT_CALL]["mean_us"] > 0
        await client.close()
        await server.shutdown()
