"""Unit tests for the tracing facility."""

import pytest

from repro.obs.context import SpanContext, current_context, using_context
from repro.trace import (
    KIND_CALL,
    TimelineRecorder,
    TraceEvent,
    Tracer,
)


class TestTracer:
    def test_inactive_without_subscribers(self):
        tracer = Tracer()
        assert not tracer.active
        unsubscribe = tracer.subscribe(lambda e: None)
        assert tracer.active
        unsubscribe()
        assert not tracer.active

    def test_point_event(self):
        tracer = Tracer()
        events = []
        tracer.subscribe(events.append)
        tracer.point("load", "mymodule", detail="ClassA,ClassB")
        assert len(events) == 1
        assert events[0].phase == "point"
        assert events[0].detail == "ClassA,ClassB"

    def test_span_emits_start_and_end_with_duration(self):
        tracer = Tracer()
        events = []
        tracer.subscribe(events.append)
        with tracer.span(KIND_CALL, "Window.draw"):
            pass
        assert [e.phase for e in events] == ["start", "end"]
        assert events[0].span_id == events[1].span_id != 0
        assert events[1].duration_us >= 0

    def test_span_error_phase(self):
        tracer = Tracer()
        events = []
        tracer.subscribe(events.append)
        with pytest.raises(ValueError):
            with tracer.span(KIND_CALL, "Window.draw"):
                raise ValueError("bad rect")
        assert [e.phase for e in events] == ["start", "error"]
        assert "bad rect" in events[1].detail

    def test_counters_always_counted_on_emit(self):
        tracer = Tracer()
        tracer.subscribe(lambda e: None)
        tracer.point("fault", "X.m")
        tracer.point("fault", "Y.m")
        assert tracer.counters[("fault", "point")] == 2

    def test_unsubscribe_twice_harmless(self):
        tracer = Tracer()
        unsubscribe = tracer.subscribe(lambda e: None)
        unsubscribe()
        unsubscribe()

    def test_multiple_subscribers(self):
        tracer = Tracer()
        a, b = [], []
        tracer.subscribe(a.append)
        tracer.subscribe(b.append)
        tracer.point("x", "y")
        assert len(a) == len(b) == 1

    def test_inactive_span_yields_none_and_only_counts(self):
        tracer = Tracer()
        with tracer.span(KIND_CALL, "Window.draw") as ctx:
            assert ctx is None
        assert tracer.counters[(KIND_CALL, "start")] == 1
        assert tracer.counters[(KIND_CALL, "end")] == 1
        assert tracer.counters[(KIND_CALL, "error")] == 0

    def test_inactive_span_counts_errors(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span(KIND_CALL, "Window.draw"):
                raise ValueError("nope")
        assert tracer.counters[(KIND_CALL, "error")] == 1
        assert tracer.counters[(KIND_CALL, "end")] == 0


class TestSpanContextLinkage:
    def test_nested_spans_share_trace_and_link_parent(self):
        tracer = Tracer()
        events = []
        tracer.subscribe(events.append)
        with tracer.span(KIND_CALL, "outer") as outer:
            with tracer.span(KIND_CALL, "inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.span_id != outer.span_id
        inner_start = [e for e in events if e.name == "inner"][0]
        assert inner_start.parent_id == outer.span_id

    def test_sibling_roots_get_distinct_traces(self):
        tracer = Tracer()
        tracer.subscribe(lambda e: None)
        with tracer.span(KIND_CALL, "a") as a:
            pass
        with tracer.span(KIND_CALL, "b") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_explicit_remote_parent_joins_its_trace(self):
        tracer = Tracer()
        events = []
        tracer.subscribe(events.append)
        remote = SpanContext(trace_id="cafe" * 4, span_id=77)
        with tracer.span(KIND_CALL, "handler", parent=remote) as ctx:
            pass
        assert ctx.trace_id == remote.trace_id
        assert events[0].parent_id == 77

    def test_span_restores_previous_context(self):
        tracer = Tracer()
        tracer.subscribe(lambda e: None)
        assert current_context() is None
        with tracer.span(KIND_CALL, "x") as ctx:
            assert current_context() == ctx
        assert current_context() is None

    def test_point_attributes_to_current_span(self):
        tracer = Tracer()
        events = []
        tracer.subscribe(events.append)
        with tracer.span(KIND_CALL, "outer") as ctx:
            tracer.point("flush", "batch")
        point = [e for e in events if e.phase == "point"][0]
        assert point.trace_id == ctx.trace_id
        assert point.parent_id == ctx.span_id

    def test_using_context_propagates_without_tracing(self):
        remote = SpanContext(trace_id="beef" * 4, span_id=9)
        with using_context(remote):
            assert current_context() == remote
        assert current_context() is None


class TestTimelineRecorder:
    def test_records_and_summarizes(self):
        tracer = Tracer()
        recorder = TimelineRecorder()
        tracer.subscribe(recorder)
        with tracer.span("call", "a"):
            pass
        with tracer.span("call", "b"):
            pass
        tracer.point("flush", "batch", detail="5")
        summary = recorder.summary()
        assert summary["call"]["count"] == 2
        assert summary["call"]["mean_us"] >= 0
        # Points are not completed spans: they count separately.
        assert summary["flush"]["count"] == 0
        assert summary["flush"]["points"] == 1

    def test_summary_separates_errors_from_mean(self):
        tracer = Tracer()
        recorder = TimelineRecorder()
        tracer.subscribe(recorder)
        with tracer.span("call", "ok"):
            pass
        with pytest.raises(RuntimeError):
            with tracer.span("call", "boom"):
                raise RuntimeError("x")
        summary = recorder.summary()
        assert summary["call"]["count"] == 1
        assert summary["call"]["errors"] == 1
        # mean_us reflects only the successful span.
        ok_end = [e for e in recorder.events if e.phase == "end"][0]
        assert summary["call"]["mean_us"] == pytest.approx(ok_end.duration_us)

    def test_of_kind(self):
        recorder = TimelineRecorder()
        recorder(TraceEvent(kind="call", name="x", phase="point"))
        recorder(TraceEvent(kind="upcall", name="y", phase="point"))
        assert len(recorder.of_kind("call")) == 1

    def test_mean_duration_empty(self):
        assert TimelineRecorder().mean_duration_us("call") == 0.0
