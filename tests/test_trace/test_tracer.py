"""Unit tests for the tracing facility."""

import pytest

from repro.trace import (
    KIND_CALL,
    TimelineRecorder,
    TraceEvent,
    Tracer,
)


class TestTracer:
    def test_inactive_without_subscribers(self):
        tracer = Tracer()
        assert not tracer.active
        unsubscribe = tracer.subscribe(lambda e: None)
        assert tracer.active
        unsubscribe()
        assert not tracer.active

    def test_point_event(self):
        tracer = Tracer()
        events = []
        tracer.subscribe(events.append)
        tracer.point("load", "mymodule", detail="ClassA,ClassB")
        assert len(events) == 1
        assert events[0].phase == "point"
        assert events[0].detail == "ClassA,ClassB"

    def test_span_emits_start_and_end_with_duration(self):
        tracer = Tracer()
        events = []
        tracer.subscribe(events.append)
        with tracer.span(KIND_CALL, "Window.draw"):
            pass
        assert [e.phase for e in events] == ["start", "end"]
        assert events[0].span_id == events[1].span_id != 0
        assert events[1].duration_us >= 0

    def test_span_error_phase(self):
        tracer = Tracer()
        events = []
        tracer.subscribe(events.append)
        with pytest.raises(ValueError):
            with tracer.span(KIND_CALL, "Window.draw"):
                raise ValueError("bad rect")
        assert [e.phase for e in events] == ["start", "error"]
        assert "bad rect" in events[1].detail

    def test_counters_always_counted_on_emit(self):
        tracer = Tracer()
        tracer.subscribe(lambda e: None)
        tracer.point("fault", "X.m")
        tracer.point("fault", "Y.m")
        assert tracer.counters[("fault", "point")] == 2

    def test_unsubscribe_twice_harmless(self):
        tracer = Tracer()
        unsubscribe = tracer.subscribe(lambda e: None)
        unsubscribe()
        unsubscribe()

    def test_multiple_subscribers(self):
        tracer = Tracer()
        a, b = [], []
        tracer.subscribe(a.append)
        tracer.subscribe(b.append)
        tracer.point("x", "y")
        assert len(a) == len(b) == 1


class TestTimelineRecorder:
    def test_records_and_summarizes(self):
        tracer = Tracer()
        recorder = TimelineRecorder()
        tracer.subscribe(recorder)
        with tracer.span("call", "a"):
            pass
        with tracer.span("call", "b"):
            pass
        tracer.point("flush", "batch", detail="5")
        summary = recorder.summary()
        assert summary["call"]["count"] == 2
        assert summary["call"]["mean_us"] >= 0
        assert summary["flush"]["count"] == 1

    def test_of_kind(self):
        recorder = TimelineRecorder()
        recorder(TraceEvent(kind="call", name="x", phase="point"))
        recorder(TraceEvent(kind="upcall", name="y", phase="point"))
        assert len(recorder.of_kind("call")) == 1

    def test_mean_duration_empty(self):
        assert TimelineRecorder().mean_duration_us("call") == 0.0
