"""The bench-guard comparison logic (CI's perf regression gate)."""

from repro.bench.guard import GUARDED_METRICS, check


def _record(p50_1=100.0, p50_50=500.0, cached=3.0, watch=900.0, durable=120.0):
    return {
        "fanout": {
            "fanout_subs_1": {"p50_delivery_us": p50_1},
            "fanout_subs_50": {"p50_delivery_us": p50_50},
        },
        "directory": {
            "resolve_cached": {"p50_us": cached},
            "watch_propagate": {"p50_us": watch},
        },
        "durable": {
            "durable_steady_subs_1": {"p50_delivery_us": durable},
        },
    }


class TestCheck:
    def test_within_threshold_passes(self):
        assert check(_record(), _record(p50_1=180.0, p50_50=900.0)) == []

    def test_regression_past_threshold_fails(self):
        failures = check(_record(), _record(p50_1=250.0))
        assert len(failures) == 1
        assert "fanout_subs_1.p50_delivery_us" in failures[0]
        assert "2.5x" in failures[0]

    def test_threshold_is_configurable(self):
        current = _record(p50_1=150.0)
        assert check(_record(), current, threshold=1.2) != []
        assert check(_record(), current, threshold=2.0) == []

    def test_improvement_always_passes(self):
        assert check(_record(), _record(p50_1=5.0, p50_50=20.0)) == []

    def test_watch_degrading_to_ttl_fails(self):
        # Watch plane silently falling back to polling: propagation
        # collapses from ~1ms to the resolve TTL (~500ms).
        failures = check(_record(), _record(watch=500_000.0))
        assert len(failures) == 1
        assert "watch_propagate.p50_us" in failures[0]

    def test_metric_missing_from_baseline_is_skipped(self):
        # An old baseline predating a benchmark must not block CI.
        assert check({}, _record()) == []

    def test_metric_missing_from_current_run_fails(self):
        failures = check(_record(), {})
        assert len(failures) == len(GUARDED_METRICS)
        assert all("missing from current run" in f for f in failures)
