"""Smoke tests for the benchmark harness itself.

Every Figure 5.1 scenario must prepare, run, and clean up; the table
formatters must render; the CLI must parse.  These keep the harness
from rotting between benchmark runs.
"""

import pytest

from repro.bench import FIG51_ROWS, prepare_scenario
from repro.bench.fig51 import Measurement, format_table
from repro.bench.scenarios import row
from tests.support import async_test


class TestScenarios:
    @pytest.mark.parametrize("key", [r.key for r in FIG51_ROWS])
    @async_test
    async def test_prepare_run_cleanup(self, key, tmp_path):
        run_n, cleanup = await prepare_scenario(key, str(tmp_path))
        try:
            await run_n(3)
        finally:
            await cleanup()

    @async_test
    async def test_unknown_scenario(self, tmp_path):
        with pytest.raises(KeyError):
            await prepare_scenario("nonsense", str(tmp_path))

    def test_rows_have_paper_numbers(self):
        assert len(FIG51_ROWS) == 9
        for entry in FIG51_ROWS:
            assert entry.paper_us > 0
            assert entry.batch > 0
        # The paper's exact figures.
        assert row("static").paper_us == 19
        assert row("upcall_wan").paper_us == 12800

    def test_row_lookup_unknown(self):
        with pytest.raises(KeyError):
            row("nope")


class TestFormatting:
    def test_fig51_table_renders(self):
        measurements = [
            Measurement(row=r, per_call_us=r.paper_us / 100) for r in FIG51_ROWS
        ]
        text = format_table(measurements)
        assert "Figure 5.1" in text
        assert "Staticly linked procedure call" in text
        assert "shape checks" in text

    def test_batching_table_renders(self):
        from repro.bench.batching import BatchingResult, format_table as fmt

        results = [
            BatchingResult(max_batch=1, calls=100, per_call_us=50.0, frames_sent=100),
            BatchingResult(max_batch=64, calls=100, per_call_us=30.0, frames_sent=2),
        ]
        text = fmt(results)
        assert "batching" in text
        assert "speedup" in text

    def test_bundlers_table_renders(self):
        from repro.bench.bundlers_bench import measure_bundlers, format_table as fmt

        results = measure_bundlers(tree_sizes=(7,), iterations=2)
        text = fmt(results)
        assert "closure" in text

    def test_tree_builder_threads(self):
        from repro.bench.bundlers_bench import build_tree

        root = build_tree(7)
        seen = []
        node = root
        while node.left is not None:
            node = node.left
        while node is not None:
            seen.append(node.key)
            node = node.thread
        assert seen == list(range(7))


class TestCli:
    def test_suite_choices(self):
        from repro.bench.__main__ import SUITES

        assert "fig51" in SUITES and "upcalls" in SUITES

    def test_bad_suite_rejected(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["warp-drive"])
