"""Tests for upcall registration and delivery (paper §4.1)."""

import pytest

from repro.errors import RegistrationError
from repro.core import Registration, UnhandledPolicy, UpcallPort
from tests.support import async_test


class TestRegistration:
    def test_register_returns_receipt(self):
        port = UpcallPort("mouse")
        registration = port.register(lambda e: None)
        assert isinstance(registration, Registration)
        assert registration.port_name == "mouse"
        assert port.registrant_count == 1

    def test_non_callable_rejected(self):
        with pytest.raises(RegistrationError):
            UpcallPort().register("not callable")

    def test_unregister(self):
        port = UpcallPort()
        registration = port.register(lambda e: None)
        port.unregister(registration)
        assert port.registrant_count == 0

    def test_unregister_twice_rejected(self):
        port = UpcallPort()
        registration = port.register(lambda e: None)
        port.unregister(registration)
        with pytest.raises(RegistrationError):
            port.unregister(registration)

    def test_unregister_wrong_port_rejected(self):
        port_a = UpcallPort("a")
        port_b = UpcallPort("b")
        registration = port_a.register(lambda e: None)
        with pytest.raises(RegistrationError):
            port_b.unregister(registration)

    def test_zero_or_more_registrants(self):
        """§4.1: zero or more higher layers may be registered."""
        port = UpcallPort()
        assert port.registrant_count == 0
        for _ in range(3):
            port.register(lambda e: None)
        assert port.registrant_count == 3


class TestDelivery:
    @async_test
    async def test_all_registrants_called_in_order(self):
        port = UpcallPort()
        calls = []
        port.register(lambda e: calls.append(("first", e)))
        port.register(lambda e: calls.append(("second", e)))
        await port.deliver("event")
        assert calls == [("first", "event"), ("second", "event")]

    @async_test
    async def test_results_collected(self):
        port = UpcallPort()
        port.register(lambda x: x + 1)
        port.register(lambda x: x * 2)
        assert await port.deliver(10) == [11, 20]

    @async_test
    async def test_async_registrants_awaited(self):
        port = UpcallPort()

        async def handler(x):
            return x * 3

        port.register(handler)
        assert await port.deliver(5) == [15]

    @async_test
    async def test_multiple_arguments(self):
        port = UpcallPort()
        port.register(lambda x, y, b: (x, y, b))
        assert await port.deliver(3, 4, 1) == [(3, 4, 1)]

    @async_test
    async def test_delivered_counter(self):
        port = UpcallPort()
        port.register(lambda e: None)
        await port.deliver(1)
        await port.deliver(2)
        assert port.delivered == 2


class TestUnhandledPolicy:
    @async_test
    async def test_discard_by_default(self):
        """§4.1: the lower level may throw the event away."""
        port = UpcallPort()
        assert await port.deliver("lost") == []
        assert port.discarded == 1
        assert port.queued_count == 0

    @async_test
    async def test_queue_policy_keeps_events(self):
        """§4.1: the lower level may queue up the event for later use."""
        port = UpcallPort(unhandled=UnhandledPolicy.QUEUE)
        await port.deliver("early-1")
        await port.deliver("early-2")
        assert port.queued_count == 2

        seen = []
        port.register(lambda e: seen.append(e))
        replayed = await port.replay_queued()
        assert replayed == 2
        assert seen == ["early-1", "early-2"]
        assert port.queued_count == 0

    @async_test
    async def test_replay_without_registrants_is_noop(self):
        port = UpcallPort(unhandled=UnhandledPolicy.QUEUE)
        await port.deliver("e")
        assert await port.replay_queued() == 0
        assert port.queued_count == 1

    @async_test
    async def test_queue_bounded(self):
        port = UpcallPort(unhandled=UnhandledPolicy.QUEUE, max_queued=3)
        for i in range(10):
            await port.deliver(i)
        assert port.queued_count == 3  # oldest dropped

    @async_test
    async def test_events_after_registration_not_queued(self):
        port = UpcallPort(unhandled=UnhandledPolicy.QUEUE)
        seen = []
        port.register(lambda e: seen.append(e))
        await port.deliver("live")
        assert seen == ["live"]
        assert port.queued_count == 0


class TestFailurePropagation:
    @async_test
    async def test_registrant_exception_propagates_and_halts_fanout(self):
        """A failing registrant aborts the remaining fan-out: the
        lower layer's upcall raises, exactly as a failing local
        procedure call would.  (Callers wanting isolation wrap their
        registrants; the port does not silently swallow errors.)"""
        port = UpcallPort()
        reached = []
        port.register(lambda e: reached.append("first"))

        def failing(e):
            raise RuntimeError("registrant bug")

        port.register(failing)
        port.register(lambda e: reached.append("third"))
        with pytest.raises(RuntimeError, match="registrant bug"):
            await port.deliver("event")
        assert reached == ["first"]

    @async_test
    async def test_port_usable_after_registrant_failure(self):
        port = UpcallPort()

        calls = []

        def flaky(e):
            calls.append(e)
            if e == "bad":
                raise ValueError("once")

        port.register(flaky)
        with pytest.raises(ValueError):
            await port.deliver("bad")
        await port.deliver("good")
        assert calls == ["bad", "good"]


class TestTransparency:
    @async_test
    async def test_local_and_remote_indistinguishable(self):
        """§4.1: the port treats a RemoteUpcall like any local procedure."""
        from typing import Callable

        from repro.bundlers import BundlerRegistry
        from repro.bundlers.auto import structural_resolver
        from repro.core import CallbackTable, UpcallSignature, RemoteUpcall

        registry = BundlerRegistry()
        registry.add_resolver(structural_resolver)
        table = CallbackTable()
        remote_seen = []
        local_seen = []

        class FakeChannel:
            async def send_upcall(self, callback_id, args):
                proc, signature = table.look_up(callback_id)
                proc(*signature.unbundle_args(args))
                return b""

        signature = UpcallSignature.from_annotation(Callable[[int], None], registry)
        callback_id = table.register(lambda x: remote_seen.append(x), signature)
        ruc = RemoteUpcall(callback_id, signature, FakeChannel())

        port = UpcallPort("input")
        port.register(lambda x: local_seen.append(x))  # local upcall
        port.register(ruc)                             # distributed upcall
        await port.deliver(7)
        assert local_seen == [7]
        assert remote_seen == [7]
