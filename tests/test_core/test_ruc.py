"""Tests for the RUC machinery (paper §3.5.2).

A fake upcall channel wires the server-side RemoteUpcall directly to
the client-side CallbackTable, closing the loop without sockets: the
real runtimes replace the fake with the upcall MessageChannel.
"""

from dataclasses import dataclass
from typing import Awaitable, Callable

import pytest

from repro.errors import BundleError, UpcallError
from repro.bundlers import BundlerRegistry
from repro.bundlers.auto import structural_resolver
from repro.core import (
    CallbackTable,
    RemoteUpcall,
    UpcallSignature,
    install_client_callbacks,
    install_server_callbacks,
)
from repro.xdr import XdrStream
from tests.support import async_test


@dataclass
class Event:
    x: int
    y: int
    button: int


def fresh_registry():
    registry = BundlerRegistry()
    registry.add_resolver(structural_resolver)
    return registry


class LoopbackUpcallChannel:
    """Delivers upcalls straight into a client-side CallbackTable."""

    def __init__(self, table: CallbackTable):
        self.table = table
        self.upcalls_sent = 0

    async def send_upcall(self, callback_id: int, args: bytes) -> bytes:
        self.upcalls_sent += 1
        proc, signature = self.table.look_up(callback_id)
        values = signature.unbundle_args(args)
        result = proc(*values)
        if hasattr(result, "__await__"):
            result = await result
        return signature.bundle_result(result)


class TestUpcallSignature:
    def test_parse_callable_annotation(self):
        sig = UpcallSignature.from_annotation(
            Callable[[Event, int], bool], fresh_registry()
        )
        assert sig.arg_types == (Event, int)
        assert sig.result_type is bool

    def test_parse_void_result(self):
        sig = UpcallSignature.from_annotation(Callable[[int], None], fresh_registry())
        assert sig.result_type is type(None)

    def test_awaitable_result_unwrapped(self):
        sig = UpcallSignature.from_annotation(
            Callable[[int], Awaitable[int]], fresh_registry()
        )
        assert sig.result_type is int

    def test_ellipsis_rejected(self):
        """§3.5.2: the declaration must specify each parameter type."""
        with pytest.raises(BundleError, match="parameter types"):
            UpcallSignature.from_annotation(Callable[..., None], fresh_registry())

    def test_args_roundtrip(self):
        sig = UpcallSignature.from_annotation(
            Callable[[Event, str], None], fresh_registry()
        )
        args = sig.unbundle_args(sig.bundle_args((Event(1, 2, 3), "w1")))
        assert args == (Event(1, 2, 3), "w1")

    def test_result_roundtrip(self):
        sig = UpcallSignature.from_annotation(Callable[[int], int], fresh_registry())
        assert sig.unbundle_result(sig.bundle_result(99)) == 99

    def test_void_result_is_empty_payload(self):
        sig = UpcallSignature.from_annotation(Callable[[int], None], fresh_registry())
        assert sig.bundle_result(None) == b""
        assert sig.unbundle_result(b"") is None

    def test_wrong_arity_rejected(self):
        sig = UpcallSignature.from_annotation(Callable[[int, int], None], fresh_registry())
        with pytest.raises(UpcallError, match="2 arguments"):
            sig.bundle_args((1,))


class TestCallbackTable:
    def test_register_and_lookup(self):
        table = CallbackTable()
        sig = UpcallSignature.from_annotation(Callable[[int], None], fresh_registry())

        def proc(x):
            return None

        callback_id = table.register(proc, sig)
        found, found_sig = table.look_up(callback_id)
        assert found is proc
        assert found_sig is sig

    def test_same_proc_same_id(self):
        table = CallbackTable()
        sig = UpcallSignature.from_annotation(Callable[[int], None], fresh_registry())

        def proc(x):
            return None

        assert table.register(proc, sig) == table.register(proc, sig)

    def test_bound_method_reuses_id(self):
        table = CallbackTable()
        sig = UpcallSignature.from_annotation(Callable[[int], None], fresh_registry())

        class Handler:
            def on_event(self, x):
                return None

        handler = Handler()
        id1 = table.register(handler.on_event, sig)
        id2 = table.register(handler.on_event, sig)  # fresh bound method object
        assert id1 == id2

    def test_distinct_instances_distinct_ids(self):
        table = CallbackTable()
        sig = UpcallSignature.from_annotation(Callable[[int], None], fresh_registry())

        class Handler:
            def on_event(self, x):
                return None

        assert table.register(Handler().on_event, sig) != table.register(
            Handler().on_event, sig
        )

    def test_unknown_id_raises(self):
        with pytest.raises(UpcallError):
            CallbackTable().look_up(404)

    def test_unregister(self):
        table = CallbackTable()
        sig = UpcallSignature.from_annotation(Callable[[int], None], fresh_registry())
        callback_id = table.register(lambda x: None, sig)
        table.unregister(callback_id)
        with pytest.raises(UpcallError):
            table.look_up(callback_id)
        assert len(table) == 0


class TestProcedurePointerBundling:
    def make_pair(self):
        """Client and server registries wired through a loopback channel."""
        table = CallbackTable()
        channel = LoopbackUpcallChannel(table)
        client_registry = fresh_registry()
        install_client_callbacks(client_registry, table)
        server_registry = fresh_registry()
        install_server_callbacks(server_registry, channel)
        return table, channel, client_registry, server_registry

    def ship(self, annotation, value, client_registry, server_registry):
        """Bundle on the client, unbundle on the server."""
        enc = XdrStream.encoder()
        client_registry.bundler_for(annotation)(enc, value)
        dec = XdrStream.decoder(enc.getvalue())
        return server_registry.bundler_for(annotation)(dec, None)

    @async_test
    async def test_callable_becomes_remote_upcall(self):
        table, channel, client_reg, server_reg = self.make_pair()
        received = []

        def on_mouse(event: Event) -> None:
            received.append(event)

        annotation = Callable[[Event], None]
        ruc = self.ship(annotation, on_mouse, client_reg, server_reg)
        assert isinstance(ruc, RemoteUpcall)

        # Server code invokes the "procedure pointer" like any local one.
        await ruc(Event(10, 20, 1))
        assert received == [Event(10, 20, 1)]
        assert channel.upcalls_sent == 1

    @async_test
    async def test_upcall_result_returns_to_server(self):
        table, channel, client_reg, server_reg = self.make_pair()

        def classify(x: int) -> int:
            return x * 2

        ruc = self.ship(Callable[[int], int], classify, client_reg, server_reg)
        assert await ruc(21) == 42

    @async_test
    async def test_async_client_procedure(self):
        table, channel, client_reg, server_reg = self.make_pair()

        async def handler(x: int) -> int:
            return x + 1

        ruc = self.ship(Callable[[int], Awaitable[int]], handler, client_reg, server_reg)
        assert await ruc(1) == 2

    def test_client_refuses_incoming_procedure_pointer(self):
        """§3.5.2: server→client procedure pointers are unimplemented."""
        table, channel, client_reg, server_reg = self.make_pair()
        enc = XdrStream.encoder()
        enc.xuhyper(1)
        bundler = client_reg.bundler_for(Callable[[int], None])
        with pytest.raises(BundleError, match="not.*implemented|not implemented"):
            bundler(XdrStream.decoder(enc.getvalue()), None)

    def test_server_refuses_outgoing_procedure_pointer(self):
        table, channel, client_reg, server_reg = self.make_pair()
        bundler = server_reg.bundler_for(Callable[[int], None])
        with pytest.raises(BundleError):
            bundler(XdrStream.encoder(), lambda x: None)

    def test_non_callable_rejected_on_encode(self):
        table, channel, client_reg, server_reg = self.make_pair()
        bundler = client_reg.bundler_for(Callable[[int], None])
        with pytest.raises(BundleError, match="callable"):
            bundler(XdrStream.encoder(), 42)
