"""Tests for repro.core.invoke — the placement-agnostic call helper."""

import pytest

from repro.core import invoke
from tests.support import async_test


@async_test
async def test_sync_callable():
    assert await invoke(lambda a, b: a + b, 2, 3) == 5


@async_test
async def test_async_callable():
    async def add(a, b):
        return a + b

    assert await invoke(add, 2, 3) == 5


@async_test
async def test_bound_methods():
    class Thing:
        def twice(self, x):
            return x * 2

        async def thrice(self, x):
            return x * 3

    thing = Thing()
    assert await invoke(thing.twice, 4) == 8
    assert await invoke(thing.thrice, 4) == 12


@async_test
async def test_exceptions_propagate():
    def boom():
        raise ValueError("sync boom")

    async def aboom():
        raise KeyError("async boom")

    with pytest.raises(ValueError):
        await invoke(boom)
    with pytest.raises(KeyError):
        await invoke(aboom)


@async_test
async def test_no_arguments():
    assert await invoke(lambda: "bare") == "bare"
