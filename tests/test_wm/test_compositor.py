"""Damage repair: the compositor half of the window system.

When a layer scribbles over existing windows (the sweep band, a
removed window's hole), :meth:`BaseWindow.repair` restores the
windows underneath in stacking order.
"""


from repro.wm import BaseWindow, InputScript, Screen, SweepLayer, Window
from repro.wm.geometry import Point, Rect
from repro.wm.sweep import SWEEP_BORDER, _border_strips
from repro.wm.window import DEFAULT_BORDER, DEFAULT_FILL
from tests.support import async_test


class TestRepair:
    @async_test
    async def test_repair_restores_window_content(self):
        screen = Screen(20, 10)
        base = BaseWindow(screen)
        await base.create_window(Rect(2, 2, 6, 4))
        # Something scribbles over the window...
        screen.fill_rect(Rect(0, 0, 20, 10), 9)
        await base.repair(Rect(0, 0, 20, 10))
        assert screen.read_cell(3, 3) == DEFAULT_FILL
        assert screen.read_cell(2, 2) == DEFAULT_BORDER
        assert screen.read_cell(15, 8) == 0  # background cleared

    @async_test
    async def test_repair_respects_stacking_order(self):
        screen = Screen(20, 10)
        base = BaseWindow(screen)
        from repro.wm.window import Window

        bottom = Window(screen, Rect(2, 2, 8, 6), fill=3, border=3)
        top = Window(screen, Rect(5, 4, 8, 5), fill=4, border=4)
        base.adopt(bottom)
        base.adopt(top)
        screen.fill_rect(Rect(0, 0, 20, 10), 9)
        await base.repair(Rect(0, 0, 20, 10))
        # In the overlap, the topmost window wins.
        assert screen.read_cell(6, 5) == 4

    @async_test
    async def test_repair_partial_region(self):
        screen = Screen(20, 10)
        base = BaseWindow(screen)
        await base.create_window(Rect(2, 2, 6, 4))
        screen.fill_rect(Rect(0, 0, 4, 10), 9)  # damage left part only
        await base.repair(Rect(0, 0, 4, 10))
        assert screen.read_cell(3, 3) == DEFAULT_FILL

    @async_test
    async def test_remove_window_reveals_underlying(self):
        screen = Screen(20, 10)
        base = BaseWindow(screen)
        from repro.wm.window import Window

        under = Window(screen, Rect(2, 2, 8, 6), fill=3, border=3)
        base.adopt(under)
        await under.draw()
        over = await base.create_window(Rect(4, 3, 8, 6))
        assert screen.read_cell(6, 5) == DEFAULT_FILL  # over on top
        await base.remove_window(over)
        assert screen.read_cell(6, 5) == 3              # under restored


class TestSweepOverWindows:
    @async_test
    async def test_band_crossing_window_leaves_it_intact(self):
        """The drag crosses an existing window; when the band moves on,
        the compositor restores the window it crossed."""
        screen = Screen(40, 20)
        base = BaseWindow(screen)
        await base.create_window(Rect(10, 4, 8, 6))
        sweep = SweepLayer()
        await sweep.attach(base, screen)

        script = InputScript()
        # Drag straight across the window and finish beyond it.
        await script.play(
            script.drag(Point(2, 6), Point(30, 14), steps=10),
            screen.inject_input,
        )
        # Two windows now; the first one's interior is intact.
        assert base.window_count() == 2
        assert screen.read_cell(13, 6) in (DEFAULT_FILL, DEFAULT_BORDER)
        assert screen.count_cells(SWEEP_BORDER) == 0

    @async_test
    async def test_opaque_band_repairs_interior(self):
        screen = Screen(40, 20)
        base = BaseWindow(screen)
        await base.create_window(Rect(10, 4, 8, 6))
        sweep = SweepLayer()
        sweep.configure(1, False)  # opaque band
        await sweep.attach(base, screen)
        script = InputScript()
        await script.play(
            script.drag(Point(2, 2), Point(30, 16), steps=6),
            screen.inject_input,
        )
        from repro.wm.sweep import SWEEP_FILL

        assert screen.count_cells(SWEEP_FILL) == 0
        assert screen.read_cell(13, 6) in (DEFAULT_FILL, DEFAULT_BORDER)


class TestBorderStrips:
    def test_strips_cover_exactly_the_border(self):
        rect = Rect(3, 2, 6, 5)
        covered = set()
        for strip in _border_strips(rect):
            for cell in strip.cells():
                assert cell not in covered, "strips must not overlap"
                covered.add(cell)
        assert covered == set(rect.border_cells())

    def test_degenerate_rects(self):
        assert set().union(
            *(set(s.cells()) for s in _border_strips(Rect(0, 0, 1, 1)))
        ) == {(0, 0)}
        row = Rect(2, 2, 5, 1)
        assert set().union(
            *(set(s.cells()) for s in _border_strips(row))
        ) == set(row.cells())

    def test_two_high_rect(self):
        rect = Rect(0, 0, 4, 2)
        covered = set()
        for strip in _border_strips(rect):
            covered |= set(strip.cells())
        assert covered == set(rect.cells())  # all border when height 2
