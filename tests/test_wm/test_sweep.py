"""Tests for the sweep layer, all-local placement (paper §2.1)."""

import pytest

from repro.wm import BaseWindow, InputScript, Screen, SweepLayer
from repro.wm.geometry import Point, Rect
from repro.wm.sweep import SWEEP_BORDER, SWEEP_FILL
from tests.support import async_test


async def make_stack(width=40, height=20, **config):
    screen = Screen(width, height)
    base = BaseWindow(screen)
    sweep = SweepLayer()
    if config:
        sweep.configure(**config)
    await sweep.attach(base, screen)
    return screen, base, sweep


class TestSweepGesture:
    @async_test
    async def test_full_drag_creates_window(self):
        screen, base, sweep = await make_stack()
        script = InputScript()
        await script.play(script.drag(Point(2, 2), Point(10, 8), steps=5),
                          screen.inject_input)
        assert base.window_count() == 1
        assert sweep.windows_created() == 1
        assert not sweep.sweeping()

    @async_test
    async def test_created_window_spans_drag(self):
        screen, base, sweep = await make_stack()
        created = []
        sweep.on_complete(lambda rect: created.append(rect))
        script = InputScript()
        await script.play(script.drag(Point(2, 2), Point(10, 8), steps=4),
                          screen.inject_input)
        assert created == [Rect.spanning(Point(2, 2), Point(10, 8))]

    @async_test
    async def test_single_completion_upcall_per_drag(self):
        """§2.1: many motion events in, ONE 'window created' event out."""
        screen, base, sweep = await make_stack()
        completions = []
        sweep.on_complete(lambda rect: completions.append(rect))
        script = InputScript()
        await script.play(script.drag(Point(1, 1), Point(20, 15), steps=50),
                          screen.inject_input)
        assert sweep.motion_count() == 50
        assert len(completions) == 1

    @async_test
    async def test_band_visible_during_drag(self):
        screen, base, sweep = await make_stack()
        script = InputScript()
        events = script.drag(Point(2, 2), Point(8, 6), steps=3)
        # Play everything but the final MOUSE_UP.
        await script.play(events[:-1], screen.inject_input)
        assert sweep.sweeping()
        assert screen.count_cells(SWEEP_BORDER) > 0
        # Finish: band erased, real window drawn.
        await script.play(events[-1:], screen.inject_input)
        assert screen.count_cells(SWEEP_BORDER) == 0

    @async_test
    async def test_band_erased_and_redrawn_each_motion(self):
        screen, base, sweep = await make_stack()
        script = InputScript()
        events = script.drag(Point(2, 2), Point(12, 10), steps=4)
        await script.play(events[:-1], screen.inject_input)
        # Only ONE band on screen: perimeter of current spanning rect.
        band = Rect.spanning(Point(2, 2), Point(12, 10))
        assert screen.count_cells(SWEEP_BORDER) == len(list(band.border_cells()))

    @async_test
    async def test_reverse_drag_normalizes(self):
        screen, base, sweep = await make_stack()
        created = []
        sweep.on_complete(lambda r: created.append(r))
        script = InputScript()
        await script.play(script.drag(Point(10, 8), Point(2, 2), steps=3),
                          screen.inject_input)
        assert created[0] == Rect.spanning(Point(2, 2), Point(10, 8))

    @async_test
    async def test_two_consecutive_drags(self):
        screen, base, sweep = await make_stack()
        script = InputScript()
        await script.play(script.drag(Point(1, 1), Point(5, 5), steps=2),
                          screen.inject_input)
        await script.play(script.drag(Point(10, 10), Point(15, 15), steps=2),
                          screen.inject_input)
        assert base.window_count() == 2


class TestSweepOptions:
    @async_test
    async def test_grid_alignment(self):
        """§2.1: window alignment is a client-chosen option."""
        screen, base, sweep = await make_stack(grid=4, transparent=True)
        created = []
        sweep.on_complete(lambda r: created.append(r))
        script = InputScript()
        await script.play(script.drag(Point(3, 3), Point(9, 7), steps=3),
                          screen.inject_input)
        rect = created[0]
        assert rect.x % 4 == 0 and rect.y % 4 == 0
        assert rect.width % 4 == 0 and rect.height % 4 == 0
        assert rect.contains_rect(Rect.spanning(Point(3, 3), Point(9, 7)))

    @async_test
    async def test_opaque_band_fills_interior(self):
        """§2.1: transparency of the sweep window is an option."""
        screen, base, sweep = await make_stack(grid=1, transparent=False)
        script = InputScript()
        events = script.drag(Point(2, 2), Point(10, 8), steps=3)
        await script.play(events[:-1], screen.inject_input)
        assert screen.count_cells(SWEEP_FILL) > 0

    @async_test
    async def test_transparent_band_interior_untouched(self):
        screen, base, sweep = await make_stack(grid=1, transparent=True)
        script = InputScript()
        events = script.drag(Point(2, 2), Point(10, 8), steps=3)
        await script.play(events[:-1], screen.inject_input)
        assert screen.count_cells(SWEEP_FILL) == 0

    def test_bad_grid_rejected(self):
        with pytest.raises(ValueError):
            SweepLayer().configure(grid=0, transparent=True)


class TestSweepRobustness:
    @async_test
    async def test_events_before_attach_ignored(self):
        sweep = SweepLayer()
        from repro.wm.events import EventKind, InputEvent

        await sweep.mouse(InputEvent(EventKind.MOUSE_DOWN, 1, 1, 1, seq=1))
        assert not sweep.sweeping()

    @async_test
    async def test_motion_without_press_ignored(self):
        screen, base, sweep = await make_stack()
        from repro.wm.events import EventKind, InputEvent

        await sweep.mouse(InputEvent(EventKind.MOUSE_MOVE, 5, 5, 0, seq=1))
        assert sweep.motion_count() == 0

    @async_test
    async def test_keyboard_ignored(self):
        screen, base, sweep = await make_stack()
        from repro.wm.events import EventKind, InputEvent

        await sweep.mouse(InputEvent(EventKind.KEY_DOWN, key="x", seq=1))
        assert not sweep.sweeping()

    @async_test
    async def test_second_press_during_drag_ignored(self):
        screen, base, sweep = await make_stack()
        from repro.wm.events import EventKind, InputEvent

        await sweep.mouse(InputEvent(EventKind.MOUSE_DOWN, 2, 2, 1, seq=1))
        anchor_band = screen.count_cells(SWEEP_BORDER)
        await sweep.mouse(InputEvent(EventKind.MOUSE_DOWN, 9, 9, 1, seq=2))
        assert screen.count_cells(SWEEP_BORDER) == anchor_band


class TestInputScript:
    def test_drag_shape(self):
        script = InputScript()
        events = script.drag(Point(0, 0), Point(10, 0), steps=5)
        from repro.wm.events import EventKind

        assert events[0].kind is EventKind.MOUSE_DOWN
        assert events[-1].kind is EventKind.MOUSE_UP
        assert [e.kind for e in events[1:-1]] == [EventKind.MOUSE_MOVE] * 5
        assert events[-2].x == 10  # last move reaches the end point

    def test_sequence_numbers_increase(self):
        script = InputScript()
        events = script.click(1, 1) + script.drag(Point(0, 0), Point(2, 2), steps=2)
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_type_text(self):
        script = InputScript()
        events = script.type_text("ab")
        assert [e.key for e in events] == ["a", "a", "b", "b"]

    def test_bad_steps(self):
        with pytest.raises(ValueError):
            InputScript().drag(Point(0, 0), Point(1, 1), steps=0)

    @async_test
    async def test_play_through_pool(self):
        """Each event handled by a reused task (§4.4)."""
        from repro.tasks import TaskPool

        screen, base, sweep = await make_stack()
        script = InputScript()
        async with TaskPool(max_tasks=4) as pool:
            count = await script.play(
                script.drag(Point(1, 1), Point(8, 8), steps=6),
                screen.inject_input,
                pool=pool,
            )
            assert count == 8
            assert pool.workers_spawned == 1  # strictly sequential → reuse
        assert base.window_count() == 1
