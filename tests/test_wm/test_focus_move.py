"""Tests for the focus and move layers, titles, tap, and hit-testing."""


from repro.wm import (
    BaseWindow,
    EventKind,
    FocusLayer,
    InputEvent,
    InputScript,
    MoveLayer,
    Screen,
    Window,
)
from repro.wm.geometry import Point, Rect
from repro.wm.move import DRAG_BUTTON
from repro.wm.window import DEFAULT_FILL
from tests.support import async_test


def press(x, y, button=1, seq=1):
    return InputEvent(EventKind.MOUSE_DOWN, x, y, button, seq=seq)


def key(ch, seq=1):
    return InputEvent(EventKind.KEY_DOWN, key=ch, seq=seq)


class TestTitles:
    @async_test
    async def test_title_drawn_in_top_border(self):
        screen = Screen(30, 10)
        window = Window(screen, Rect(2, 2, 12, 5), title="editor")
        await window.draw()
        row = "".join(
            chr(screen.read_cell(x, 2)) if 32 <= screen.read_cell(x, 2) < 127 else "?"
            for x in range(3, 9)
        )
        assert row == "editor"

    @async_test
    async def test_title_clipped_to_width(self):
        screen = Screen(30, 10)
        window = Window(screen, Rect(0, 0, 6, 3), title="very long title")
        await window.draw()
        assert chr(screen.read_cell(1, 0)) == "v"
        assert chr(screen.read_cell(4, 0)) == "y"  # "very"[3]
        # Nothing spills past the border.
        assert screen.read_cell(6, 0) == 0

    @async_test
    async def test_set_title_redraws(self):
        screen = Screen(30, 10)
        window = Window(screen, Rect(2, 2, 12, 5), title="old")
        await window.draw()
        await window.set_title("new")
        assert window.title() == "new"
        assert chr(screen.read_cell(3, 2)) == "n"

    @async_test
    async def test_title_survives_repair(self):
        screen = Screen(30, 10)
        base = BaseWindow(screen)
        window = Window(screen, Rect(2, 2, 12, 5), title="kept")
        base.adopt(window)
        screen.fill_rect(Rect(0, 0, 30, 10), 9)
        await base.repair(Rect(0, 0, 30, 10))
        assert chr(screen.read_cell(3, 2)) == "k"

    def test_render_shows_text(self):
        screen = Screen(10, 2)
        screen.draw_text(1, 0, "hi")
        assert "hi" in screen.render()


class TestTapAndHitTest:
    @async_test
    async def test_tap_sees_every_event(self):
        screen = Screen(20, 10)
        base = BaseWindow(screen)
        await base.create_window(Rect(2, 2, 5, 5))
        tapped = []
        base.posttap(lambda e: tapped.append(e.kind))
        await screen.inject_input(press(3, 3))      # routed to window
        await screen.inject_input(press(15, 8))     # background
        await screen.inject_input(key("a"))
        assert len(tapped) == 3

    @async_test
    async def test_window_at(self):
        screen = Screen(20, 10)
        base = BaseWindow(screen)
        bottom = await base.create_window(Rect(2, 2, 8, 6))
        top = await base.create_window(Rect(5, 4, 8, 5))
        assert base.window_at(3, 3) is bottom
        assert base.window_at(6, 5) is top        # overlap: topmost
        assert base.window_at(18, 1) is None      # background


class TestFocusLayer:
    async def build(self):
        screen = Screen(30, 12)
        base = BaseWindow(screen)
        left = await base.create_window(Rect(1, 1, 8, 6))
        right = await base.create_window(Rect(12, 1, 8, 6))
        focus = FocusLayer()
        await focus.attach(base)
        return screen, base, left, right, focus

    @async_test
    async def test_click_sets_focus(self):
        screen, base, left, right, focus = await self.build()
        await screen.inject_input(press(3, 3))
        assert await focus.focused_window_id() == left.window_id()
        await screen.inject_input(press(14, 3, seq=2))
        assert await focus.focused_window_id() == right.window_id()
        assert focus.focus_changes == 2

    @async_test
    async def test_keys_routed_to_focused_window(self):
        screen, base, left, right, focus = await self.build()
        left_keys, right_keys = [], []
        left.postinput(lambda e: left_keys.append(e.key) if e.is_key else None)
        right.postinput(lambda e: right_keys.append(e.key) if e.is_key else None)

        await screen.inject_input(press(3, 3))
        await screen.inject_input(key("a", seq=2))
        await screen.inject_input(press(14, 3, seq=3))
        await screen.inject_input(key("b", seq=4))
        assert left_keys == ["a"]
        assert right_keys == ["b"]
        assert focus.keys_routed == 2

    @async_test
    async def test_background_click_clears_focus(self):
        screen, base, left, right, focus = await self.build()
        await screen.inject_input(press(3, 3))
        await screen.inject_input(press(25, 10, seq=2))  # background
        assert await focus.focused_window_id() == 0
        await screen.inject_input(key("x", seq=3))
        assert focus.keys_routed == 0  # nowhere to send it

    @async_test
    async def test_keys_before_any_click_dropped(self):
        screen, base, left, right, focus = await self.build()
        await screen.inject_input(key("z"))
        assert focus.keys_routed == 0


class TestMoveLayer:
    async def build(self):
        screen = Screen(40, 15)
        base = BaseWindow(screen)
        window = await base.create_window(Rect(2, 2, 8, 5))
        move = MoveLayer()
        await move.attach(base)
        return screen, base, window, move

    @async_test
    async def test_drag_moves_window(self):
        screen, base, window, move = await self.build()
        script = InputScript()
        events = script.drag(Point(4, 4), Point(20, 8), steps=4, button=DRAG_BUTTON)
        await script.play(events, screen.inject_input)
        assert window.bounds() == Rect(2 + 16, 2 + 4, 8, 5)
        assert move.move_count() >= 1
        assert not move.dragging()
        # Drawn at the new location, old location empty.
        assert screen.read_cell(20, 8) != 0
        assert screen.read_cell(3, 3) == 0

    @async_test
    async def test_primary_button_does_not_drag(self):
        screen, base, window, move = await self.build()
        script = InputScript()
        await script.play(
            script.drag(Point(4, 4), Point(20, 8), steps=4, button=1),
            screen.inject_input,
        )
        assert window.bounds() == Rect(2, 2, 8, 5)
        assert move.move_count() == 0

    @async_test
    async def test_drag_on_background_is_noop(self):
        screen, base, window, move = await self.build()
        script = InputScript()
        await script.play(
            script.drag(Point(30, 12), Point(35, 13), steps=2, button=DRAG_BUTTON),
            screen.inject_input,
        )
        assert window.bounds() == Rect(2, 2, 8, 5)

    @async_test
    async def test_moving_over_another_window_repairs_it(self):
        screen, base, window, move = await self.build()
        other = await base.create_window(Rect(20, 4, 8, 5))
        script = InputScript()
        # Drag the first window across the second and beyond.
        await script.play(
            script.drag(Point(4, 4), Point(4 + 28, 4 + 2), steps=14,
                        button=DRAG_BUTTON),
            screen.inject_input,
        )
        # The crossed window is intact afterwards.
        assert screen.read_cell(23, 6) in (DEFAULT_FILL, 2)
