"""Tests for the Screen class (paper §4.2, Figure 4.1's S)."""

import pytest

from repro.wm import EventKind, InputEvent, Screen
from repro.wm.geometry import Rect
from tests.support import async_test


class TestDrawing:
    def test_starts_empty(self):
        screen = Screen(10, 5)
        assert screen.count_cells(0) == 50

    def test_fill_rect(self):
        screen = Screen(10, 5)
        screen.fill_rect(Rect(1, 1, 3, 2), 9)
        assert screen.count_cells(9) == 6
        assert screen.read_cell(1, 1) == 9
        assert screen.read_cell(3, 2) == 9
        assert screen.read_cell(4, 1) == 0

    def test_fill_clipped_at_edges(self):
        screen = Screen(4, 4)
        screen.fill_rect(Rect(2, 2, 10, 10), 5)
        assert screen.count_cells(5) == 4  # only the 2x2 on-screen part

    def test_fill_fully_offscreen(self):
        screen = Screen(4, 4)
        screen.fill_rect(Rect(10, 10, 3, 3), 5)
        assert screen.count_cells(5) == 0

    def test_draw_border(self):
        screen = Screen(10, 10)
        screen.draw_border(Rect(1, 1, 4, 3), 7)
        # perimeter of 4x3 = 10 cells
        assert screen.count_cells(7) == 10
        assert screen.read_cell(2, 2) == 0  # interior untouched

    def test_border_partially_offscreen(self):
        screen = Screen(5, 5)
        screen.draw_border(Rect(3, 3, 5, 5), 7)
        assert screen.read_cell(4, 3) == 7
        assert screen.count_cells(7) > 0

    def test_clear(self):
        screen = Screen(6, 6)
        screen.fill_rect(Rect(0, 0, 6, 6), 3)
        screen.clear()
        assert screen.count_cells(0) == 36

    def test_read_cell_out_of_bounds(self):
        with pytest.raises(ValueError):
            Screen(4, 4).read_cell(4, 0)

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            Screen(0, 5)

    def test_size(self):
        assert Screen(7, 3).size() == Rect(0, 0, 7, 3)


class TestDamageTracking:
    def test_ops_append_damage(self):
        screen = Screen(10, 10)
        screen.fill_rect(Rect(0, 0, 2, 2), 1)
        screen.draw_border(Rect(3, 3, 3, 3), 2)
        assert screen.damage_count() == 2
        assert screen.draw_ops == 2

    def test_offscreen_ops_record_no_damage(self):
        screen = Screen(4, 4)
        screen.fill_rect(Rect(9, 9, 2, 2), 1)
        assert screen.damage_count() == 0

    def test_clear_damage(self):
        screen = Screen(4, 4)
        screen.fill_rect(Rect(0, 0, 1, 1), 1)
        assert screen.clear_damage() == 1
        assert screen.damage_count() == 0


class TestInputPort:
    @async_test
    async def test_registered_proc_gets_events(self):
        screen = Screen()
        seen = []
        assert screen.postinput(lambda e: seen.append(e)) is True
        event = InputEvent(EventKind.MOUSE_DOWN, 3, 4, 1, seq=1)
        count = await screen.inject_input(event)
        assert count == 1
        assert seen == [event]

    @async_test
    async def test_events_queue_until_registration(self):
        """§4.1 queue policy: a late layer still sees the backlog."""
        screen = Screen()
        early = InputEvent(EventKind.KEY_DOWN, key="a", seq=1)
        await screen.inject_input(early)
        seen = []
        screen.postinput(lambda e: seen.append(e))
        await screen.inject_input(InputEvent(EventKind.KEY_DOWN, key="b", seq=2))
        assert [e.key for e in seen] == ["b", "a"] or [e.key for e in seen] == ["a", "b"]
        assert len(seen) == 2

    def test_render(self):
        screen = Screen(4, 2)
        screen.fill_rect(Rect(0, 0, 2, 1), 2)
        text = screen.render()
        assert len(text.splitlines()) == 2
        assert text.splitlines()[0][:2] != "  "
