"""Tests for wm geometry, including hypothesis properties."""

import pytest
from hypothesis import given, strategies as st

from repro.wm.geometry import Point, Rect

coords = st.integers(min_value=-200, max_value=200)
sizes = st.integers(min_value=0, max_value=100)
rects = st.builds(Rect, x=coords, y=coords, width=sizes, height=sizes)
points = st.builds(Point, x=coords, y=coords)


class TestPoint:
    def test_offset(self):
        assert Point(1, 2).offset(3, -1) == Point(4, 1)


class TestRectBasics:
    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, -1, 5)

    def test_right_bottom_area(self):
        r = Rect(2, 3, 4, 5)
        assert r.right == 6
        assert r.bottom == 8
        assert r.area == 20
        assert not r.empty

    def test_empty(self):
        assert Rect(1, 1, 0, 5).empty

    def test_contains(self):
        r = Rect(1, 1, 3, 3)
        assert r.contains(1, 1)
        assert r.contains(3, 3)
        assert not r.contains(4, 1)
        assert not r.contains(0, 2)

    def test_spanning_normalizes(self):
        r = Rect.spanning(Point(5, 7), Point(2, 3))
        assert r == Rect(2, 3, 4, 5)

    def test_spanning_single_point(self):
        assert Rect.spanning(Point(4, 4), Point(4, 4)) == Rect(4, 4, 1, 1)

    def test_translate(self):
        assert Rect(1, 1, 2, 2).translate(3, -1) == Rect(4, 0, 2, 2)

    def test_intersect_disjoint(self):
        assert Rect(0, 0, 2, 2).intersect(Rect(5, 5, 2, 2)).empty

    def test_intersect_overlap(self):
        assert Rect(0, 0, 4, 4).intersect(Rect(2, 2, 4, 4)) == Rect(2, 2, 2, 2)

    def test_overlaps(self):
        assert Rect(0, 0, 4, 4).overlaps(Rect(3, 3, 2, 2))
        assert not Rect(0, 0, 2, 2).overlaps(Rect(2, 0, 2, 2))  # edge-adjacent

    def test_contains_rect(self):
        assert Rect(0, 0, 10, 10).contains_rect(Rect(2, 2, 3, 3))
        assert not Rect(0, 0, 10, 10).contains_rect(Rect(8, 8, 5, 5))
        assert Rect(0, 0, 1, 1).contains_rect(Rect(5, 5, 0, 0))  # empty fits anywhere


class TestGridSnap:
    def test_identity_grid(self):
        r = Rect(3, 5, 7, 2)
        assert r.snap_to_grid(1) == r

    def test_snap_expands_outward(self):
        snapped = Rect(3, 5, 7, 2).snap_to_grid(4)
        assert snapped.x % 4 == 0 and snapped.y % 4 == 0
        assert snapped.width % 4 == 0 and snapped.height % 4 == 0
        assert snapped.contains_rect(Rect(3, 5, 7, 2))

    def test_minimum_one_grid_cell(self):
        snapped = Rect(5, 5, 1, 1).snap_to_grid(8)
        assert snapped.width >= 8 and snapped.height >= 8


class TestCellIterators:
    def test_cells_count(self):
        assert len(list(Rect(0, 0, 3, 4).cells())) == 12

    def test_border_cells_unique_and_complete(self):
        r = Rect(1, 1, 4, 3)
        border = list(r.border_cells())
        assert len(border) == len(set(border))
        # perimeter of a 4x3: 2*4 + 2*(3-2) = 10
        assert len(border) == 10
        for x, y in border:
            assert r.contains(x, y)

    def test_border_degenerate_1x1(self):
        assert list(Rect(0, 0, 1, 1).border_cells()) == [(0, 0)]

    def test_border_single_row(self):
        assert list(Rect(0, 0, 3, 1).border_cells()) == [(0, 0), (1, 0), (2, 0)]

    def test_border_empty(self):
        assert list(Rect(0, 0, 0, 0).border_cells()) == []


class TestProperties:
    @given(points, points)
    def test_spanning_contains_both_corners(self, a, b):
        r = Rect.spanning(a, b)
        assert r.contains(a.x, a.y)
        assert r.contains(b.x, b.y)

    @given(rects, st.integers(min_value=1, max_value=16))
    def test_snap_covers_original(self, r, grid):
        snapped = r.snap_to_grid(grid)
        assert snapped.contains_rect(r)
        assert snapped.x % grid == 0 and snapped.y % grid == 0

    @given(rects, rects)
    def test_intersect_commutative(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(rects, rects)
    def test_intersect_within_both(self, a, b):
        inter = a.intersect(b)
        if not inter.empty:
            assert a.contains_rect(inter)
            assert b.contains_rect(inter)

    @given(rects)
    def test_border_subset_of_cells(self, r):
        cells = set(r.cells())
        border = list(r.border_cells())
        assert len(border) == len(set(border))
        assert set(border) <= cells

    @given(rects)
    def test_interior_plus_border_is_cells(self, r):
        border = set(r.border_cells())
        interior = {
            (x, y)
            for x, y in r.cells()
            if r.x < x < r.right - 1 and r.y < y < r.bottom - 1
        }
        assert border | interior == set(r.cells())
