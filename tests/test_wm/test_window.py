"""Tests for Window/BaseWindow routing (paper §4.2, Figure 4.1)."""


from repro.wm import BaseWindow, EventKind, InputEvent, Screen, Window
from repro.wm.geometry import Rect
from tests.support import async_test


def mouse_at(x, y, kind=EventKind.MOUSE_DOWN, seq=1):
    return InputEvent(kind, x, y, 1, seq=seq)


class TestWindow:
    @async_test
    async def test_draw_paints_fill_and_border(self):
        screen = Screen(10, 10)
        window = Window(screen, Rect(1, 1, 4, 4))
        await window.draw()
        from repro.wm.window import DEFAULT_BORDER, DEFAULT_FILL

        assert screen.read_cell(1, 1) == DEFAULT_BORDER       # corner = border
        assert screen.read_cell(2, 2) == DEFAULT_FILL         # interior = fill
        assert screen.read_cell(6, 6) == 0                    # outside untouched

    @async_test
    async def test_erase(self):
        screen = Screen(10, 10)
        window = Window(screen, Rect(1, 1, 4, 4))
        await window.draw()
        await window.erase()
        assert screen.count_cells(0) == 100

    @async_test
    async def test_move_by(self):
        screen = Screen(10, 10)
        window = Window(screen, Rect(0, 0, 3, 3))
        await window.draw()
        await window.move_by(4, 4)
        assert window.bounds() == Rect(4, 4, 3, 3)
        assert screen.read_cell(0, 0) == 0      # old spot erased
        assert screen.read_cell(5, 5) != 0      # new spot drawn

    def test_ids_unique(self):
        screen = Screen()
        assert Window(screen).window_id() != Window(screen).window_id()

    @async_test
    async def test_window_input_port(self):
        screen = Screen()
        window = Window(screen, Rect(0, 0, 5, 5))
        seen = []
        window.postinput(lambda e: seen.append(e))
        await window.mouse(mouse_at(2, 2))
        assert len(seen) == 1


class TestBaseWindowRouting:
    @async_test
    async def test_base_registers_with_screen(self):
        """§4.2: creating BaseW registers window::mouse with S."""
        screen = Screen(20, 10)
        base = BaseWindow(screen)
        assert screen.input.registrant_count == 1
        await screen.inject_input(mouse_at(3, 3))
        assert base.events_routed == 1

    @async_test
    async def test_event_in_child_routes_to_child(self):
        screen = Screen(20, 10)
        base = BaseWindow(screen)
        child = await base.create_window(Rect(2, 2, 5, 5))
        seen = []
        child.postinput(lambda e: seen.append(e))
        await screen.inject_input(mouse_at(4, 4))
        assert len(seen) == 1

    @async_test
    async def test_event_outside_children_goes_to_base_port(self):
        screen = Screen(20, 10)
        base = BaseWindow(screen)
        await base.create_window(Rect(2, 2, 3, 3))
        background = []
        base.postinput(lambda e: background.append(e))
        await screen.inject_input(mouse_at(15, 8))
        assert len(background) == 1

    @async_test
    async def test_topmost_window_wins(self):
        screen = Screen(20, 10)
        base = BaseWindow(screen)
        bottom = await base.create_window(Rect(2, 2, 6, 6))
        top = await base.create_window(Rect(4, 4, 6, 6))  # overlaps, created later
        hits = []
        bottom.postinput(lambda e: hits.append("bottom"))
        top.postinput(lambda e: hits.append("top"))
        await screen.inject_input(mouse_at(5, 5))  # inside both
        assert hits == ["top"]

    @async_test
    async def test_raise_window_changes_routing(self):
        screen = Screen(20, 10)
        base = BaseWindow(screen)
        first = await base.create_window(Rect(2, 2, 6, 6))
        second = await base.create_window(Rect(4, 4, 6, 6))
        hits = []
        first.postinput(lambda e: hits.append("first"))
        second.postinput(lambda e: hits.append("second"))
        assert await base.raise_window(first) is True
        await screen.inject_input(mouse_at(5, 5))
        assert hits == ["first"]

    @async_test
    async def test_keyboard_goes_to_base_port(self):
        screen = Screen(20, 10)
        base = BaseWindow(screen)
        await base.create_window(Rect(0, 0, 20, 10))  # covers everything
        keys = []
        base.postinput(lambda e: keys.append(e.key))
        await screen.inject_input(InputEvent(EventKind.KEY_DOWN, key="q", seq=1))
        assert keys == ["q"]

    @async_test
    async def test_remove_window(self):
        screen = Screen(20, 10)
        base = BaseWindow(screen)
        child = await base.create_window(Rect(2, 2, 4, 4))
        assert base.window_count() == 1
        assert await base.remove_window(child) is True
        assert base.window_count() == 0
        assert await base.remove_window(child) is False
        # Events where the window was now reach the background.
        background = []
        base.postinput(lambda e: background.append(e))
        await screen.inject_input(mouse_at(3, 3))
        assert len(background) == 1

    @async_test
    async def test_adopt_existing_window(self):
        screen = Screen(20, 10)
        base = BaseWindow(screen)
        stray = Window(screen, Rect(1, 1, 3, 3))
        assert base.adopt(stray) is True
        seen = []
        stray.postinput(lambda e: seen.append(e))
        await screen.inject_input(mouse_at(2, 2))
        assert len(seen) == 1

    @async_test
    async def test_create_window_draws_it(self):
        screen = Screen(20, 10)
        base = BaseWindow(screen)
        await base.create_window(Rect(1, 1, 4, 4))
        from repro.wm.window import DEFAULT_FILL

        assert screen.count_cells(DEFAULT_FILL) == 4  # 2x2 interior
