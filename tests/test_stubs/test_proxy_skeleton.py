"""Proxy + skeleton round trips through a fake endpoint (no sockets).

This closes the loop of §3.4 — client stub bundles, server stub
unbundles, invokes, rebundles — before the real RPC runtime exists.
"""

import asyncio
from dataclasses import dataclass
from typing import Annotated

import pytest

from repro.errors import BadCallError, BundleError
from repro.bundlers import BundlerRegistry, In, Out
from repro.bundlers.auto import structural_resolver
from repro.handles import Handle
from repro.stubs import (
    RemoteInterface,
    Ref,
    Skeleton,
    build_proxy,
    interface_spec,
)
from tests.support import async_test


@dataclass
class Point:
    x: int
    y: int
    z: int


def pt_bundler(stream, p, *extra):
    if p is None and stream.decoding:
        p = Point(0, 0, 0)
    p.x = stream.xshort(p.x)
    p.y = stream.xshort(p.y)
    p.z = stream.xshort(p.z)
    return p


class Graphics3D(RemoteInterface):
    """Figure 3.1's 3Dgraphics class, as a Python remote interface."""

    __clam_class__ = "3Dgraphics"

    def draw_point(self, thept: Annotated[Point, In(pt_bundler)]) -> None: ...
    def draw_line(self, startpt: Point, endpt: Point) -> None: ...
    def get_cursor_pos(self) -> Point: ...
    def count_drawn(self) -> int: ...
    def read_cursor(self, pos: Annotated[Ref[Point], Out(pt_bundler)]) -> bool: ...


class Graphics3DImpl(Graphics3D):
    def __init__(self):
        self.drawn = []
        self.cursor = Point(5, 6, 7)

    def draw_point(self, thept):
        self.drawn.append(("point", thept))

    def draw_line(self, startpt, endpt):
        self.drawn.append(("line", startpt, endpt))

    def get_cursor_pos(self):
        return self.cursor

    def count_drawn(self):
        return len(self.drawn)

    def read_cursor(self, pos):
        pos.value = self.cursor
        return True


class LoopbackEndpoint:
    """Fake endpoint handing bundled requests straight to a skeleton."""

    def __init__(self, skeleton):
        self.skeleton = skeleton
        self.posted = []
        self.called = []

    @property
    def registry(self):
        return self.skeleton.registry

    async def call(self, handle, method, args):
        self.called.append(method)
        reply = await self.skeleton.dispatch(method, args)
        assert reply is not None
        return reply

    async def post(self, handle, method, args):
        self.posted.append(method)
        reply = await self.skeleton.dispatch(method, args)
        assert reply is None  # async calls produce no reply


def make_pair():
    registry = BundlerRegistry()
    registry.add_resolver(structural_resolver)
    impl = Graphics3DImpl()
    skeleton = Skeleton(impl, registry)
    endpoint = LoopbackEndpoint(skeleton)
    proxy = build_proxy(Graphics3D, endpoint, Handle(oid=1, tag=1))
    return impl, endpoint, proxy


class TestInterfaceSpec:
    def test_wire_class_name(self):
        spec = interface_spec(Graphics3D)
        assert spec.class_name == "3Dgraphics"
        assert spec.version == 1

    def test_public_methods_exported(self):
        spec = interface_spec(Graphics3D)
        assert set(spec.methods) == {
            "draw_point", "draw_line", "get_cursor_pos", "count_drawn", "read_cursor",
        }

    def test_private_methods_hidden(self):
        class WithPrivate(RemoteInterface):
            def visible(self) -> int: ...
            def _hidden(self) -> int: ...

        assert set(interface_spec(WithPrivate).methods) == {"visible"}

    def test_unknown_method_raises_badcall(self):
        with pytest.raises(BadCallError):
            interface_spec(Graphics3D).method("no_such")

    def test_spec_cached(self):
        assert interface_spec(Graphics3D) is interface_spec(Graphics3D)

    def test_non_interface_rejected(self):
        with pytest.raises(BundleError):
            interface_spec(dict)

    def test_default_class_name_is_python_name(self):
        class Plain(RemoteInterface):
            def m(self) -> None: ...

        assert interface_spec(Plain).class_name == "Plain"


class TestProxySkeletonLoop:
    @async_test
    async def test_sync_call_with_return(self):
        impl, endpoint, proxy = make_pair()
        assert await proxy.get_cursor_pos() == Point(5, 6, 7)
        assert endpoint.called == ["get_cursor_pos"]

    @async_test
    async def test_async_call_is_posted(self):
        """Void methods take the asynchronous (batchable) path (§3.4)."""
        impl, endpoint, proxy = make_pair()
        await proxy.draw_point(Point(1, 2, 3))
        assert endpoint.posted == ["draw_point"]
        assert endpoint.called == []
        assert impl.drawn == [("point", Point(1, 2, 3))]

    @async_test
    async def test_multiple_params_auto_bundled(self):
        impl, endpoint, proxy = make_pair()
        await proxy.draw_line(Point(0, 0, 0), Point(1, 1, 1))
        assert impl.drawn == [("line", Point(0, 0, 0), Point(1, 1, 1))]

    @async_test
    async def test_out_param(self):
        impl, endpoint, proxy = make_pair()
        pos = Ref()
        assert await proxy.read_cursor(pos) is True
        assert pos.value == Point(5, 6, 7)

    @async_test
    async def test_out_param_requires_ref(self):
        impl, endpoint, proxy = make_pair()
        with pytest.raises(BundleError, match="Ref"):
            await proxy.read_cursor(Point(0, 0, 0))

    @async_test
    async def test_kwargs_supported(self):
        impl, endpoint, proxy = make_pair()
        await proxy.draw_line(startpt=Point(0, 0, 0), endpt=Point(2, 2, 2))
        assert impl.drawn[0][2] == Point(2, 2, 2)

    @async_test
    async def test_unknown_kwarg_rejected(self):
        impl, endpoint, proxy = make_pair()
        with pytest.raises(BundleError, match="unknown"):
            await proxy.draw_point(wrong=Point(0, 0, 0))

    @async_test
    async def test_missing_argument_rejected(self):
        impl, endpoint, proxy = make_pair()
        with pytest.raises(BundleError, match="missing"):
            await proxy.draw_line(Point(0, 0, 0))

    @async_test
    async def test_too_many_positional_rejected(self):
        impl, endpoint, proxy = make_pair()
        with pytest.raises(BundleError):
            await proxy.count_drawn(1)

    @async_test
    async def test_duplicate_positional_and_keyword_rejected(self):
        impl, endpoint, proxy = make_pair()
        with pytest.raises(BundleError, match="duplicate"):
            await proxy.draw_line(Point(0, 0, 0), startpt=Point(1, 1, 1),
                                  endpt=Point(2, 2, 2))

    @async_test
    async def test_state_accumulates_across_calls(self):
        impl, endpoint, proxy = make_pair()
        await proxy.draw_point(Point(1, 1, 1))
        await proxy.draw_point(Point(2, 2, 2))
        assert await proxy.count_drawn() == 2

    @async_test
    async def test_async_implementation_methods(self):
        class AsyncIface(RemoteInterface):
            def compute(self, x: int) -> int: ...

        class AsyncImpl(AsyncIface):
            async def compute(self, x):
                await asyncio.sleep(0)
                return x * 2

        registry = BundlerRegistry()
        registry.add_resolver(structural_resolver)
        endpoint = LoopbackEndpoint(Skeleton(AsyncImpl(), registry))
        proxy = build_proxy(AsyncIface, endpoint, Handle(oid=1, tag=1))
        assert await proxy.compute(21) == 42

    @async_test
    async def test_skeleton_missing_method_impl(self):
        class Iface(RemoteInterface):
            def declared(self) -> int: ...

        class Incomplete(RemoteInterface):
            __clam_class__ = "Iface"

        registry = BundlerRegistry()
        registry.add_resolver(structural_resolver)
        skeleton = Skeleton(Incomplete(), registry, spec=interface_spec(Iface))
        with pytest.raises(BadCallError):
            await skeleton.dispatch("declared", b"")

    def test_proxy_class_cached(self):
        from repro.stubs.client import proxy_class_for

        assert proxy_class_for(Graphics3D) is proxy_class_for(Graphics3D)

    def test_proxy_repr_mentions_class(self):
        _impl, _endpoint, proxy = make_pair()
        assert "3Dgraphics" in repr(proxy)
