"""Interface inheritance and declaration-vs-implementation skew."""

import pytest

from repro.errors import BadCallError
from repro.stubs import RemoteInterface, interface_spec


class Shape(RemoteInterface):
    def area(self) -> int: ...
    def name(self) -> str: ...


class Rectangle(Shape):
    """Extends the interface with new declarations."""

    def resize(self, width: int, height: int) -> None: ...


class RectangleImpl(Rectangle):
    def __init__(self):
        self.width, self.height = 2, 3

    def area(self):
        return self.width * self.height

    def name(self):
        return "rectangle"

    def resize(self, width, height):
        self.width, self.height = width, height


class TestInheritance:
    def test_subinterface_includes_inherited_methods(self):
        spec = interface_spec(Rectangle)
        assert set(spec.methods) == {"area", "name", "resize"}

    def test_implementation_spec_follows_declarations(self):
        spec = interface_spec(RectangleImpl)
        assert set(spec.methods) == {"area", "name", "resize"}
        # Signatures derived from the annotated declarations, not the
        # unannotated bodies.
        assert spec.methods["resize"].params[0].name == "width"

    def test_wire_name_defaults_per_class(self):
        assert interface_spec(Shape).class_name == "Shape"
        assert interface_spec(Rectangle).class_name == "Rectangle"

    def test_override_with_reannotation_wins(self):
        class Widened(Shape):
            def area(self) -> float: ...  # re-declared with a new type

        spec = interface_spec(Widened)
        assert spec.methods["area"].return_type is float

    def test_clam_local_inherited(self):
        class Base(RemoteInterface):
            __clam_local__ = ("wire_up",)

            def wire_up(self, anything) -> None: ...
            def remote_method(self) -> int: ...

        class Child(Base):
            def extra(self) -> int: ...

        spec = interface_spec(Child)
        assert "wire_up" not in spec.methods
        assert set(spec.methods) == {"remote_method", "extra"}


class TestSkew:
    def test_unknown_method_in_spec(self):
        with pytest.raises(BadCallError):
            interface_spec(Shape).method("perimeter")

    def test_version_attribute_flows_into_spec(self):
        class V3(RemoteInterface):
            __clam_version__ = 3

            def m(self) -> int: ...

        assert interface_spec(V3).version == 3
