"""Tests for signature derivation and marshalling (paper §3.2, §3.4).

The 3Dgraphics class of Figure 3.1 is recreated here: in-place
bundlers, typedef-registered bundlers, const (In) parameters, and an
array bundler taking a sibling length parameter.
"""

from dataclasses import dataclass
from typing import Annotated, Optional

import pytest

from repro.errors import BundleError
from repro.bundlers import Bundled, BundlerRegistry, In, InOut, Out
from repro.bundlers.auto import structural_resolver
from repro.stubs import MethodSignature, Ref


@dataclass
class Point:
    x: int
    y: int
    z: int


def pt_bundler(stream, p, *extra):
    """Figure 3.2's point bundler, translated line for line."""
    if p is None and stream.decoding:
        p = Point(0, 0, 0)
    p.x = stream.xshort(p.x)
    p.y = stream.xshort(p.y)
    p.z = stream.xshort(p.z)
    return p


def pt_array_bundler(stream, pts, number):
    """Figure 3.1's array bundler: length arrives as a sibling parameter."""
    if stream.encoding:
        if len(pts) != number:
            raise BundleError(f"array length {len(pts)} != number {number}")
        for p in pts:
            pt_bundler(stream, p)
        return pts
    return [pt_bundler(stream, None) for _ in range(number)]


def fresh_registry():
    registry = BundlerRegistry()
    registry.add_resolver(structural_resolver)
    return registry


def roundtrip_request(signature, registry, values):
    bound = signature.bind(registry)
    return bound.unbundle_request(bound.bundle_request(values))


class TestDerivation:
    def test_simple_procedure(self):
        def draw_point(self, thept: Point) -> None: ...

        sig = MethodSignature.from_callable(draw_point)
        assert sig.name == "draw_point"
        assert [p.name for p in sig.params] == ["thept"]
        assert not sig.returns_value
        assert sig.is_async_eligible

    def test_value_returning_method_not_batchable(self):
        def get_cursor_pos(self) -> Point: ...

        sig = MethodSignature.from_callable(get_cursor_pos)
        assert sig.returns_value
        assert not sig.is_async_eligible

    def test_out_param_not_batchable(self):
        def read_pos(self, pos: Annotated[Ref[Point], Out(pt_bundler)]) -> None: ...

        sig = MethodSignature.from_callable(read_pos)
        assert not sig.is_async_eligible
        assert sig.has_out_params

    def test_unannotated_param_rejected(self):
        def bad(self, x) -> None: ...

        with pytest.raises(BundleError, match="annotation"):
            MethodSignature.from_callable(bad)

    def test_missing_return_annotation_rejected(self):
        def bad(self, x: int): ...

        with pytest.raises(BundleError, match="return"):
            MethodSignature.from_callable(bad)

    def test_var_args_rejected(self):
        def bad(self, *args: int) -> None: ...

        with pytest.raises(BundleError, match="args"):
            MethodSignature.from_callable(bad)

    def test_out_param_must_be_ref(self):
        def bad(self, pos: Annotated[Point, Out(pt_bundler)]) -> None: ...

        with pytest.raises(BundleError, match="Ref"):
            MethodSignature.from_callable(bad)

    def test_extra_param_must_precede(self):
        def bad(
            self,
            pts: Annotated[list[Point], In(pt_array_bundler, "number")],
            number: int,
        ) -> None: ...

        with pytest.raises(BundleError, match="earlier"):
            MethodSignature.from_callable(bad)

    def test_return_cannot_be_out(self):
        def bad(self) -> Annotated[int, Out()]: ...

        with pytest.raises(BundleError, match="out"):
            MethodSignature.from_callable(bad)

    def test_standalone_function_skip_first_false(self):
        def free(x: int) -> int: ...

        sig = MethodSignature.from_callable(free, skip_first=False)
        assert [p.name for p in sig.params] == ["x"]


class TestRequestMarshalling:
    def test_auto_bundled_params(self):
        def move(self, dx: int, dy: int) -> None: ...

        sig = MethodSignature.from_callable(move)
        values = roundtrip_request(sig, fresh_registry(), {"dx": 3, "dy": -4})
        assert values == {"dx": 3, "dy": -4}

    def test_inplace_bundler_used(self):
        def draw_point(self, thept: Annotated[Point, In(pt_bundler)]) -> None: ...

        sig = MethodSignature.from_callable(draw_point)
        values = roundtrip_request(sig, fresh_registry(), {"thept": Point(1, 2, 3)})
        assert values["thept"] == Point(1, 2, 3)

    def test_inplace_wins_over_typedef(self):
        """§3.2: "the in place bundler will be used"."""
        def tiny(stream, p, *extra):
            if stream.encoding:
                stream.xshort(p.x)
                return p
            return Point(stream.xshort(), -1, -1)

        def draw(self, thept: Annotated[Point, In(tiny)]) -> None: ...

        registry = fresh_registry()
        registry.register(Point, pt_bundler)  # typedef form
        sig = MethodSignature.from_callable(draw)
        values = roundtrip_request(sig, registry, {"thept": Point(9, 8, 7)})
        assert values["thept"] == Point(9, -1, -1)  # tiny, not pt_bundler

    def test_typedef_used_when_no_inplace(self):
        def draw(self, thept: Point) -> None: ...

        registry = fresh_registry()
        registry.register(Point, pt_bundler)
        sig = MethodSignature.from_callable(draw)
        values = roundtrip_request(sig, registry, {"thept": Point(4, 5, 6)})
        assert values["thept"] == Point(4, 5, 6)

    def test_sibling_length_parameter(self):
        """Figure 3.1's drawpoints: bundler receives the 'number' value."""
        def draw_points(
            self,
            number: int,
            pts: Annotated[list[Point], In(pt_array_bundler, "number")],
        ) -> None: ...

        sig = MethodSignature.from_callable(draw_points)
        pts = [Point(i, i, i) for i in range(3)]
        values = roundtrip_request(sig, fresh_registry(), {"number": 3, "pts": pts})
        assert values["pts"] == pts

    def test_sibling_length_mismatch_caught(self):
        def draw_points(
            self,
            number: int,
            pts: Annotated[list[Point], In(pt_array_bundler, "number")],
        ) -> None: ...

        sig = MethodSignature.from_callable(draw_points)
        bound = sig.bind(fresh_registry())
        with pytest.raises(BundleError):
            bound.bundle_request({"number": 5, "pts": [Point(0, 0, 0)]})


class TestReplyMarshalling:
    def test_return_value(self):
        def get_cursor_pos(self) -> Annotated[Point, Bundled(pt_bundler)]: ...

        sig = MethodSignature.from_callable(get_cursor_pos)
        bound = sig.bind(fresh_registry())
        payload = bound.bundle_reply(Point(10, 20, 30), {})
        assert bound.unbundle_reply(payload, {}) == Point(10, 20, 30)

    def test_out_param_written_back(self):
        def read_pos(self, pos: Annotated[Ref[Point], Out(pt_bundler)]) -> bool: ...

        sig = MethodSignature.from_callable(read_pos)
        bound = sig.bind(fresh_registry())

        # Server side: out params materialize as empty Refs.
        server_values = bound.unbundle_request(bound.bundle_request({"pos": Ref()}))
        assert isinstance(server_values["pos"], Ref)
        server_values["pos"].value = Point(7, 7, 7)
        payload = bound.bundle_reply(True, server_values)

        # Client side: the caller's Ref receives the final value.
        client_ref = Ref()
        result = bound.unbundle_reply(payload, {"pos": client_ref})
        assert result is True
        assert client_ref.value == Point(7, 7, 7)

    def test_inout_param_travels_both_ways(self):
        def normalize(self, v: Annotated[Ref[Point], InOut(pt_bundler)]) -> None:
            ...

        sig = MethodSignature.from_callable(normalize)
        assert not sig.is_async_eligible
        bound = sig.bind(fresh_registry())

        request = bound.bundle_request({"v": Ref(Point(2, 4, 6))})
        server_values = bound.unbundle_request(request)
        assert server_values["v"].value == Point(2, 4, 6)
        server_values["v"].value = Point(1, 2, 3)
        reply = bound.bundle_reply(None, server_values)

        ref = Ref(Point(2, 4, 6))
        bound.unbundle_reply(reply, {"v": ref})
        assert ref.value == Point(1, 2, 3)

    def test_void_reply_is_empty(self):
        def fire(self, n: int) -> None: ...

        sig = MethodSignature.from_callable(fire)
        bound = sig.bind(fresh_registry())
        assert bound.bundle_reply(None, {"n": 1}) == b""

    def test_optional_return(self):
        def find(self, key: str) -> Optional[int]: ...

        sig = MethodSignature.from_callable(find)
        bound = sig.bind(fresh_registry())
        assert bound.unbundle_reply(bound.bundle_reply(None, {"key": "k"}),
                                    {"key": "k"}) is None
        assert bound.unbundle_reply(bound.bundle_reply(5, {"key": "k"}),
                                    {"key": "k"}) == 5

    def test_bind_cached_per_registry(self):
        def get(self) -> int: ...

        sig = MethodSignature.from_callable(get)
        registry = fresh_registry()
        assert sig.bind(registry) is sig.bind(registry)
        assert sig.bind(fresh_registry()) is not sig.bind(registry)
