"""Tests for the lossy link and go-back-N ARQ endpoint.

The invariant: whatever the (finite) loss pattern, every payload sent
reliably is delivered exactly once, in order.
"""

import asyncio

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.netproto import ArqEndpoint, LossyLink
from repro.netproto.arq import ArqError
from repro.netproto.link import Direction, LinkError
from tests.support import async_test


def build_pair(link: LossyLink, *, window=8, timeout=0.01):
    """Two ARQ endpoints joined by ``link``; returns (a, b, a_rx, b_rx)."""
    a_rx, b_rx = [], []

    async def deliver_a(payload):
        a_rx.append(payload)

    async def deliver_b(payload):
        b_rx.append(payload)

    a = ArqEndpoint(link.send_from_a, deliver_a,
                    window=window, retransmit_timeout=timeout)
    b = ArqEndpoint(link.send_from_b, deliver_b,
                    window=window, retransmit_timeout=timeout)
    link.attach_a(a.on_wire)
    link.attach_b(b.on_wire)
    return a, b, a_rx, b_rx


class TestLossyLink:
    @async_test
    async def test_lossless_by_default(self):
        link = LossyLink()
        seen = []

        async def receive(frame):
            seen.append(frame)

        link.attach_b(receive)
        assert await link.send_from_a("one") is True
        assert seen == ["one"]
        assert link.stats()["dropped"] == 0

    @async_test
    async def test_drop_every_nth(self):
        link = LossyLink(drop_every_nth=3)
        seen = []

        async def receive(frame):
            seen.append(frame)

        link.attach_b(receive)
        outcomes = [await link.send_from_a(f"f{i}") for i in range(9)]
        assert outcomes.count(False) == 3
        assert len(seen) == 6

    @async_test
    async def test_directional_drop_policy(self):
        link = LossyLink(
            drop_fn=lambda direction, index, frame: direction is Direction.A_TO_B
        )
        a_seen, b_seen = [], []

        async def ra(frame):
            a_seen.append(frame)

        async def rb(frame):
            b_seen.append(frame)

        link.attach_a(ra)
        link.attach_b(rb)
        assert await link.send_from_a("lost") is False
        assert await link.send_from_b("kept") is True
        assert b_seen == [] and a_seen == ["kept"]

    @async_test
    async def test_unattached_raises(self):
        with pytest.raises(LinkError):
            await LossyLink().send_from_a("x")

    def test_conflicting_policies_rejected(self):
        with pytest.raises(LinkError):
            LossyLink(drop_fn=lambda d, i, f: False, drop_every_nth=2)


class TestArqLossless:
    @async_test
    async def test_in_order_delivery(self):
        a, b, a_rx, b_rx = build_pair(LossyLink())
        for i in range(20):
            await a.send_reliable(f"p{i}")
        await a.wait_all_acked()
        assert b_rx == [f"p{i}" for i in range(20)]
        assert a.stats()["retransmissions"] == 0
        await a.close()
        await b.close()

    @async_test
    async def test_bidirectional(self):
        a, b, a_rx, b_rx = build_pair(LossyLink())
        await a.send_reliable("to-b")
        await b.send_reliable("to-a")
        await a.wait_all_acked()
        await b.wait_all_acked()
        assert b_rx == ["to-b"] and a_rx == ["to-a"]
        await a.close()
        await b.close()

    @async_test
    async def test_payload_may_contain_delimiters(self):
        a, b, a_rx, b_rx = build_pair(LossyLink())
        await a.send_reliable("m|0|3|chat|weird|payload")
        await a.wait_all_acked()
        assert b_rx == ["m|0|3|chat|weird|payload"]
        await a.close()
        await b.close()

    @async_test
    async def test_window_backpressure(self):
        """With no acks coming back, the window caps in-flight data."""
        link = LossyLink(drop_fn=lambda d, i, f: d is Direction.B_TO_A)  # acks die
        a, b, a_rx, b_rx = build_pair(link, window=3, timeout=0.005)
        for _ in range(3):
            await a.send_reliable("x")
        blocked = asyncio.get_running_loop().create_task(a.send_reliable("overflow"))
        await asyncio.sleep(0.02)
        assert not blocked.done()  # waiting for the window
        blocked.cancel()
        try:
            await blocked
        except asyncio.CancelledError:
            pass
        await a.close()
        await b.close()


class TestArqUnderLoss:
    @pytest.mark.parametrize("nth", [2, 3, 5])
    @async_test
    async def test_all_delivered_despite_periodic_loss(self, nth):
        link = LossyLink(drop_every_nth=nth)
        a, b, a_rx, b_rx = build_pair(link, window=4, timeout=0.01)
        payloads = [f"msg-{i}" for i in range(15)]
        for payload in payloads:
            await a.send_reliable(payload)
        await a.wait_all_acked()
        assert b_rx == payloads
        assert a.stats()["retransmissions"] > 0
        assert link.stats()["dropped"] > 0
        await a.close()
        await b.close()

    @async_test
    async def test_duplicates_never_delivered_twice(self):
        """Retransmissions after a lost ACK arrive as duplicates; the
        receiver must discard them."""
        # Drop only ACK frames for a while: data arrives, acks do not.
        dropped_acks = {1, 2, 3}
        link = LossyLink(
            drop_fn=lambda d, i, f: d is Direction.B_TO_A and i in dropped_acks
        )
        a, b, a_rx, b_rx = build_pair(link, window=2, timeout=0.01)
        for i in range(6):
            await a.send_reliable(f"m{i}")
        await a.wait_all_acked()
        assert b_rx == [f"m{i}" for i in range(6)]
        assert b.stats()["discarded"] >= 1  # the duplicates
        await a.close()
        await b.close()

    @given(
        drops=st.sets(st.integers(min_value=0, max_value=60), max_size=25),
        count=st.integers(min_value=1, max_value=12),
    )
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_any_finite_loss_pattern_recovers(self, drops, count):
        """Hypothesis: drop an arbitrary finite set of data-frame
        transmissions; every payload still arrives exactly once, in
        order (retransmissions eventually miss the drop set)."""

        async def scenario():
            link = LossyLink(
                drop_fn=lambda d, i, f: d is Direction.A_TO_B and i in drops
            )
            a, b, a_rx, b_rx = build_pair(link, window=4, timeout=0.005)
            payloads = [f"m{i}" for i in range(count)]
            for payload in payloads:
                await a.send_reliable(payload)
            await a.wait_all_acked(timeout=10)
            assert b_rx == payloads
            await a.close()
            await b.close()

        asyncio.run(asyncio.wait_for(scenario(), timeout=30))


class TestArqValidation:
    @async_test
    async def test_bad_frames_rejected(self):
        a, b, a_rx, b_rx = build_pair(LossyLink())
        with pytest.raises(ArqError):
            await a.on_wire("Z|1|huh")
        with pytest.raises(ArqError):
            await a.on_wire("D|notanumber|x")
        with pytest.raises(ArqError):
            await a.on_wire("A|-3")
        await a.close()
        await b.close()

    def test_bad_window(self):
        with pytest.raises(ArqError):
            ArqEndpoint(lambda f: None, lambda p: None, window=0)

    @async_test
    async def test_send_after_close(self):
        a, b, a_rx, b_rx = build_pair(LossyLink())
        await a.close()
        with pytest.raises(ArqError):
            await a.send_reliable("late")
        await b.close()


class TestArqStatsAndMetrics:
    """Coverage for stats(), RTT estimation, and registry mirroring."""

    @async_test
    async def test_stats_keys_and_counts_lossless(self):
        a, b, _a_rx, b_rx = build_pair(LossyLink())
        for i in range(5):
            await a.send_reliable(f"p{i}")
        await a.wait_all_acked()
        stats = a.stats()
        assert stats["sent"] == 5
        assert stats["retransmissions"] == 0
        assert stats["delivered"] == 0       # a received nothing
        assert stats["outstanding"] == 0
        assert b.stats()["delivered"] == 5
        assert b.stats()["acks_sent"] == 5
        assert len(b_rx) == 5
        await a.close()
        await b.close()

    @async_test
    async def test_rtt_sampled_on_clean_exchanges(self):
        a, b, *_ = build_pair(LossyLink())
        for i in range(4):
            await a.send_reliable(f"p{i}")
        await a.wait_all_acked()
        stats = a.stats()
        assert stats["rtt_samples"] == 4
        assert stats["mean_rtt_us"] >= 0
        assert a.mean_rtt_us >= 0
        assert a.last_rtt_us >= 0
        await a.close()
        await b.close()

    @async_test
    async def test_karns_rule_excludes_retransmitted_frames(self):
        """On a lossy link, retransmitted frames give no RTT sample —
        their ACK cannot be matched to a specific transmission."""
        link = LossyLink(drop_every_nth=2)  # drop frames 2, 4, 6, ...
        a, b, *_ = build_pair(link, timeout=0.005)
        for i in range(6):
            await a.send_reliable(f"p{i}")
        await a.wait_all_acked()
        stats = a.stats()
        assert stats["retransmissions"] > 0
        # every sample that exists came from a never-retransmitted frame
        assert stats["rtt_samples"] < stats["sent"] + stats["retransmissions"]
        await a.close()
        await b.close()

    @async_test
    async def test_metrics_registry_mirrors_counters_lossy(self):
        """The retransmit counter and RTT histogram reach the shared
        registry; the lossy-link scenario of the observability PR."""
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        link = LossyLink(drop_every_nth=3)
        a_rx, b_rx = [], []

        async def deliver_a(payload):
            a_rx.append(payload)

        async def deliver_b(payload):
            b_rx.append(payload)

        a = ArqEndpoint(link.send_from_a, deliver_a, window=4,
                        retransmit_timeout=0.005, metrics=registry)
        b = ArqEndpoint(link.send_from_b, deliver_b, window=4,
                        retransmit_timeout=0.005, metrics=registry,
                        metrics_prefix="arq.b")
        link.attach_a(a.on_wire)
        link.attach_b(b.on_wire)
        for i in range(10):
            await a.send_reliable(f"p{i}")
        await a.wait_all_acked()
        assert b_rx == [f"p{i}" for i in range(10)]
        snap = registry.snapshot()
        assert snap["arq.frames_sent"] == 10.0
        # the drops forced retransmissions, and they were counted
        assert snap["arq.retransmissions"] >= 1.0
        assert snap["arq.retransmissions"] == float(a.retransmissions)
        # RTT histogram exists whenever any clean sample was taken
        if a.rtt_samples:
            assert snap["arq.rtt_us.count"] == float(a.rtt_samples)
            assert snap["arq.rtt_us.mean"] > 0
        await a.close()
        await b.close()
