"""The protocol stack across address spaces (paper §1's scenario).

The device and the loaded transport/session layers live in the server;
application layers live in clients and receive their channels' traffic
as distributed upcalls — per-fragment traffic never crosses the wire.
"""

import itertools


from repro import ClamClient, ClamServer
from repro.netproto import NetworkDevice, SessionLayer, TransportLayer, fragment_message
from repro.tasks import TaskPool
from tests.support import async_test, eventually

_ids = itertools.count(1)

STACK_MODULE = '''
from repro.netproto.transport import TransportLayer
from repro.netproto.session import SessionLayer

__clam_exports__ = ["TransportLayer", "SessionLayer"]
'''


async def start_stack():
    server = ClamServer()
    device = NetworkDevice()
    device.use_tasks(TaskPool(max_tasks=1, name="device"))
    server.publish("device", device)
    address = await server.start(f"memory://netproto-{next(_ids)}")

    builder = await ClamClient.connect(address)
    await builder.load_module("stack", STACK_MODULE)
    transport = await builder.create(TransportLayer, class_name="netproto.transport")
    session = await builder.create(SessionLayer, class_name="netproto.session")
    device_proxy = await builder.lookup(NetworkDevice, "device")
    await transport.attach(device_proxy)
    await session.attach(transport)
    await builder.publish("session", session)
    return server, device, address, builder, session


async def wire_in(device, msgid, channel, message, chunk=8):
    for fragment in fragment_message(msgid, channel, message, chunk=chunk):
        await device.pump(fragment.encode())
    await device.drain()


class TestDistributedStack:
    @async_test
    async def test_application_in_client_gets_messages(self):
        server, device, address, builder, session = await start_stack()
        inbox = []
        await session.register_channel("chat", lambda m: inbox.append(m))
        await wire_in(device, "m1", "chat", "twelve fragments of text here!", chunk=3)
        await eventually(lambda: inbox == ["twelve fragments of text here!"])
        # One message upcall crossed; the ~10 fragments stayed local.
        assert builder.upcalls_handled == 1
        await builder.close()
        await server.shutdown()

    @async_test
    async def test_two_clients_two_channels(self):
        server, device, address, builder, session = await start_stack()
        other = await ClamClient.connect(address)
        session_other = await other.lookup(SessionLayer, "session")

        chat, logs = [], []
        await session.register_channel("chat", lambda m: chat.append(m))
        await session_other.register_channel("logs", lambda m: logs.append(m))

        await wire_in(device, "m1", "chat", "for the builder")
        await wire_in(device, "m2", "logs", "for the other client")
        await eventually(lambda: chat == ["for the builder"])
        await eventually(lambda: logs == ["for the other client"])
        assert builder.upcalls_handled == 1
        assert other.upcalls_handled == 1
        await builder.close()
        await other.close()
        await server.shutdown()

    @async_test
    async def test_stats_visible_remotely(self):
        server, device, address, builder, session = await start_stack()
        await session.register_channel("chat", lambda m: None)
        await wire_in(device, "m1", "chat", "abcdefgh", chunk=2)
        stats = await session.stats()
        assert stats["routed"] >= 1
        await builder.close()
        await server.shutdown()
