"""Tests for the frame format."""

import pytest
from hypothesis import given, strategies as st

from repro.netproto.frames import Fragment, FrameError, fragment_message


class TestFragment:
    def test_encode_parse_roundtrip(self):
        fragment = Fragment("m1", 0, 3, "chat", "hello")
        assert Fragment.parse(fragment.encode()) == fragment

    def test_payload_may_contain_pipes(self):
        fragment = Fragment("m1", 0, 1, "chat", "a|b|c")
        assert Fragment.parse(fragment.encode()).payload == "a|b|c"

    def test_empty_payload(self):
        fragment = Fragment("m1", 0, 1, "", "")
        assert Fragment.parse(fragment.encode()) == fragment

    @pytest.mark.parametrize("frame", [
        "too|few|fields",
        "m1|x|3|chat|data",       # non-numeric seq
        "m1|0|y|chat|data",       # non-numeric total
        "m1|5|3|chat|data",       # seq out of range
        "m1|0|0|chat|data",       # zero total
        "|0|1|chat|data",         # empty msgid
    ])
    def test_malformed_rejected(self, frame):
        with pytest.raises(FrameError):
            Fragment.parse(frame)

    def test_bad_msgid_at_construction(self):
        with pytest.raises(FrameError):
            Fragment("has|pipe", 0, 1, "c", "p")

    def test_bad_channel_at_construction(self):
        with pytest.raises(FrameError):
            Fragment("m", 0, 1, "ch|an", "p")


class TestFragmentMessage:
    def test_chunking(self):
        fragments = fragment_message("m1", "chat", "abcdefghij", chunk=4)
        assert [f.payload for f in fragments] == ["abcd", "efgh", "ij"]
        assert all(f.total == 3 for f in fragments)
        assert [f.seq for f in fragments] == [0, 1, 2]

    def test_empty_message_is_one_fragment(self):
        fragments = fragment_message("m1", "chat", "")
        assert len(fragments) == 1
        assert fragments[0].payload == ""

    def test_bad_chunk(self):
        with pytest.raises(FrameError):
            fragment_message("m1", "c", "data", chunk=0)

    @given(st.text(max_size=200).filter(lambda s: True),
           st.integers(min_value=1, max_value=32))
    def test_reassembles_to_original(self, message, chunk):
        fragments = fragment_message("m", "c", message, chunk=chunk)
        rebuilt = "".join(f.payload for f in sorted(fragments, key=lambda f: f.seq))
        assert rebuilt == message
        # And every fragment survives the wire format.
        for fragment in fragments:
            assert Fragment.parse(fragment.encode()) == fragment
