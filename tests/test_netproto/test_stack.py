"""Tests for the device → transport → session stack, all local."""

from repro.netproto import (
    NetworkDevice,
    SessionLayer,
    TransportLayer,
    fragment_message,
)
from tests.support import async_test


async def build_stack(**device_kwargs):
    device = NetworkDevice(**device_kwargs)
    transport = TransportLayer()
    session = SessionLayer()
    await transport.attach(device)
    await session.attach(transport)
    return device, transport, session


async def send(device, msgid, channel, message, chunk=8, order=None):
    fragments = fragment_message(msgid, channel, message, chunk=chunk)
    if order is not None:
        fragments = [fragments[i] for i in order]
    for fragment in fragments:
        await device.pump(fragment.encode())
    return len(fragments)


class TestReassembly:
    @async_test
    async def test_in_order_message(self):
        device, transport, session = await build_stack()
        inbox = []
        session.register_channel("chat", inbox.append)
        await send(device, "m1", "chat", "hello layered world")
        assert inbox == ["hello layered world"]
        assert transport.messages_completed == 1

    @async_test
    async def test_out_of_order_fragments(self):
        device, transport, session = await build_stack()
        inbox = []
        session.register_channel("chat", inbox.append)
        await send(device, "m1", "chat", "abcdefghijkl", chunk=4, order=[2, 0, 1])
        assert inbox == ["abcdefghijkl"]

    @async_test
    async def test_interleaved_messages(self):
        device, transport, session = await build_stack()
        inbox = []
        session.register_channel("chat", inbox.append)
        a = fragment_message("a", "chat", "first message!", chunk=4)
        b = fragment_message("b", "chat", "second one", chunk=4)
        for x, y in zip(a, b):
            await device.pump(x.encode())
            await device.pump(y.encode())
        for rest in a[len(b):] or b[len(a):]:
            await device.pump(rest.encode())
        assert sorted(inbox) == ["first message!", "second one"]

    @async_test
    async def test_duplicates_suppressed(self):
        device, transport, session = await build_stack()
        inbox = []
        session.register_channel("chat", inbox.append)
        fragments = fragment_message("m1", "chat", "abcdefgh", chunk=4)
        await device.pump(fragments[0].encode())
        await device.pump(fragments[0].encode())  # dup
        await device.pump(fragments[1].encode())
        assert inbox == ["abcdefgh"]
        assert transport.duplicates == 1

    @async_test
    async def test_partial_eviction_bounds_state(self):
        device, transport, session = await build_stack()
        transport._max_partials = 4
        for i in range(10):
            # First fragment only: never completes.
            fragment = fragment_message(f"m{i}", "chat", "xxxxxxxxxx", chunk=4)[0]
            await device.pump(fragment.encode())
        assert len(transport._partials) <= 4
        assert transport.partials_evicted == 6


class TestDeviceFaults:
    @async_test
    async def test_malformed_frames_counted_and_dropped(self):
        device, transport, session = await build_stack()
        inbox = []
        session.register_channel("chat", inbox.append)
        await device.pump("garbage")
        await send(device, "m1", "chat", "ok")
        assert device.frames_malformed == 1
        assert inbox == ["ok"]

    @async_test
    async def test_lossy_link_loses_messages_not_the_stack(self):
        device, transport, session = await build_stack(drop_every_nth=4)
        inbox = []
        session.register_channel("chat", inbox.append)
        for i in range(6):
            await send(device, f"m{i}", "chat", "abcdefghijkl", chunk=4)  # 3 frames each
        # 18 frames, every 4th dropped → some messages incomplete.
        assert device.frames_dropped > 0
        assert 0 < len(inbox) < 6
        stats = transport.stats()
        assert stats["completed"] == len(inbox)
        assert stats["partials"] > 0

    @async_test
    async def test_frames_queue_until_transport_attaches(self):
        device = NetworkDevice()
        await send(device, "early", "chat", "queued frames")
        assert device.stats()["queued"] > 0
        transport = TransportLayer()
        session = SessionLayer()
        inbox = []
        session.register_channel("chat", inbox.append)
        await session.attach(transport)
        await transport.attach(device)
        # A later frame triggers replay of the backlog.
        await send(device, "later", "chat", "live")
        assert sorted(inbox) == ["live", "queued frames"]


class TestReliableStackOverLossyWire:
    @async_test
    async def test_arq_under_the_device_recovers_all_messages(self):
        """The full composition: a 1-in-3-lossy wire, ARQ restoring the
        reliable in-order frame guarantee, and the fragment/session
        stack above seeing NO loss — contrast with
        ``test_lossy_link_loses_messages_not_the_stack`` where the same
        loss with no ARQ loses messages."""
        from repro.netproto import ArqEndpoint, LossyLink, fragment_message

        device, transport, session = await build_stack()
        inbox = []
        session.register_channel("chat", inbox.append)

        link = LossyLink(drop_every_nth=3)

        # Side A: the sender.  Side B: feeds surviving frames upward
        # into the protocol stack's device.
        async def deliver_to_stack(payload):
            await device.pump(payload)

        async def discard(payload):
            pass

        sender = ArqEndpoint(link.send_from_a, discard,
                             window=4, retransmit_timeout=0.01)
        receiver = ArqEndpoint(link.send_from_b, deliver_to_stack,
                               window=4, retransmit_timeout=0.01)
        link.attach_a(sender.on_wire)
        link.attach_b(receiver.on_wire)

        messages = [f"message number {i} with enough text to fragment"
                    for i in range(5)]
        for i, message in enumerate(messages):
            for fragment in fragment_message(f"m{i}", "chat", message, chunk=10):
                await sender.send_reliable(fragment.encode())
        await sender.wait_all_acked()

        assert inbox == messages                       # nothing lost
        assert transport.stats()["partials"] == 0      # nothing stuck
        assert link.stats()["dropped"] > 0             # the wire did drop
        assert sender.stats()["retransmissions"] > 0   # ARQ did work
        await sender.close()
        await receiver.close()


class TestSessionRouting:
    @async_test
    async def test_channels_isolated(self):
        device, transport, session = await build_stack()
        chat, logs = [], []
        session.register_channel("chat", chat.append)
        session.register_channel("logs", logs.append)
        await send(device, "m1", "chat", "hi")
        await send(device, "m2", "logs", "boot ok")
        assert chat == ["hi"]
        assert logs == ["boot ok"]
        assert session.channel_names() == ["chat", "logs"]

    @async_test
    async def test_unknown_channel_dropped_and_counted(self):
        device, transport, session = await build_stack()
        await send(device, "m1", "nowhere", "lost")
        assert session.stats()["unrouted"] == 1

    @async_test
    async def test_multiple_registrants_per_channel(self):
        device, transport, session = await build_stack()
        a, b = [], []
        session.register_channel("chat", a.append)
        session.register_channel("chat", b.append)
        await send(device, "m1", "chat", "both")
        assert a == ["both"] and b == ["both"]

    @async_test
    async def test_async_application_handler(self):
        import asyncio

        device, transport, session = await build_stack()
        inbox = []

        async def handler(message):
            await asyncio.sleep(0)
            inbox.append(message)

        session.register_channel("chat", handler)
        await send(device, "m1", "chat", "async ok")
        assert inbox == ["async ok"]
