"""End-to-end RPC runtime tests: proxy → connection → wire → dispatcher.

Builds a minimal server loop (dispatcher over a message channel) — the
full CLAM server adds sessions, loading, and upcalls on top of exactly
this path.
"""

import asyncio
import itertools

import pytest

from repro.errors import (
    ConnectionClosedError,
    ForgedHandleError,
    RemoteError,
)
from repro.bundlers import BundlerRegistry
from repro.bundlers.auto import structural_resolver
from repro.handles import Handle
from repro.ipc import MessageChannel, dial, serve
from repro.rpc import Dispatcher, RpcConnection
from repro.stubs import RemoteInterface, build_proxy
from tests.support import async_test, eventually

_counter = itertools.count(1)


class Counter(RemoteInterface):
    def add(self, amount: int) -> None: ...
    def total(self) -> int: ...
    def fail(self, message: str) -> int: ...


class CounterImpl(Counter):
    def __init__(self):
        self.value = 0
        self.log = []

    def add(self, amount):
        self.value += amount
        self.log.append(amount)

    def total(self):
        return self.value

    def fail(self, message):
        raise ValueError(message)


def fresh_registry():
    registry = BundlerRegistry()
    registry.add_resolver(structural_resolver)
    return registry


async def start_server(url=None):
    """Start a dispatcher-backed server; returns (impl, handle, dial_url, listener)."""
    registry = fresh_registry()
    dispatcher = Dispatcher(registry)
    impl = CounterImpl()
    handle = dispatcher.export(impl)

    async def handler(conn):
        channel = MessageChannel(conn)
        while True:
            message = await channel.recv()
            await dispatcher.handle_message(message, channel)

    url = url or f"memory://rpc-test-{next(_counter)}"
    listener = await serve(url, handler)
    return impl, handle, dispatcher, listener


async def connect(listener, **kwargs):
    conn = await dial(listener.address)
    return RpcConnection(MessageChannel(conn), fresh_registry(), **kwargs)


class TestSynchronousCalls:
    @async_test
    async def test_call_returns_value(self):
        impl, handle, _d, listener = await start_server()
        rpc = await connect(listener)
        proxy = build_proxy(Counter, rpc, handle)
        assert await proxy.total() == 0
        impl.value = 41
        assert await proxy.total() == 41
        await rpc.close()
        await listener.close()

    @async_test
    async def test_remote_exception_surfaces(self):
        impl, handle, _d, listener = await start_server()
        rpc = await connect(listener)
        proxy = build_proxy(Counter, rpc, handle)
        with pytest.raises(RemoteError) as info:
            await proxy.fail("broken")
        assert info.value.remote_type == "ValueError"
        assert "broken" in info.value.remote_message
        assert "Traceback" in info.value.remote_traceback
        await rpc.close()
        await listener.close()

    @async_test
    async def test_connection_survives_remote_exception(self):
        impl, handle, _d, listener = await start_server()
        rpc = await connect(listener)
        proxy = build_proxy(Counter, rpc, handle)
        with pytest.raises(RemoteError):
            await proxy.fail("once")
        assert await proxy.total() == 0  # still usable
        await rpc.close()
        await listener.close()

    @async_test
    async def test_forged_handle_rejected_remotely(self):
        impl, handle, _d, listener = await start_server()
        rpc = await connect(listener)
        bad = Handle(oid=handle.oid, tag=handle.tag ^ 1)
        proxy = build_proxy(Counter, rpc, bad)
        with pytest.raises(RemoteError) as info:
            await proxy.total()
        assert info.value.remote_type == ForgedHandleError.__name__
        await rpc.close()
        await listener.close()

    @async_test
    async def test_concurrent_sync_calls_from_tasks(self):
        impl, handle, _d, listener = await start_server()
        rpc = await connect(listener)
        proxy = build_proxy(Counter, rpc, handle)
        results = await asyncio.gather(*(proxy.total() for _ in range(10)))
        assert results == [0] * 10
        await rpc.close()
        await listener.close()


class TestAsynchronousBatching:
    @async_test
    async def test_posts_batched_into_fewer_frames(self):
        """§3.4: batching reduces the amount of IPC."""
        impl, handle, _d, listener = await start_server()
        rpc = await connect(listener, max_batch=64, flush_delay=None)
        proxy = build_proxy(Counter, rpc, handle)
        for i in range(30):
            await proxy.add(1)
        assert rpc.batch.frames_sent == 0  # still queued
        assert await proxy.total() == 30   # sync call flushed then ran
        assert rpc.batch.frames_sent == 1  # all 30 in one frame
        await rpc.close()
        await listener.close()

    @async_test
    async def test_order_preserved_across_batch_and_sync(self):
        impl, handle, _d, listener = await start_server()
        rpc = await connect(listener, flush_delay=None)
        proxy = build_proxy(Counter, rpc, handle)
        await proxy.add(1)
        await proxy.add(2)
        assert await proxy.total() == 3
        await proxy.add(4)
        assert await proxy.total() == 7
        assert impl.log == [1, 2, 4]
        await rpc.close()
        await listener.close()

    @async_test
    async def test_max_batch_triggers_flush(self):
        impl, handle, _d, listener = await start_server()
        rpc = await connect(listener, max_batch=5, flush_delay=None)
        proxy = build_proxy(Counter, rpc, handle)
        for _ in range(5):
            await proxy.add(1)
        assert rpc.batch.frames_sent == 1
        await eventually(lambda: impl.value == 5)
        await rpc.close()
        await listener.close()

    @async_test
    async def test_explicit_flush(self):
        """The special synchronization procedure (§3.4)."""
        impl, handle, _d, listener = await start_server()
        rpc = await connect(listener, flush_delay=None)
        proxy = build_proxy(Counter, rpc, handle)
        await proxy.add(9)
        assert impl.value == 0
        await rpc.flush()
        await eventually(lambda: impl.value == 9)
        await rpc.close()
        await listener.close()

    @async_test
    async def test_timer_flush(self):
        impl, handle, _d, listener = await start_server()
        rpc = await connect(listener, flush_delay=0.01)
        proxy = build_proxy(Counter, rpc, handle)
        await proxy.add(3)
        await eventually(lambda: impl.value == 3)
        await rpc.close()
        await listener.close()

    @async_test
    async def test_async_call_failure_reported_to_hook(self):
        registry = fresh_registry()
        failures = []
        dispatcher = Dispatcher(
            registry, async_error=lambda call, exc: failures.append((call.method, exc))
        )
        impl = CounterImpl()
        handle = dispatcher.export(impl)

        async def handler(conn):
            channel = MessageChannel(conn)
            while True:
                await dispatcher.handle_message(await channel.recv(), channel)

        listener = await serve(f"memory://rpc-hook-{next(_counter)}", handler)
        rpc = await connect(listener, flush_delay=None)

        # 'add' with a bogus payload: unbundling fails server-side.
        await rpc.post(handle, "add", b"\xff")
        await rpc.flush()
        await eventually(lambda: len(failures) == 1)
        assert failures[0][0] == "add"
        await rpc.close()
        await listener.close()

    @async_test
    async def test_close_flushes_pending(self):
        impl, handle, _d, listener = await start_server()
        rpc = await connect(listener, flush_delay=None)
        proxy = build_proxy(Counter, rpc, handle)
        await proxy.add(5)
        await rpc.close()
        await eventually(lambda: impl.value == 5)
        await listener.close()


class TestLifecycle:
    @async_test
    async def test_call_after_close_raises(self):
        impl, handle, _d, listener = await start_server()
        rpc = await connect(listener)
        await rpc.close()
        with pytest.raises(ConnectionClosedError):
            await rpc.call(handle, "total", b"")
        with pytest.raises(ConnectionClosedError):
            await rpc.post(handle, "add", b"")
        await listener.close()

    @async_test
    async def test_server_vanishing_fails_pending_call(self):
        registry = fresh_registry()

        async def handler(conn):
            await conn.recv()   # swallow the call...
            await conn.close()  # ...and hang up

        listener = await serve(f"memory://rpc-vanish-{next(_counter)}", handler)
        conn = await dial(listener.address)
        rpc = RpcConnection(MessageChannel(conn), registry)
        with pytest.raises(ConnectionClosedError):
            await rpc.call(Handle(oid=1, tag=1), "anything", b"")
        await rpc.close()
        await listener.close()

    @async_test
    async def test_dispatcher_counts_calls(self):
        impl, handle, dispatcher, listener = await start_server()
        rpc = await connect(listener, flush_delay=None)
        proxy = build_proxy(Counter, rpc, handle)
        await proxy.add(1)
        await proxy.total()
        assert dispatcher.calls_executed == 2
        await rpc.close()
        await listener.close()

    @async_test
    async def test_revoked_export_goes_stale(self):
        from repro.errors import StaleHandleError

        impl, handle, dispatcher, listener = await start_server()
        rpc = await connect(listener)
        proxy = build_proxy(Counter, rpc, handle)
        assert await proxy.total() == 0
        dispatcher.revoke(handle)
        with pytest.raises(RemoteError) as info:
            await proxy.total()
        assert info.value.remote_type == StaleHandleError.__name__
        await rpc.close()
        await listener.close()


class TestOverRealSockets:
    @pytest.mark.parametrize("scheme", ["unix", "tcp"])
    @async_test
    async def test_full_path_over_sockets(self, scheme, tmp_path):
        url = {
            "unix": f"unix://{tmp_path}/rpc.sock",
            "tcp": "tcp://127.0.0.1:0",
        }[scheme]
        impl, handle, _d, listener = await start_server(url)
        rpc = await connect(listener, flush_delay=None)
        proxy = build_proxy(Counter, rpc, handle)
        await proxy.add(20)
        await proxy.add(22)
        assert await proxy.total() == 42
        await rpc.close()
        await listener.close()
