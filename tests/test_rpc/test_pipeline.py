"""CallPipeline: bounded in-flight window over one connection.

Unit tests pin the scheduler semantics (issue order, depth bound,
result order, failure propagation); the end-to-end test proves the
wire actually supports it — K concurrent sync calls on one channel,
replies matched out of order by serial.
"""

import asyncio
import itertools

import pytest

from repro import ClamClient, ClamServer, RemoteInterface
from repro.rpc import CallPipeline
from tests.support import async_test

_ids = itertools.count(1)


class TestScheduler:
    @async_test
    async def test_results_in_submission_order(self):
        async def value(i):
            await asyncio.sleep(0.01 * (5 - i))  # later submissions finish first
            return i

        pipe = CallPipeline(depth=8)
        for i in range(5):
            pipe.submit(value(i))
        assert await pipe.gather() == [0, 1, 2, 3, 4]

    @async_test
    async def test_depth_bounds_concurrency(self):
        active = 0
        high_water = 0

        async def tracked():
            nonlocal active, high_water
            active += 1
            high_water = max(high_water, active)
            await asyncio.sleep(0.005)
            active -= 1

        pipe = CallPipeline(depth=3)
        for _ in range(12):
            pipe.submit(tracked())
        await pipe.gather()
        assert high_water == 3

    @async_test
    async def test_failure_propagates_after_all_settle(self):
        settled = []

        async def ok(i):
            await asyncio.sleep(0.005)
            settled.append(i)
            return i

        async def boom():
            raise RuntimeError("pipeline failure")

        pipe = CallPipeline(depth=4)
        pipe.submit(ok(1))
        pipe.submit(boom())
        pipe.submit(ok(2))
        with pytest.raises(RuntimeError, match="pipeline failure"):
            await pipe.gather()
        # The pipeline never abandons issued calls.
        assert sorted(settled) == [1, 2]

    @async_test
    async def test_return_exceptions_collects_in_order(self):
        async def ok(i):
            return i

        async def boom():
            raise ValueError("x")

        pipe = CallPipeline(depth=2)
        pipe.submit(ok(1))
        pipe.submit(boom())
        pipe.submit(ok(3))
        results = await pipe.gather(return_exceptions=True)
        assert results[0] == 1
        assert isinstance(results[1], ValueError)
        assert results[2] == 3

    @async_test
    async def test_context_manager_settles_on_exit(self):
        async def value(i):
            await asyncio.sleep(0.002)
            return i * 2

        async with CallPipeline(depth=4) as pipe:
            futures = [pipe.submit(value(i)) for i in range(6)]
        assert [f.result() for f in futures] == [0, 2, 4, 6, 8, 10]
        assert pipe.pending == 0

    @async_test
    async def test_submitted_task_awaitable_individually(self):
        async def value():
            return "direct"

        pipe = CallPipeline(depth=1)
        task = pipe.submit(value())
        assert await task == "direct"
        await pipe.gather()

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError):
            CallPipeline(depth=0)


ECHO_SOURCE = '''
import asyncio

from repro.stubs import RemoteInterface


class Echo(RemoteInterface):
    async def echo(self, value: int) -> int:
        # Later calls finish first: replies leave out of order, which
        # the serial-matched waiting table must untangle.
        await asyncio.sleep(0.001 * (value % 5))
        return value
'''


class Echo(RemoteInterface):
    def echo(self, value: int) -> int: ...


@async_test
async def test_pipelined_calls_end_to_end():
    """K sync calls in flight on one channel, replies out of order."""
    server = ClamServer()
    address = await server.start(f"memory://pipeline-e2e-{next(_ids)}")
    client = await ClamClient.connect(address)
    try:
        await client.load_module("echo", ECHO_SOURCE)
        service = await client.create(Echo)

        async with client.pipeline(depth=8) as pipe:
            futures = [pipe.submit(service.echo(i)) for i in range(32)]
        assert [f.result() for f in futures] == list(range(32))
    finally:
        await client.close()
        await server.shutdown()
