"""Unit tests for the batch queue in isolation (paper §3.4)."""

import asyncio

import pytest

from repro.rpc import BatchQueue
from repro.wire import CallMessage
from tests.support import async_test, eventually


def call(serial):
    return CallMessage(serial=serial, oid=1, tag=1, method="m",
                       args=b"", expects_reply=False)


def collector():
    sent = []

    async def send(batch):
        sent.append(batch)

    return sent, send


class TestFlushTriggers:
    @async_test
    async def test_explicit_flush_sends_everything(self):
        sent, send = collector()
        queue = BatchQueue(send, flush_delay=None)
        for i in range(3):
            await queue.post(call(i))
        assert sent == []
        await queue.flush()
        assert len(sent) == 1
        assert [c.serial for c in sent[0].calls] == [0, 1, 2]

    @async_test
    async def test_size_trigger(self):
        sent, send = collector()
        queue = BatchQueue(send, max_batch=2, flush_delay=None)
        await queue.post(call(1))
        assert sent == []
        await queue.post(call(2))
        assert len(sent) == 1

    @async_test
    async def test_timer_trigger(self):
        sent, send = collector()
        queue = BatchQueue(send, flush_delay=0.005)
        await queue.post(call(1))
        await eventually(lambda: len(sent) == 1)

    @async_test
    async def test_timer_cancelled_by_explicit_flush(self):
        sent, send = collector()
        queue = BatchQueue(send, flush_delay=0.01)
        await queue.post(call(1))
        await queue.flush()
        await asyncio.sleep(0.03)
        assert len(sent) == 1  # no double flush from the stale timer

    @async_test
    async def test_empty_flush_sends_nothing(self):
        sent, send = collector()
        queue = BatchQueue(send, flush_delay=None)
        await queue.flush()
        assert sent == []

    @async_test
    async def test_strict_paper_mode_never_times_out(self):
        sent, send = collector()
        queue = BatchQueue(send, flush_delay=None)
        await queue.post(call(1))
        await asyncio.sleep(0.02)
        assert sent == []  # lingers until forced, as in the paper

    @async_test
    async def test_cancel_timer(self):
        sent, send = collector()
        queue = BatchQueue(send, flush_delay=0.005)
        await queue.post(call(1))
        queue.cancel_timer()
        await asyncio.sleep(0.02)
        assert sent == []

    def test_bad_max_batch(self):
        with pytest.raises(ValueError):
            BatchQueue(lambda b: None, max_batch=0)


class TestAccounting:
    @async_test
    async def test_counters(self):
        sent, send = collector()
        queue = BatchQueue(send, max_batch=4, flush_delay=None)
        for i in range(10):
            await queue.post(call(i))
        await queue.flush()
        assert queue.calls_queued == 10
        assert queue.frames_sent == 3  # 4 + 4 + 2
        total = sum(len(b.calls) for b in sent)
        assert total == 10

    @async_test
    async def test_order_preserved_across_batches(self):
        sent, send = collector()
        queue = BatchQueue(send, max_batch=3, flush_delay=None)
        for i in range(8):
            await queue.post(call(i))
        await queue.flush()
        serials = [c.serial for batch in sent for c in batch.calls]
        assert serials == list(range(8))

    @async_test
    async def test_len(self):
        sent, send = collector()
        queue = BatchQueue(send, flush_delay=None)
        assert len(queue) == 0
        await queue.post(call(1))
        assert len(queue) == 1
        await queue.flush()
        assert len(queue) == 0


class TestAdaptiveSizing:
    @async_test
    async def test_sustained_full_flushes_grow_max_batch(self):
        sent, send = collector()
        queue = BatchQueue(send, max_batch=4, flush_delay=None, adaptive=True)
        # Size-triggered flushes have occupancy 1.0; the EWMA crosses
        # the grow threshold after a few of them.
        for i in range(40):
            await queue.post(call(i))
        assert queue.max_batch > 4
        assert queue.grow_events >= 1

    @async_test
    async def test_sustained_empty_flushes_shrink_max_batch(self):
        sent, send = collector()
        queue = BatchQueue(send, max_batch=64, flush_delay=None,
                           adaptive=True, min_batch=4)
        serial = 0
        for _ in range(20):
            await queue.post(call(serial))
            serial += 1
            await queue.flush()  # occupancy 1/64 every time
        assert queue.max_batch < 64
        assert queue.shrink_events >= 1

    @async_test
    async def test_max_batch_respects_bounds(self):
        sent, send = collector()
        queue = BatchQueue(send, max_batch=4, flush_delay=None,
                           adaptive=True, min_batch=2, max_batch_limit=8)
        for i in range(200):
            await queue.post(call(i))
        assert queue.max_batch <= 8
        serial = 1000
        for _ in range(50):
            await queue.post(call(serial))
            serial += 1
            await queue.flush()
        assert queue.max_batch >= 2

    @async_test
    async def test_non_adaptive_size_is_fixed(self):
        sent, send = collector()
        queue = BatchQueue(send, max_batch=4, flush_delay=None)
        for i in range(40):
            await queue.post(call(i))
        assert queue.max_batch == 4
        assert queue.grow_events == 0 and queue.shrink_events == 0

    def test_bad_adaptive_bounds(self):
        async def send(batch):
            pass

        with pytest.raises(ValueError):
            BatchQueue(send, max_batch=4, adaptive=True, min_batch=8)


class TestCoalescedWrites:
    @async_test
    async def test_oversized_backlog_goes_out_as_one_coalesced_write(self):
        """Calls racing an in-flight flush pile past max_batch; the next
        flush drains them as several chunks through send_many."""
        writes = []

        async def send(batch):
            writes.append([batch])

        async def send_many(batches):
            writes.append(list(batches))

        queue = BatchQueue(send, max_batch=4, flush_delay=None,
                           send_many=send_many)
        # Simulate the race by loading pending directly past the cap.
        for i in range(10):
            queue._pending.append(call(i))
            queue.calls_queued += 1
        await queue.flush()
        assert len(writes) == 1  # one channel write...
        assert [len(b.calls) for b in writes[0]] == [4, 4, 2]  # ...three frames
        assert queue.frames_sent == 3
        assert queue.coalesced_writes == 1
        serials = [c.serial for b in writes[0] for c in b.calls]
        assert serials == list(range(10))

    @async_test
    async def test_single_chunk_uses_plain_send(self):
        writes = []

        async def send(batch):
            writes.append("send")

        async def send_many(batches):
            writes.append("send_many")

        queue = BatchQueue(send, max_batch=4, flush_delay=None,
                           send_many=send_many)
        await queue.post(call(1))
        await queue.flush()
        assert writes == ["send"]
        assert queue.coalesced_writes == 0

    @async_test
    async def test_without_send_many_chunks_are_sent_sequentially(self):
        sent, send = collector()
        queue = BatchQueue(send, max_batch=4, flush_delay=None)
        for i in range(10):
            queue._pending.append(call(i))
        await queue.flush()
        assert [len(b.calls) for b in sent] == [4, 4, 2]
        assert queue.frames_sent == 3


class TestCreditGatedPosts:
    @async_test
    async def test_post_consumes_gate_window(self):
        from repro.flow import CreditGate, message_cost

        sent, send = collector()
        gate = CreditGate()
        gate.update(2, 1 << 20)
        queue = BatchQueue(send, flush_delay=None, credit_gate=gate)
        await queue.post(call(1))
        await queue.post(call(2))
        assert gate.used_msgs == 2
        assert gate.used_bytes == 2 * message_cost(b"")

    @async_test
    async def test_exhausted_gate_fails_fast_with_nowait(self):
        from repro.errors import CreditExhaustedError
        from repro.flow import CreditGate

        sent, send = collector()
        gate = CreditGate()
        gate.update(1, 1 << 20)
        queue = BatchQueue(send, flush_delay=None, credit_gate=gate)
        await queue.post(call(1), nowait=True)
        with pytest.raises(CreditExhaustedError):
            await queue.post(call(2), nowait=True)
        # The rejected call never entered the queue.
        assert len(queue) == 1

    @async_test
    async def test_blocked_post_resumes_when_the_window_widens(self):
        from repro.flow import CreditGate

        sent, send = collector()
        gate = CreditGate()
        gate.update(1, 1 << 20)
        queue = BatchQueue(send, flush_delay=None, credit_gate=gate)
        await queue.post(call(1))
        blocked = asyncio.ensure_future(queue.post(call(2)))
        await asyncio.sleep(0.01)
        assert not blocked.done()
        gate.update(2, 2 << 20)
        await asyncio.wait_for(blocked, 1)
        assert len(queue) == 2


class TestTimerTaskLifecycle:
    @async_test
    async def test_timer_flush_task_is_referenced(self):
        sent, send = collector()
        queue = BatchQueue(send, flush_delay=0.005)
        await queue.post(call(1))
        await asyncio.sleep(0.01)
        # The timer fired and created a tracked task (it may have
        # already finished and been discarded — but it must have sent).
        await eventually(lambda: len(sent) == 1)
        await eventually(lambda: not queue._timer_tasks)

    @async_test
    async def test_timer_flush_error_is_surfaced(self):
        boom = RuntimeError("transport exploded")

        async def send(batch):
            raise boom

        queue = BatchQueue(send, flush_delay=0.005)
        await queue.post(call(1))
        await eventually(lambda: queue.last_timer_error is boom)

    @async_test
    async def test_timer_flush_error_bumps_the_flow_counter(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()

        async def send(batch):
            raise RuntimeError("transport exploded")

        queue = BatchQueue(send, flush_delay=0.005, metrics=metrics)
        await queue.post(call(1))
        await eventually(lambda: queue.last_timer_error is not None)
        assert metrics.counter("flow.batch.timer_errors").value >= 1

    @async_test
    async def test_timer_flush_connection_closed_is_quiet(self):
        from repro.errors import ConnectionClosedError

        async def send(batch):
            raise ConnectionClosedError("gone")

        queue = BatchQueue(send, flush_delay=0.005)
        await queue.post(call(1))
        await asyncio.sleep(0.02)
        await eventually(lambda: not queue._timer_tasks)
        assert queue.last_timer_error is None
