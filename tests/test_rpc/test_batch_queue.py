"""Unit tests for the batch queue in isolation (paper §3.4)."""

import asyncio

import pytest

from repro.rpc import BatchQueue
from repro.wire import CallMessage
from tests.support import async_test, eventually


def call(serial):
    return CallMessage(serial=serial, oid=1, tag=1, method="m",
                       args=b"", expects_reply=False)


def collector():
    sent = []

    async def send(batch):
        sent.append(batch)

    return sent, send


class TestFlushTriggers:
    @async_test
    async def test_explicit_flush_sends_everything(self):
        sent, send = collector()
        queue = BatchQueue(send, flush_delay=None)
        for i in range(3):
            await queue.post(call(i))
        assert sent == []
        await queue.flush()
        assert len(sent) == 1
        assert [c.serial for c in sent[0].calls] == [0, 1, 2]

    @async_test
    async def test_size_trigger(self):
        sent, send = collector()
        queue = BatchQueue(send, max_batch=2, flush_delay=None)
        await queue.post(call(1))
        assert sent == []
        await queue.post(call(2))
        assert len(sent) == 1

    @async_test
    async def test_timer_trigger(self):
        sent, send = collector()
        queue = BatchQueue(send, flush_delay=0.005)
        await queue.post(call(1))
        await eventually(lambda: len(sent) == 1)

    @async_test
    async def test_timer_cancelled_by_explicit_flush(self):
        sent, send = collector()
        queue = BatchQueue(send, flush_delay=0.01)
        await queue.post(call(1))
        await queue.flush()
        await asyncio.sleep(0.03)
        assert len(sent) == 1  # no double flush from the stale timer

    @async_test
    async def test_empty_flush_sends_nothing(self):
        sent, send = collector()
        queue = BatchQueue(send, flush_delay=None)
        await queue.flush()
        assert sent == []

    @async_test
    async def test_strict_paper_mode_never_times_out(self):
        sent, send = collector()
        queue = BatchQueue(send, flush_delay=None)
        await queue.post(call(1))
        await asyncio.sleep(0.02)
        assert sent == []  # lingers until forced, as in the paper

    @async_test
    async def test_cancel_timer(self):
        sent, send = collector()
        queue = BatchQueue(send, flush_delay=0.005)
        await queue.post(call(1))
        queue.cancel_timer()
        await asyncio.sleep(0.02)
        assert sent == []

    def test_bad_max_batch(self):
        with pytest.raises(ValueError):
            BatchQueue(lambda b: None, max_batch=0)


class TestAccounting:
    @async_test
    async def test_counters(self):
        sent, send = collector()
        queue = BatchQueue(send, max_batch=4, flush_delay=None)
        for i in range(10):
            await queue.post(call(i))
        await queue.flush()
        assert queue.calls_queued == 10
        assert queue.frames_sent == 3  # 4 + 4 + 2
        total = sum(len(b.calls) for b in sent)
        assert total == 10

    @async_test
    async def test_order_preserved_across_batches(self):
        sent, send = collector()
        queue = BatchQueue(send, max_batch=3, flush_delay=None)
        for i in range(8):
            await queue.post(call(i))
        await queue.flush()
        serials = [c.serial for batch in sent for c in batch.calls]
        assert serials == list(range(8))

    @async_test
    async def test_len(self):
        sent, send = collector()
        queue = BatchQueue(send, flush_delay=None)
        assert len(queue) == 0
        await queue.post(call(1))
        assert len(queue) == 1
        await queue.flush()
        assert len(queue) == 0
