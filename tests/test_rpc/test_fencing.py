"""Fencing tokens: ordering, ambient scope, admission, leader hints.

The unit half of the fencing story — :class:`FencingToken` ordering,
the ``fence_scope`` contextvar plumbing, and :class:`FenceGuard`
high-water-mark admission.  The wire half (tokens stamped on CALL
messages at protocol v5) is pinned in ``test_wire/test_golden_bytes``;
the end-to-end half (a lapsed lease holder rejected mid-chaos) lives
in ``test_cluster/test_chaos_directory``.
"""

import pytest

from repro.errors import FencedWriteError
from repro.obs.metrics import MetricsRegistry
from repro.rpc import (
    FenceGuard,
    FencingToken,
    current_fence,
    fence_scope,
    pack_leader_hint,
    parse_leader_hint,
)


class TestFencingToken:
    def test_lexicographic_ordering(self):
        # Epoch dominates counter: a newer leader's first grant
        # outranks the old leader's millionth.
        assert FencingToken(2, 1) > FencingToken(1, 1_000_000)
        assert FencingToken(1, 2) > FencingToken(1, 1)
        assert FencingToken(1, 1) == FencingToken(1, 1)

    def test_zero_token_is_falsy_means_unfenced(self):
        assert not FencingToken()
        assert not FencingToken(0, 0)
        assert FencingToken(1, 0)
        assert FencingToken(0, 1)

    def test_str_is_epoch_dot_counter(self):
        assert str(FencingToken(3, 17)) == "3.17"

    def test_frozen(self):
        with pytest.raises(Exception):
            FencingToken(1, 1).epoch = 2


class TestFenceScope:
    def test_default_is_unfenced(self):
        assert current_fence() is None

    def test_scope_sets_and_restores(self):
        token = FencingToken(5, 9)
        with fence_scope(token):
            assert current_fence() == token
        assert current_fence() is None

    def test_nesting_innermost_wins_and_none_unfences(self):
        outer, inner = FencingToken(1, 1), FencingToken(2, 2)
        with fence_scope(outer):
            with fence_scope(inner):
                assert current_fence() == inner
            assert current_fence() == outer
            with fence_scope(None):
                assert current_fence() is None
            assert current_fence() == outer


class TestFenceGuard:
    def test_unfenced_writes_pass_untouched(self):
        guard = FenceGuard()
        guard.admit("k")  # no ambient token, no explicit token
        guard.admit("k", FencingToken())  # explicit zero token
        assert guard.mark("k") is None

    def test_stale_token_is_rejected_after_newer_admitted(self):
        guard = FenceGuard()
        guard.admit("k", FencingToken(2, 1))
        with pytest.raises(FencedWriteError):
            guard.admit("k", FencingToken(1, 9))

    def test_equal_token_readmits_its_own_retry(self):
        guard = FenceGuard()
        token = FencingToken(3, 3)
        guard.admit("k", token)
        guard.admit("k", token)  # a retry is not a conflict
        assert guard.mark("k") == token

    def test_marks_are_per_key(self):
        guard = FenceGuard()
        guard.admit("a", FencingToken(9, 9))
        guard.admit("b", FencingToken(1, 1))  # different key, fine

    def test_ambient_token_via_scope(self):
        guard = FenceGuard()
        with fence_scope(FencingToken(4, 4)):
            guard.admit("k")
        with fence_scope(FencingToken(3, 1)):
            with pytest.raises(FencedWriteError):
                guard.admit("k")

    def test_rejections_are_counted(self):
        metrics = MetricsRegistry()
        guard = FenceGuard(metrics=metrics)
        guard.admit("k", FencingToken(2, 2))
        for _ in range(3):
            with pytest.raises(FencedWriteError):
                guard.admit("k", FencingToken(1, 1))
        assert metrics.counter("cluster.directory.fenced_writes").value == 3

    def test_clear_forgets_the_mark(self):
        guard = FenceGuard()
        guard.admit("k", FencingToken(5, 5))
        guard.clear("k")
        guard.admit("k", FencingToken(1, 1))  # fresh resource, fresh mark


class TestLeaderHint:
    def test_round_trip(self):
        packed = pack_leader_hint("not the leader", "memory://dir-2")
        assert parse_leader_hint(packed) == "memory://dir-2"
        assert packed.startswith("not the leader")

    def test_empty_url_packs_nothing(self):
        assert pack_leader_hint("msg", "") == "msg"

    def test_absent_hint_parses_empty(self):
        assert parse_leader_hint("plain message") == ""
        assert parse_leader_hint("broken [leader=memory://x") == ""
