"""Tests for Task lifecycle (paper §4.3: creation, deletion, blocking, resumption)."""

import asyncio

import pytest

from repro.errors import TaskError
from repro.tasks import Event, Task, TaskState, current_task
from tests.support import async_test, eventually


@async_test
async def test_spawn_and_join():
    async def work():
        return 42

    task = Task.spawn(work())
    assert await task.result() == 42
    assert task.state is TaskState.DONE


@async_test
async def test_failure_surfaces_through_result():
    async def boom():
        raise ValueError("bad")

    task = Task.spawn(boom())
    with pytest.raises(ValueError, match="bad"):
        await task.result()
    assert task.state is TaskState.FAILED


@async_test
async def test_cancel_is_deletion():
    started = Event()

    async def forever():
        started.fire()
        await Event().wait()  # blocks forever

    task = Task.spawn(forever())
    await asyncio.sleep(0)
    task.cancel()
    await task.wait_cancelled()
    assert task.state is TaskState.CANCELLED
    assert not task.alive


@async_test
async def test_blocking_on_event_marks_blocked():
    """The server can see that a task is BLOCKED while waiting (§4.3)."""
    event = Event()

    async def waiter():
        await event.wait()
        return "resumed"

    task = Task.spawn(waiter())
    await eventually(lambda: task.state is TaskState.BLOCKED)
    event.fire()
    assert await task.result() == "resumed"
    assert task.state is TaskState.DONE


@async_test
async def test_current_task_inside_and_outside():
    assert current_task() is None  # not inside a Task-spawned coroutine

    seen = []

    async def observer():
        seen.append(current_task())

    task = Task.spawn(observer())
    await task.result()
    assert seen == [task]


@async_test
async def test_double_start_rejected():
    async def work():
        return 1

    coro = work()
    task = Task(coro)
    task._start()
    with pytest.raises(TaskError):
        task._start()
    await task.result()


@async_test
async def test_task_names_and_ids_unique():
    async def nothing():
        pass

    t1 = Task.spawn(nothing(), name="alpha")
    t2 = Task.spawn(nothing())
    assert t1.name == "alpha"
    assert t1.task_id != t2.task_id
    await t1.result()
    await t2.result()


@async_test
async def test_result_can_be_awaited_by_multiple_joiners():
    async def work():
        await asyncio.sleep(0.01)
        return "shared"

    task = Task.spawn(work())
    results = await asyncio.gather(task.result(), task.result(), task.result())
    assert results == ["shared"] * 3


@async_test
async def test_tasks_are_non_preemptive():
    """A task that never awaits runs to completion before others resume."""
    order = []

    async def uninterrupted():
        order.append("start")
        for _ in range(1000):
            pass  # no await: cannot be preempted
        order.append("end")

    async def bystander():
        order.append("bystander")

    t1 = Task.spawn(uninterrupted())
    t2 = Task.spawn(bystander())
    await asyncio.gather(t1.result(), t2.result())
    assert order.index("end") < order.index("bystander")
