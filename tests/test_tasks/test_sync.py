"""Tests for Event, Gate, and Mailbox."""

import asyncio

import pytest

from repro.tasks import Event, Gate, Mailbox, Task
from tests.support import async_test, eventually


class TestEvent:
    @async_test
    async def test_fire_releases_all_waiters(self):
        event = Event()
        results = []

        async def waiter(i):
            await event.wait()
            results.append(i)

        tasks = [Task.spawn(waiter(i)) for i in range(5)]
        await eventually(lambda: event.waiter_count == 5)
        released = event.fire()
        assert released == 5
        await asyncio.gather(*(t.result() for t in tasks))
        assert sorted(results) == [0, 1, 2, 3, 4]

    @async_test
    async def test_edge_triggered_by_default(self):
        event = Event()
        event.fire()  # no waiters: lost, not latched
        done = []

        async def late_waiter():
            await event.wait()
            done.append(True)

        task = Task.spawn(late_waiter())
        await asyncio.sleep(0.01)
        assert not done
        event.fire()
        await task.result()
        assert done == [True]

    @async_test
    async def test_sticky_fire_latches(self):
        event = Event()
        event.fire(sticky=True)
        assert event.latched
        await event.wait()  # passes straight through

    @async_test
    async def test_fire_returns_zero_without_waiters(self):
        assert Event().fire() == 0


class TestGate:
    @async_test
    async def test_mutual_exclusion(self):
        gate = Gate()
        active = 0
        peak = 0

        async def critical(i):
            nonlocal active, peak
            async with gate:
                active += 1
                peak = max(peak, active)
                await asyncio.sleep(0.001)
                active -= 1

        tasks = [Task.spawn(critical(i)) for i in range(8)]
        await asyncio.gather(*(t.result() for t in tasks))
        assert peak == 1

    @async_test
    async def test_held_property(self):
        gate = Gate()
        assert not gate.held
        async with gate:
            assert gate.held
        assert not gate.held


class TestMailbox:
    @async_test
    async def test_fifo_order(self):
        box = Mailbox()
        for i in range(10):
            box.post(i)
        taken = [await box.take() for _ in range(10)]
        assert taken == list(range(10))

    @async_test
    async def test_take_blocks_until_post(self):
        box = Mailbox()
        results = []

        async def taker():
            results.append(await box.take())

        task = Task.spawn(taker())
        await asyncio.sleep(0.005)
        assert not results
        box.post("item")
        await task.result()
        assert results == ["item"]

    @async_test
    async def test_close_wakes_all_takers(self):
        box = Mailbox()
        outcomes = []

        async def taker():
            try:
                await box.take()
            except EOFError:
                outcomes.append("eof")

        tasks = [Task.spawn(taker()) for _ in range(3)]
        await asyncio.sleep(0.005)
        box.close()
        await asyncio.gather(*(t.result() for t in tasks))
        assert outcomes == ["eof"] * 3

    @async_test
    async def test_backlog_drains_before_eof(self):
        box = Mailbox()
        box.post(1)
        box.post(2)
        box.close()
        assert await box.take() == 1
        assert await box.take() == 2
        with pytest.raises(EOFError):
            await box.take()

    @async_test
    async def test_post_after_close_rejected(self):
        box = Mailbox()
        box.close()
        with pytest.raises(RuntimeError):
            box.post(1)

    @async_test
    async def test_len_reports_backlog(self):
        box = Mailbox()
        assert len(box) == 0
        box.post("a")
        box.post("b")
        assert len(box) == 2
