"""Tests for task reuse (paper §4.4: "Tasks are reused ... to reduce overhead")."""

import asyncio

import pytest

from repro.errors import TaskError
from repro.tasks import TaskPool, TaskSystem
from tests.support import async_test


class TestTaskPool:
    @async_test
    async def test_jobs_run_and_return_results(self):
        async with TaskPool(max_tasks=4) as pool:
            async def job():
                return 7

            assert await pool.run(job) == 7

    @async_test
    async def test_sequential_jobs_reuse_one_worker(self):
        async with TaskPool(max_tasks=8) as pool:
            async def job():
                return None

            for _ in range(20):
                await pool.run(job)
            assert pool.workers_spawned == 1
            assert pool.jobs_reusing_a_task == 19

    @async_test
    async def test_concurrent_jobs_spawn_up_to_max(self):
        async with TaskPool(max_tasks=3) as pool:
            release = asyncio.Event()

            async def job():
                await release.wait()

            futures = [pool.submit(job) for _ in range(10)]
            await asyncio.sleep(0.01)
            assert pool.workers_spawned <= 3
            release.set()
            await asyncio.gather(*futures)

    @async_test
    async def test_job_exception_delivered_not_fatal(self):
        async with TaskPool(max_tasks=2) as pool:
            async def bad():
                raise RuntimeError("job failed")

            async def good():
                return "ok"

            with pytest.raises(RuntimeError, match="job failed"):
                await pool.run(bad)
            # The worker survived and can run another job.
            assert await pool.run(good) == "ok"

    @async_test
    async def test_submit_after_close_rejected(self):
        pool = TaskPool(max_tasks=1)
        await pool.close()
        with pytest.raises(TaskError):
            pool.submit(asyncio.sleep)

    @async_test
    async def test_close_waits_for_queued_jobs(self):
        pool = TaskPool(max_tasks=1)
        done = []

        async def slow():
            await asyncio.sleep(0.01)
            done.append(True)

        futures = [pool.submit(slow) for _ in range(3)]
        await pool.close()
        assert len(done) == 3
        await asyncio.gather(*futures)

    def test_zero_size_pool_rejected(self):
        with pytest.raises(TaskError):
            TaskPool(max_tasks=0)


class TestTaskSystem:
    @async_test
    async def test_spawn_and_track(self):
        system = TaskSystem("test")
        started = asyncio.Event()

        async def work():
            started.set()
            await asyncio.sleep(10)

        task = system.spawn(work(), name="worker")
        await started.wait()
        assert task in system.alive_tasks()
        await system.shutdown()
        assert not system.alive_tasks()

    @async_test
    async def test_shutdown_cancels_blocked_tasks(self):
        from repro.tasks import Event

        system = TaskSystem("test")
        event = Event()

        async def blocked():
            await event.wait()

        system.spawn(blocked())
        await asyncio.sleep(0.01)
        assert len(system.blocked_tasks()) == 1
        await system.shutdown()
        assert not system.alive_tasks()

    @async_test
    async def test_pool_accessible(self):
        system = TaskSystem("test")

        async def job():
            return "pooled"

        assert await system.pool.run(job) == "pooled"
        await system.shutdown()
