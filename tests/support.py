"""Shared helpers for the test suite.

pytest-asyncio is not available in this environment, so async tests are
plain functions decorated with :func:`async_test`, which runs the
coroutine on a fresh event loop per test.
"""

from __future__ import annotations

import asyncio
import functools
from typing import Any, Awaitable, Callable, Coroutine


def async_test(fn: Callable[..., Coroutine[Any, Any, Any]]):
    """Run an ``async def`` test on a fresh event loop."""

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        return asyncio.run(asyncio.wait_for(fn(*args, **kwargs), timeout=60))

    return wrapper


async def eventually(
    predicate: Callable[[], bool],
    *,
    timeout: float = 5.0,
    interval: float = 0.001,
) -> None:
    """Await until ``predicate()`` is true, or fail after ``timeout``."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            raise AssertionError("condition not reached before timeout")
        await asyncio.sleep(interval)


async def gather_with_timeout(*aws: Awaitable[Any], timeout: float = 30.0):
    """``asyncio.gather`` wrapped in a timeout so hung tests fail fast."""
    return await asyncio.wait_for(asyncio.gather(*aws), timeout=timeout)
