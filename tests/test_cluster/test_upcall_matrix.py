"""Multi-client upcall matrix: delivery isolation and ordering.

Two ClamClients register upcalls with one server.  Whatever the server
does — interleaved posts, seeded chaos on one client's wires — each
RUC must fire only on its own client's upcall stream (isolation) and
each client must observe its events in post order (the per-connection
ordering guarantee of the in-order channel + one pump per subscriber).
"""

import itertools
import os
from typing import Callable

import pytest

from repro import ClamClient, ClamServer, RemoteInterface
from repro.faults import FaultInjector, FaultRates, SeededSchedule
from repro.rpc import RetryPolicy
from tests.support import async_test

_ids = itertools.count(1)

SEEDS = [int(s) for s in os.environ.get("CHAOS_SEED", "").split(",") if s] or [1, 2]

HUB_SOURCE = '''
from typing import Callable

from repro.stubs import RemoteInterface
from repro.cluster import UpcallGroup


class Hub(RemoteInterface):
    def __init__(self):
        self.group = UpcallGroup("matrix", queue_limit=256)

    def join(self, proc: Callable[[str], None]) -> int:
        return self.group.subscribe(proc)

    def post(self, text: str) -> int:
        return self.group.post(text)

    async def drain(self) -> int:
        await self.group.flush()
        return self.group.delivered
'''


class Hub(RemoteInterface):
    def join(self, proc: Callable[[str], None]) -> int: ...
    def post(self, text: str) -> int: ...
    def drain(self) -> int: ...


async def raise_hub(url: str, **server_options):
    server = ClamServer(**server_options)
    address = await server.start(url)
    owner = await ClamClient.connect(address)
    await owner.load_module("hub", HUB_SOURCE)
    hub = await owner.create(Hub)
    await owner.publish("hub", hub)
    return server, address, owner, hub


class TestMatrix:
    @async_test
    async def test_isolation_each_ruc_fires_only_its_own_client(self):
        server, address, owner, hub = await raise_hub(
            f"memory://matrix-{next(_ids)}"
        )
        client_a = await ClamClient.connect(address)
        client_b = await ClamClient.connect(address)
        hub_a = await client_a.lookup(Hub, "hub")
        hub_b = await client_b.lookup(Hub, "hub")

        seen_a, seen_b = [], []
        await hub_a.join(lambda text: seen_a.append(text))
        await hub_b.join(lambda text: seen_b.append(text))

        for i in range(20):
            await hub.post(f"event-{i}")
        await hub.drain()

        expected = [f"event-{i}" for i in range(20)]
        # Both got everything, in order, and each client's handler
        # count matches its own upcall channel's traffic exactly —
        # nothing leaked across streams.
        assert seen_a == expected
        assert seen_b == expected
        assert client_a.upcalls_handled == 20
        assert client_b.upcalls_handled == 20

        await client_a.close()
        await client_b.close()
        await owner.close()
        await server.shutdown()

    @async_test
    async def test_join_leave_rejoin_under_interleaved_posts(self):
        server, address, owner, hub = await raise_hub(
            f"memory://matrix-{next(_ids)}", degrade_upcalls=True
        )
        client_a = await ClamClient.connect(address)
        hub_a = await client_a.lookup(Hub, "hub")
        seen_first, seen_second = [], []
        await hub_a.join(seen_first.append)
        await hub.post("one")
        await hub.drain()

        # The client drops; its subscriber is evicted on next delivery.
        await client_a.close()
        await hub.post("two")
        await hub.drain()

        client_a2 = await ClamClient.connect(address)
        hub_a2 = await client_a2.lookup(Hub, "hub")
        await hub_a2.join(seen_second.append)
        await hub.post("three")
        await hub.drain()

        assert seen_first == ["one"]
        assert seen_second == ["three"]

        await client_a2.close()
        await owner.close()
        await server.shutdown()

    @pytest.mark.parametrize("seed", SEEDS)
    @async_test
    async def test_isolation_and_ordering_under_chaos(self, seed):
        """Chaos on client A's wires must not disturb client B.

        A rides a faulted transport (drops, delays, dup frames,
        occasional closes) with retry + reconnect; B rides clean wires.
        B must see every event exactly once and in order; A must see an
        in-order *subsequence* (its subscriber may be evicted during a
        reconnect window and re-join) — never a reordering, never a
        cross-delivery.
        """
        schedule = SeededSchedule(
            seed,
            rates=FaultRates(
                drop=0.01, delay=0.04, duplicate=0.01, reorder=0.01,
                corrupt=0.0, close=0.003, slow=0.02, max_delay=0.003,
            ),
            warmup=12,
            max_faults=80,
        )
        injector = FaultInjector(schedule)
        server, address, owner, hub = await raise_hub(
            f"memory://matrix-chaos-{seed}-{next(_ids)}",
            session_linger=60.0,
            degrade_upcalls=True,
            upcall_timeout=0.3,
        )
        chaos_url = injector.wrap_url(address)
        try:
            retry = RetryPolicy(attempts=8, base_delay=0.01, max_delay=0.1, seed=seed)
            client_a = await ClamClient.connect(
                chaos_url,
                call_timeout=0.75,
                retry=retry,
                reconnect=True,
                reconnect_policy=retry,
            )
            client_b = await ClamClient.connect(address)
            hub_a = await client_a.lookup(Hub, "hub")
            hub_b = await client_b.lookup(Hub, "hub")

            seen_a, seen_b = [], []
            await hub_a.join(seen_a.append)
            await hub_b.join(seen_b.append)

            total = 40
            for i in range(total):
                await hub.post(f"event-{i}")
            await hub.drain()

            expected = [f"event-{i}" for i in range(total)]
            # B, on clean wires, is untouched by A's chaos:
            assert seen_b == expected
            assert client_b.upcalls_handled == total
            # A saw an in-order subsequence of the posts (no
            # reordering, no duplicates delivered to the handler, no
            # events of its own invention):
            indexes = [expected.index(event) for event in seen_a]
            assert indexes == sorted(indexes)
            assert len(set(seen_a)) == len(seen_a)
            assert set(seen_a) <= set(expected)

            await client_a.close()
            await client_b.close()
            await owner.close()
        finally:
            await server.shutdown()
            injector.release_url()
