"""Seeded chaos with a directory in the loop.

The resolution path (ClusterClient -> directory) and one replica's
data path both ride faulted transports.  Because every directory
method is idempotent and the directory client runs retry + supervised
reconnect, resolution must keep working; because the pool marks
faulted endpoints down and fails over, the workload must complete on
whichever replicas answer.
"""

import itertools
import os

import pytest

from repro.cluster import Advertiser, ClusterClient, DirectoryServer
from repro.errors import NoReplicasError
from repro.faults import FaultInjector, FaultRates, SeededSchedule
from repro.obs.metrics import MetricsRegistry
from repro.rpc import RetryPolicy
from repro.server import ClamServer
from repro.stubs import RemoteInterface, idempotent
from tests.support import async_test

_ids = itertools.count(1)

SEEDS = [int(s) for s in os.environ.get("CHAOS_SEED", "").split(",") if s] or [1, 2, 3]

N_CALLS = 120


class Work(RemoteInterface):
    __clam_class__ = "chaos.work"

    @idempotent
    def compute(self, value: int) -> int: ...
    @idempotent
    def whoami(self) -> str: ...


class WorkImpl(Work):
    def __init__(self, name: str):
        self._name = name
        self.computed = 0

    def compute(self, value: int) -> int:
        self.computed += 1
        return value + 1000

    def whoami(self) -> str:
        return self._name


def chaos_rates() -> FaultRates:
    return FaultRates(
        drop=0.012,
        delay=0.04,
        duplicate=0.012,
        reorder=0.012,
        corrupt=0.0,
        close=0.003,
        slow=0.02,
        max_delay=0.003,
    )


@pytest.mark.parametrize("seed", SEEDS)
@async_test
async def test_cluster_workload_survives_chaos(seed):
    run = next(_ids)
    fault_metrics = MetricsRegistry()
    # One injector per wrapped url (an injector owns one chaos scheme).
    directory_injector = FaultInjector(
        SeededSchedule(seed, rates=chaos_rates(), warmup=16, max_faults=80),
        metrics=fault_metrics,
    )
    replica_injector = FaultInjector(
        SeededSchedule(seed + 100, rates=chaos_rates(), warmup=16, max_faults=80),
        metrics=fault_metrics,
    )

    directory = DirectoryServer(max_lease=60.0)
    directory_url = await directory.start(f"memory://chaos-dir-{seed}-{run}")
    chaos_directory_url = directory_injector.wrap_url(directory_url)

    servers, advertisers, impls = [], [], []
    urls = []
    try:
        for i in range(2):
            url = f"memory://chaos-{seed}-{run}-replica-{i}"
            server = ClamServer(session_linger=60.0)
            impl = WorkImpl(f"replica-{i}")
            server.publish("chaos.work", impl)
            await server.start(url)
            # Replica 1's data path is the chaotic one.  Both replicas
            # advertise their wrapped/clean url — the one clients dial.
            advertised = replica_injector.wrap_url(url) if i == 1 else url
            advertiser = Advertiser.for_server(
                directory_url, "chaos.work", server, advertised,
                lease=30.0, interval=0.2,
            )
            await advertiser.start()
            servers.append(server)
            impls.append(impl)
            advertisers.append(advertiser)
            urls.append(advertised)

        retry = RetryPolicy(attempts=8, base_delay=0.01, max_delay=0.1, seed=seed)
        cluster_client = await ClusterClient.connect(
            chaos_directory_url,
            retry=retry,
            resolve_ttl=0.1,
            down_ttl=0.3,
            client_options=dict(
                call_timeout=0.75,
                retry=retry,
                reconnect=True,
                reconnect_policy=retry,
            ),
        )
        work = await cluster_client.bind("chaos.work", Work)

        completed = 0
        for i in range(N_CALLS):
            # The pool may momentarily see every replica down (marked
            # down faster than the ttl expires); that surfaces as
            # NoReplicasError, and the *next* call re-resolves.  What
            # must never happen is a wrong answer or a stall.
            try:
                assert await work.compute(i) == i + 1000
                completed += 1
            except NoReplicasError:
                continue
        assert completed >= N_CALLS * 0.9, (
            f"seed {seed}: only {completed}/{N_CALLS} calls completed"
        )

        # The audit trail: chaos actually happened and was counted.
        injected = directory_injector.injected + replica_injector.injected
        assert injected > 0, f"seed {seed}: no faults injected"
        assert fault_metrics.counter("faults.injected.total").value == injected

        # Every executed call executed exactly once (idempotent dedup
        # under retries): the replicas together never ran a compute
        # more often than the client completed... plus the retried
        # duplicates the dedup cache absorbed, which do not re-execute.
        executed = sum(impl.computed for impl in impls)
        assert executed == completed, (
            f"seed {seed}: {executed} executions for {completed} completed calls"
        )

        await cluster_client.close()
    finally:
        for advertiser in advertisers:
            await advertiser.stop()
        for server in servers:
            await server.shutdown()
        await directory.shutdown()
        directory_injector.release_url()
        replica_injector.release_url()
