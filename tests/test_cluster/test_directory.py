"""The directory service: leases, heartbeats, expiry, withdrawal.

Unit tests drive :class:`DirectoryImpl` with an injectable clock so
lease timing is deterministic; wire tests put the same object behind a
:class:`DirectoryServer` and speak the ``clam.directory`` protocol
through real proxies.
"""

import itertools

import pytest

from repro.client import ClamClient
from repro.cluster import (
    DEFAULT_LEASE,
    DIRECTORY_SERVICE,
    Advertiser,
    DirectoryImpl,
    DirectoryInterface,
    DirectoryServer,
    Endpoint,
)
from repro.obs.metrics import MetricsRegistry
from tests.support import async_test, eventually

_ids = itertools.count(1)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDirectoryImpl:
    def make(self, **kwargs):
        clock = FakeClock()
        kwargs.setdefault("clock", clock)
        return DirectoryImpl(**kwargs), clock

    def test_advertise_then_resolve(self):
        directory, _ = self.make()
        grant = directory.advertise("kv", "memory://a", 0.5, 2.0)
        assert grant.generation == 1
        assert (grant.epoch, grant.counter) == (1, 1)
        endpoints = directory.resolve("kv")
        assert endpoints == [
            Endpoint(service="kv", url="memory://a", load=0.5, generation=1)
        ]

    def test_resolve_unknown_service_is_empty_not_error(self):
        directory, _ = self.make()
        assert directory.resolve("nothing") == []

    def test_lease_expires_without_heartbeat(self):
        directory, clock = self.make()
        directory.advertise("kv", "memory://a", 0.0, 2.0)
        clock.advance(1.9)
        assert len(directory.resolve("kv")) == 1
        clock.advance(0.2)
        assert directory.resolve("kv") == []
        assert directory.expired == 1

    def test_heartbeat_extends_lease(self):
        directory, clock = self.make()
        directory.advertise("kv", "memory://a", 0.0, 2.0)
        for _ in range(5):
            clock.advance(1.5)
            assert directory.heartbeat("kv", "memory://a", 1.0) is True
        # 7.5 simulated seconds on a 2 second lease, still alive.
        assert len(directory.resolve("kv")) == 1

    def test_heartbeat_reports_lapsed_lease(self):
        directory, clock = self.make()
        directory.advertise("kv", "memory://a", 0.0, 2.0)
        clock.advance(2.1)
        assert directory.heartbeat("kv", "memory://a", 0.0) is False

    def test_heartbeat_refreshes_load(self):
        directory, _ = self.make()
        directory.advertise("kv", "memory://a", 0.0, 2.0)
        directory.heartbeat("kv", "memory://a", 7.0)
        assert directory.resolve("kv")[0].load == 7.0

    def test_withdraw_removes_immediately(self):
        directory, _ = self.make()
        directory.advertise("kv", "memory://a", 0.0, 2.0)
        assert directory.withdraw("kv", "memory://a") is True
        assert directory.resolve("kv") == []
        assert directory.withdraw("kv", "memory://a") is False

    def test_readvertise_bumps_generation(self):
        """A live entry re-advertised means the replica restarted."""
        directory, _ = self.make()
        first = directory.advertise("kv", "memory://a", 0.0, 2.0)
        second = directory.advertise("kv", "memory://a", 0.0, 2.0)
        assert (first.generation, second.generation) == (1, 2)
        # The fencing token is strictly monotonic across re-advertises.
        assert second.token > first.token
        assert directory.resolve("kv")[0].generation == 2

    def test_advertise_after_full_expiry_registers_again(self):
        """A service whose every lease lapsed accepts new entries.

        (Regression: the lazy sweep unregisters an emptied service and
        a later advertise must re-register it, not mutate an orphan.)
        """
        directory, clock = self.make()
        directory.advertise("kv", "memory://a", 0.0, 2.0)
        clock.advance(5.0)
        assert directory.resolve("kv") == []
        directory.advertise("kv", "memory://b", 0.0, 2.0)
        assert [e.url for e in directory.resolve("kv")] == ["memory://b"]

    def test_lease_default_and_clamp(self):
        directory, clock = self.make(default_lease=1.0, max_lease=3.0)
        directory.advertise("kv", "memory://default", 0.0, 0.0)
        directory.advertise("kv", "memory://greedy", 0.0, 9999.0)
        clock.advance(1.1)  # past default, inside clamp
        assert [e.url for e in directory.resolve("kv")] == ["memory://greedy"]
        clock.advance(2.0)  # past the 3 second clamp
        assert directory.resolve("kv") == []

    def test_advertise_rejects_empty_names(self):
        directory, _ = self.make()
        with pytest.raises(ValueError):
            directory.advertise("", "memory://a", 0.0, 2.0)
        with pytest.raises(ValueError):
            directory.advertise("kv", "", 0.0, 2.0)

    def test_resolve_is_sorted_by_url(self):
        directory, _ = self.make()
        directory.advertise("kv", "memory://b", 0.0, 2.0)
        directory.advertise("kv", "memory://a", 0.0, 2.0)
        assert [e.url for e in directory.resolve("kv")] == [
            "memory://a",
            "memory://b",
        ]

    def test_list_services_and_entry_count_sweep(self):
        directory, clock = self.make()
        directory.advertise("kv", "memory://a", 0.0, 2.0)
        directory.advertise("kv", "memory://b", 0.0, 2.0)
        directory.advertise("queue", "memory://q", 0.0, 60.0)
        assert directory.list_services() == ["kv", "queue"]
        assert directory.entry_count() == 3
        clock.advance(3.0)
        assert directory.list_services() == ["queue"]
        assert directory.entry_count() == 1

    def test_sweep_now_counts_the_fallen(self):
        directory, clock = self.make()
        directory.advertise("kv", "memory://a", 0.0, 2.0)
        directory.advertise("queue", "memory://q", 0.0, 2.0)
        clock.advance(3.0)
        assert directory.sweep_now() == 2
        assert directory.sweep_now() == 0

    def test_metrics_counters(self):
        metrics = MetricsRegistry()
        directory, clock = self.make(metrics=metrics)
        directory.advertise("kv", "memory://a", 0.0, 2.0)
        directory.heartbeat("kv", "memory://a", 0.0)
        clock.advance(3.0)
        directory.sweep_now()
        directory.advertise("kv", "memory://b", 0.0, 2.0)
        directory.withdraw("kv", "memory://b")
        assert metrics.counter("cluster.directory.advertised").value == 2
        assert metrics.counter("cluster.directory.heartbeats").value == 1
        assert metrics.counter("cluster.directory.expired").value == 1
        assert metrics.counter("cluster.directory.withdrawn").value == 1
        assert metrics.gauge("cluster.directory.entries").value == 0.0


class TestDirectoryOverWire:
    @async_test
    async def test_protocol_round_trip(self):
        async with DirectoryServer() as directory:
            address = await directory.start(f"memory://dir-{next(_ids)}")
            client = await ClamClient.connect(address)
            proxy = await client.lookup(DirectoryInterface, DIRECTORY_SERVICE)

            grant = await proxy.advertise("kv", "memory://a", 0.25, 5.0)
            assert grant.generation == 1
            assert grant.epoch == 1 and grant.counter >= 1
            assert await proxy.heartbeat("kv", "memory://a", 0.5) is True
            endpoints = await proxy.resolve("kv")
            assert endpoints == [
                Endpoint(service="kv", url="memory://a", load=0.5, generation=1)
            ]
            assert await proxy.list_services() == ["kv"]
            assert await proxy.entry_count() == 1
            assert await proxy.withdraw("kv", "memory://a") is True
            assert await proxy.resolve("kv") == []
            await client.close()

    @async_test
    async def test_advertiser_keeps_lease_alive(self):
        async with DirectoryServer(default_lease=0.3) as directory:
            address = await directory.start(f"memory://dir-{next(_ids)}")
            advertiser = Advertiser(
                address, "kv", "memory://replica", lease=0.3, interval=0.05
            )
            await advertiser.start()
            try:
                await eventually(lambda: advertiser.heartbeats >= 10, timeout=5.0)
                # Far past the original lease, still resolvable.
                assert directory.directory.resolve("kv") != []
                assert advertiser.misses == 0
            finally:
                await advertiser.stop()
            # A clean stop withdraws the entry immediately.
            assert directory.directory.resolve("kv") == []

    @async_test
    async def test_lease_lapses_when_advertiser_stops_heartbeating(self):
        """stop(withdraw=False) is the shape of a crash."""
        async with DirectoryServer() as directory:
            address = await directory.start(f"memory://dir-{next(_ids)}")
            advertiser = Advertiser(
                address, "kv", "memory://replica", lease=0.2, interval=0.05
            )
            await advertiser.start()
            await advertiser.stop(withdraw=False)
            assert directory.directory.resolve("kv") != []
            await eventually(
                lambda: directory.directory.resolve("kv") == [], timeout=5.0
            )

    @async_test
    async def test_advertiser_renews_after_directory_loses_the_lease(self):
        """A lapsed lease is re-advertised on the next heartbeat."""
        async with DirectoryServer() as directory:
            address = await directory.start(f"memory://dir-{next(_ids)}")
            advertiser = Advertiser(
                address, "kv", "memory://replica", lease=5.0, interval=0.05
            )
            await advertiser.start()
            try:
                # Simulate the directory forgetting us (restart shape).
                directory.directory.withdraw("kv", "memory://replica")
                await eventually(lambda: advertiser.renewals >= 1, timeout=5.0)
                endpoints = directory.directory.resolve("kv")
                assert [e.url for e in endpoints] == ["memory://replica"]
            finally:
                await advertiser.stop()

    def test_default_lease_is_sane(self):
        assert 0.0 < DEFAULT_LEASE <= 60.0
