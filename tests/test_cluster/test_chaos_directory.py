"""Seeded chaos against the replicated directory — the acceptance run.

Three directory replicas whose *peer links* ride faulted transports
(mild seeded frame chaos plus a :class:`Partition` controller), with
live advertisers and ten watching clients on clean links.  Mid-run the
scenario does both of the bad things:

1. **Partition** the leader away from both followers.  The followers
   elect a successor; the old leader keeps ruling its island.  The cut
   to the *non-leader* follower heals first, so the deposed leader's
   stale-term append is deterministically rejected — the rejection IS
   the fencing comparison, counted on ``cluster.directory.fenced_writes``
   — before the new leader's traffic can reach it.
2. **Kill** the then-current leader outright.  The surviving majority
   elects again and the watch streams resubscribe with their cursors.

Throughout: every watching client applies every directory event at
most once (asserted by recording ``(epoch, version)`` stamps), and by
the end every client's cache re-resolves to the full live endpoint
set via watch upcalls — the polling fallback is pushed out past the
assertion window, so convergence *must* come from the watch plane.
"""

import asyncio
import itertools
import os

import pytest

from repro.cluster import (
    Advertiser,
    ClusterClient,
    LeaderClient,
    ReplicatedDirectoryServer,
)
from repro.faults import FaultInjector, FaultRates, Partition, SeededSchedule
from repro.obs.metrics import MetricsRegistry
from tests.support import async_test, eventually

_ids = itertools.count(1)

SEEDS = [int(s) for s in os.environ.get("CHAOS_SEED", "").split(",") if s] or [1, 2, 3]

N_WATCHERS = 10
LEASE = 1.0


def replica_rates() -> FaultRates:
    # Mild frame chaos on the replica mesh: enough to exercise retries
    # and re-elections, low enough that elections still converge.
    return FaultRates(
        drop=0.01,
        delay=0.03,
        duplicate=0.01,
        reorder=0.01,
        corrupt=0.0,
        close=0.0,
        slow=0.01,
        max_delay=0.002,
    )


def the_leader(servers):
    leaders = [s for s in servers if s.is_leader]
    return leaders[0] if len(leaders) == 1 else None


async def wait_for_leader(servers, timeout=15.0):
    await eventually(lambda: the_leader(servers) is not None, timeout=timeout)
    return the_leader(servers)


def fenced_total(servers) -> float:
    return sum(
        s.server.metrics.counter("cluster.directory.fenced_writes").value
        for s in servers
    )


@pytest.mark.parametrize("seed", SEEDS)
@async_test
async def test_directory_survives_partition_and_leader_kill(seed):
    run = next(_ids)
    urls = [f"memory://cdir-{seed}-{run}-{i}" for i in range(3)]
    net = Partition()
    fault_metrics = MetricsRegistry()

    # One injector per *directed* replica link: node A dials node B
    # through an injector whose endpoint identity is A, so a cut of
    # the (A, B) pair severs the mesh link both ways.
    injectors = {}
    wrapped = {}
    for i, a in enumerate(urls):
        for j, b in enumerate(urls):
            if a == b:
                continue
            injector = FaultInjector(
                SeededSchedule(
                    seed * 1000 + i * 10 + j,
                    rates=replica_rates(),
                    warmup=16,
                    max_faults=60,
                ),
                metrics=fault_metrics,
                endpoint=a,
                partition=net,
            )
            injectors[(a, b)] = injector
            wrapped[(a, b)] = injector.wrap_url(b)

    servers = [
        ReplicatedDirectoryServer(
            url,
            [wrapped[(url, peer)] for peer in urls if peer != url],
            default_lease=LEASE,
            election_timeout=(0.15, 0.30),
            connect_timeout=0.3,
            seed=seed * 31 + i,
        )
        for i, url in enumerate(urls)
    ]
    advertisers = []
    clients = []
    applied = {}  # client index -> list of applied (epoch, version) stamps
    try:
        for server in servers:
            await server.start()
        await wait_for_leader(servers)

        # Two live advertisers for one service, on clean (unpartitioned)
        # links — only the replica mesh is chaotic.
        work_urls = [f"memory://work-{seed}-{run}-{k}" for k in range(2)]
        for work_url in work_urls:
            advertiser = Advertiser(
                urls, "work", work_url,
                lease=LEASE, interval=0.2, connect_timeout=1.0,
            )
            await advertiser.start()
            advertisers.append(advertiser)

        # Ten watching clients.  resolve_ttl=1.0 pushes the watch-mode
        # polling safety net out to 20s — past every assertion window —
        # so cache convergence below must come from watch events.
        for k in range(N_WATCHERS):
            client = await ClusterClient.connect(
                urls, resolve_ttl=1.0, connect_timeout=1.0
            )
            await client.watch("work")
            pool = client.pool("work")
            stamps = applied[k] = []
            original = pool.apply_event

            def recording(event, _orig=original, _stamps=stamps):
                _stamps.append((event.epoch, event.version))
                return _orig(event)

            pool.apply_event = recording
            clients.append(client)

        def caches():
            return [
                sorted(r.url for r in c.pool("work").replicas) for c in clients
            ]

        await eventually(
            lambda: all(cache == sorted(work_urls) for cache in caches()),
            timeout=10.0,
        )

        # -- phase 1: partition the leader off its island --------------------
        # After the heal below, the deposed leader's stale-term append
        # usually reaches the bystander within a heartbeat and is
        # rejected — the rejection IS the fencing comparison.  But mesh
        # chaos can also make the bystander campaign (a dropped
        # heartbeat from the new leader) and its vote request, arriving
        # over the freshly healed link, deposes the old leader before
        # it ever sends a stale append — a legitimate ordering that
        # fences nothing.  Each cycle is one partition epoch; retry
        # until the stale append loses the race the observable way.
        fenced_before = fenced_total(servers)
        for attempt in range(5):
            # Find the current leader and cut it off in one event-loop
            # step (no awaits between the read and the cut):
            # partitioning a stale leader would test nothing.
            deadline = asyncio.get_running_loop().time() + 10.0
            while True:
                first = the_leader(servers)
                if first is not None:
                    followers = [s for s in servers if s is not first]
                    for follower in followers:
                        net.partition(first.url, follower.url)
                    break
                assert (
                    asyncio.get_running_loop().time() < deadline
                ), "no leader to cut"
                await asyncio.sleep(0.02)
            new_leader = await wait_for_leader(followers)
            assert new_leader.term > first.term
            bystander = next(s for s in followers if s is not new_leader)

            # Heal the cut to the NON-leader follower first: the only
            # write traffic on that link is the deposed leader's
            # stale-term replication.
            net.heal(first.url, bystander.url)
            try:
                await eventually(
                    lambda: fenced_total(servers) > fenced_before, timeout=4.0
                )
            except AssertionError:
                # The vote request won the race this epoch; heal up,
                # let the mesh settle, and cut again.
                net.heal()
                await wait_for_leader(servers)
                continue
            break
        else:
            pytest.fail(f"seed {seed}: stale append never reached the bystander")
        await eventually(lambda: not first.is_leader, timeout=15.0)
        net.heal()  # full mesh back

        await eventually(
            lambda: all(cache == sorted(work_urls) for cache in caches()),
            timeout=15.0,
        )

        # -- phase 2: kill the current leader outright -----------------------
        victim = await wait_for_leader(servers)
        survivors = [s for s in servers if s is not victim]
        await victim.shutdown()
        await wait_for_leader(survivors, timeout=15.0)

        await eventually(
            lambda: all(cache == sorted(work_urls) for cache in caches()),
            timeout=15.0,
        )

        # -- the audit trail --------------------------------------------------
        # The stale leader's writes were rejected (acceptance assert).
        assert fenced_total(servers) > 0, f"seed {seed}: no fenced writes"
        # Chaos actually happened on the mesh.
        assert fault_metrics.counter("faults.injected.total").value > 0

        # Every watching client applied every event exactly once: the
        # at-least-once replay downstream of failovers was deduped by
        # the (epoch, version) cursor before application.
        for k, stamps in applied.items():
            assert stamps, f"seed {seed}: client {k} applied no events"
            assert len(stamps) == len(set(stamps)), (
                f"seed {seed}: client {k} applied a duplicate event"
            )

        # The advertisers kept their leases alive across both failures
        # (renewals re-placed any lease a failover dropped).
        for advertiser in advertisers:
            assert advertiser.heartbeats > 0
    finally:
        for client in clients:
            await client.close()
        for advertiser in advertisers:
            await advertiser.stop(withdraw=False)
        for server in servers:
            if server._running:
                await server.shutdown()
        for injector in injectors.values():
            injector.release_url()
