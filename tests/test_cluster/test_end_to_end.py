"""The acceptance run: a directory, three replicas, fifty subscribers.

One publisher posts through an :class:`UpcallGroup` on a hub server
while a :class:`ClusterClient` balances RPC traffic across three
replicas found through the directory.  Every live subscriber receives
every post exactly once (per-subscriber counters prove it), and
killing one replica mid-run neither loses the namespace nor stalls
the pool — calls fail over within the lease window.
"""

import itertools
from typing import Callable

from repro import ClamClient, ClamServer, RemoteInterface
from repro.cluster import Advertiser, ClusterClient, DirectoryServer
from repro.stubs import idempotent
from tests.support import async_test, eventually

_ids = itertools.count(1)

N_REPLICAS = 3
N_SUBSCRIBERS = 50
N_EVENTS = 30

HUB_SOURCE = '''
from typing import Callable

from repro.stubs import RemoteInterface
from repro.cluster import UpcallGroup


class Hub(RemoteInterface):
    def __init__(self):
        self.group = UpcallGroup("e2e", queue_limit=256)

    def join(self, proc: Callable[[str], None]) -> int:
        return self.group.subscribe(proc)

    def post(self, text: str) -> int:
        return self.group.post(text)

    async def drain(self) -> int:
        await self.group.flush()
        return self.group.delivered

    def delivered_per_subscriber(self) -> dict[str, int]:
        return {
            str(key): stats["delivered"]
            for key, stats in self.group.stats()["per_subscriber"].items()
        }
'''


class Hub(RemoteInterface):
    def join(self, proc: Callable[[str], None]) -> int: ...
    def post(self, text: str) -> int: ...
    def drain(self) -> int: ...
    def delivered_per_subscriber(self) -> dict[str, int]: ...


class Work(RemoteInterface):
    __clam_class__ = "e2e.work"

    @idempotent
    def compute(self, value: int) -> int: ...
    @idempotent
    def whoami(self) -> str: ...


class WorkImpl(Work):
    def __init__(self, name: str):
        self._name = name
        self.computed = 0

    def compute(self, value: int) -> int:
        self.computed += 1
        return value * 2

    def whoami(self) -> str:
        return self._name


@async_test
async def test_directory_three_replicas_fifty_subscribers():
    run = next(_ids)
    directory = DirectoryServer()
    directory_url = await directory.start(f"memory://e2e-dir-{run}")

    # -- three replicas of the work service, advertised under leases ----
    servers, impls, advertisers = [], [], []
    for i in range(N_REPLICAS):
        url = f"memory://e2e-{run}-replica-{i}"
        server = ClamServer()
        impl = WorkImpl(f"replica-{i}")
        server.publish("e2e.work", impl)
        await server.start(url)
        advertiser = Advertiser.for_server(
            directory_url, "e2e.work", server, url, lease=0.4, interval=0.1
        )
        await advertiser.start()
        servers.append(server)
        impls.append(impl)
        advertisers.append(advertiser)

    # -- the hub carrying the fan-out group, itself in the directory ----
    hub_server = ClamServer(degrade_upcalls=True)
    hub_url = await hub_server.start(f"memory://e2e-{run}-hub")
    owner = await ClamClient.connect(hub_url)
    await owner.load_module("hub", HUB_SOURCE)
    hub = await owner.create(Hub)
    await owner.publish("hub", hub)
    hub_advertiser = Advertiser(directory_url, "e2e.hub", hub_url, lease=5.0)
    await hub_advertiser.start()

    # -- fifty subscribers, a handful of clients each -------------------
    subscriber_clients = []
    logs: list[list[str]] = []
    for i in range(N_SUBSCRIBERS):
        client = await ClamClient.connect(hub_url)
        log: list[str] = []
        proxy = await client.lookup(Hub, "hub")
        await proxy.join(log.append)
        subscriber_clients.append(client)
        logs.append(log)

    cluster_client = await ClusterClient.connect(
        directory_url, resolve_ttl=0.05, down_ttl=0.2
    )
    work = await cluster_client.bind("e2e.work", Work)

    # The hosted group object, for server-side counter assertions.
    hub_impl = next(
        descriptor.obj
        for descriptor in hub_server.exports.table
        if hasattr(descriptor.obj, "group")
    )

    try:
        # -- phase 1: posts fan out while calls balance -----------------
        for i in range(N_EVENTS // 2):
            assert await hub.post(f"event-{i}") == N_SUBSCRIBERS
            assert await work.compute(i) == i * 2

        # -- kill one replica mid-run, the hard way (no withdraw) -------
        victim = 0
        await advertisers[victim].stop(withdraw=False)
        await servers[victim].shutdown()

        # -- phase 2: the pool must keep serving without a stall --------
        for i in range(N_EVENTS // 2, N_EVENTS):
            assert await hub.post(f"event-{i}") == N_SUBSCRIBERS
            assert await work.compute(i) == i * 2

        # Failover happened within the lease window: the survivors
        # absorbed the traffic and the directory expired the corpse.
        await eventually(
            lambda: len(
                directory.directory.resolve("e2e.work")
            ) == N_REPLICAS - 1,
            timeout=5.0,
        )
        assert "e2e.work" in directory.directory.list_services()  # namespace intact
        survivors = {await work.whoami() for _ in range(8)}
        assert survivors == {"replica-1", "replica-2"}

        # -- exactly once, to every subscriber --------------------------
        await hub.drain()
        expected = [f"event-{i}" for i in range(N_EVENTS)]
        for log in logs:
            assert log == expected  # every event, once, in order
        per_subscriber = await hub.delivered_per_subscriber()
        assert len(per_subscriber) == N_SUBSCRIBERS
        assert all(count == N_EVENTS for count in per_subscriber.values())
        assert hub_impl.group.delivered == N_EVENTS * N_SUBSCRIBERS
        assert hub_impl.group.evicted_subscribers == 0 and hub_impl.group.dropped == 0

        # Every compute ran exactly once somewhere in the pool.
        assert sum(impl.computed for impl in impls) >= N_EVENTS
    finally:
        await cluster_client.close()
        for client in subscriber_clients:
            await client.close()
        await owner.close()
        await hub_advertiser.stop()
        await hub_server.shutdown()
        for i, (advertiser, server) in enumerate(zip(advertisers, servers)):
            if i != 0:
                await advertiser.stop()
                await server.shutdown()
        await directory.shutdown()
