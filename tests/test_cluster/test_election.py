"""Election state machine: terms, votes, stickiness, up-to-date checks.

:class:`ElectionManager` is pure state with an injectable clock, so
every edge case — vote splitting, leader stickiness, the log
up-to-date rule — runs deterministically without a cluster.  The
wired-up protocol (over real connections, with kills and partitions)
is exercised in ``test_replicate`` and ``test_chaos_directory``.
"""

import pytest

from repro.cluster import (
    ROLE_CANDIDATE,
    ROLE_FOLLOWER,
    ROLE_LEADER,
    ElectionManager,
)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make(url="memory://n1", seed=1, timeout=(0.15, 0.30)):
    clock = FakeClock()
    return (
        ElectionManager(url, election_timeout=timeout, seed=seed, clock=clock),
        clock,
    )


class TestTimers:
    def test_starts_as_follower_term_zero(self):
        manager, _ = make()
        assert manager.role == ROLE_FOLLOWER
        assert manager.term == 0
        assert not manager.is_leader

    def test_times_out_after_election_timeout(self):
        manager, clock = make()
        assert not manager.timed_out()
        clock.advance(0.31)  # past timeout_max
        assert manager.timed_out()

    def test_leader_never_times_out(self):
        manager, clock = make()
        manager.start_election()
        manager.become_leader()
        clock.advance(10.0)
        assert not manager.timed_out()

    def test_leader_contact_rearms_the_timer(self):
        manager, clock = make()
        clock.advance(0.14)
        manager.note_leader(1, "memory://boss")
        clock.advance(0.14)  # 0.28 total, but timer was re-armed
        assert not manager.timed_out()

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            ElectionManager("memory://n1", election_timeout=(0.0, 0.1))
        with pytest.raises(ValueError):
            ElectionManager("memory://n1", election_timeout=(0.3, 0.1))


class TestNoteLeader:
    def test_stale_term_is_rejected(self):
        manager, _ = make()
        manager.note_leader(5, "memory://boss")
        assert manager.note_leader(4, "memory://usurper") is False
        assert manager.leader_url == "memory://boss"

    def test_higher_term_adopts_and_clears_vote(self):
        manager, _ = make()
        manager.start_election()  # voted for self at term 1
        assert manager.note_leader(2, "memory://boss") is True
        assert manager.term == 2
        assert manager.voted_for is None
        assert manager.role == ROLE_FOLLOWER

    def test_candidate_steps_down_for_equal_term_leader(self):
        # Two candidates at the same term; the loser hears the
        # winner's first append and yields.
        manager, _ = make()
        term = manager.start_election()
        assert manager.note_leader(term, "memory://winner") is True
        assert manager.role == ROLE_FOLLOWER

    def test_leader_changes_counted_once_per_change(self):
        manager, _ = make()
        manager.note_leader(1, "memory://a")
        manager.note_leader(1, "memory://a")  # heartbeat, not a change
        manager.note_leader(2, "memory://b")
        assert manager.leader_changes == 2


class TestVoting:
    def test_grants_to_up_to_date_candidate(self):
        manager, _ = make()
        assert manager.on_vote_request(1, "memory://cand", 5, 1, 5, 1) is True
        assert manager.voted_for == "memory://cand"
        assert manager.term == 1

    def test_stale_term_denied(self):
        manager, _ = make()
        manager.note_leader(3, "memory://boss")
        manager.leader_is_fresh()  # (freshness does not matter here)
        assert manager.on_vote_request(2, "memory://cand", 9, 2, 0, 0) is False

    def test_one_vote_per_term(self):
        manager, _ = make()
        assert manager.on_vote_request(1, "memory://a", 0, 0, 0, 0) is True
        assert manager.on_vote_request(1, "memory://b", 0, 0, 0, 0) is False
        # Same candidate retrying its request is re-granted (the
        # reply may have been lost).
        assert manager.on_vote_request(1, "memory://a", 0, 0, 0, 0) is True

    def test_leader_stickiness_denies_without_adopting_term(self):
        """A rejoining node with an inflated term cannot stampede a
        healthy cluster into an election (PreVote-lite)."""
        manager, _ = make()
        manager.note_leader(2, "memory://boss")
        assert manager.on_vote_request(99, "memory://rejoiner", 9, 9, 0, 0) is False
        assert manager.term == 2  # the inflated term was NOT adopted

    def test_stickiness_lapses_with_the_lease(self):
        manager, clock = make()
        manager.note_leader(2, "memory://boss")
        clock.advance(0.31)  # leader contact stale
        assert manager.on_vote_request(3, "memory://cand", 9, 2, 9, 2) is True

    def test_out_of_date_log_denied(self):
        manager, clock = make()
        clock.advance(1.0)  # no fresh leader
        # Our log: last (term=2, index=10).  Candidate behind on term:
        assert manager.on_vote_request(3, "memory://c", 99, 1, 10, 2) is False
        # Behind on index within the same last term:
        assert manager.on_vote_request(4, "memory://c", 9, 2, 10, 2) is False
        # Equal is up-to-date enough:
        assert manager.on_vote_request(5, "memory://c", 10, 2, 10, 2) is True


class TestCampaign:
    def test_start_election_opens_a_term_voting_for_self(self):
        manager, _ = make("memory://me")
        term = manager.start_election()
        assert term == 1
        assert manager.role == ROLE_CANDIDATE
        assert manager.voted_for == "memory://me"
        assert manager.votes == {"memory://me"}

    def test_majority_arithmetic(self):
        manager, _ = make("memory://me")
        manager.start_election()
        assert manager.has_majority(1)
        assert not manager.has_majority(3)
        manager.note_vote("memory://peer", manager.term, True)
        assert manager.has_majority(3)
        assert not manager.has_majority(5)

    def test_stale_and_denied_votes_ignored(self):
        manager, _ = make("memory://me")
        manager.start_election()
        manager.start_election()  # term 2 — replies from term 1 are stale
        manager.note_vote("memory://peer", 1, True)
        manager.note_vote("memory://other", 2, False)
        assert manager.votes == {"memory://me"}

    def test_higher_term_reply_steps_down(self):
        manager, _ = make("memory://me")
        manager.start_election()
        manager.note_vote("memory://peer", 7, False)
        assert manager.role == ROLE_FOLLOWER
        assert manager.term == 7

    def test_become_leader(self):
        manager, _ = make("memory://me")
        manager.start_election()
        manager.become_leader()
        assert manager.is_leader
        assert manager.leader_url == "memory://me"
        assert manager.role == ROLE_LEADER

    def test_snapshot_shape(self):
        manager, _ = make("memory://me")
        manager.start_election()
        snap = manager.snapshot()
        assert snap["self"] == "memory://me"
        assert snap["role"] == ROLE_CANDIDATE
        assert snap["term"] == 1
        assert snap["votes"] == ["memory://me"]


class TestSafetyProperty:
    def test_at_most_one_leader_per_term(self):
        """Five nodes, every pairwise vote request at one term: the
        single-vote rule means at most one candidate can reach a
        majority — the Raft safety core, checked exhaustively."""
        urls = [f"memory://n{i}" for i in range(5)]
        clocks = {}
        managers = {}
        for i, url in enumerate(urls):
            clock = FakeClock()
            clock.advance(1.0)  # nobody has a fresh leader
            managers[url] = ElectionManager(
                url, election_timeout=(0.15, 0.30), seed=i, clock=clock
            )
            clocks[url] = clock
        # Every node campaigns at term 1 simultaneously.
        for manager in managers.values():
            manager.start_election()
        # Every candidate asks every other node for a vote.
        for candidate in urls:
            for voter in urls:
                if voter == candidate:
                    continue
                granted = managers[voter].on_vote_request(
                    1, candidate, 0, 0, 0, 0
                )
                managers[candidate].note_vote(voter, 1, granted)
        winners = [
            url for url in urls if managers[url].has_majority(len(urls))
        ]
        assert len(winners) <= 1
