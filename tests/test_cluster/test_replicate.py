"""The replicated directory: election, replication, failover, fencing.

Three real replicas over the in-process transport, driven through the
public surfaces (:class:`LeaderClient`, :class:`Advertiser`,
:class:`ClusterClient`).  The seeded-chaos version of these scenarios
— partitions, kills mid-traffic — lives in ``test_chaos_directory``.
"""

import asyncio
import itertools

import pytest

from repro.cluster import (
    DIRECTORY_SERVICE,
    Advertiser,
    ClusterClient,
    DirectoryInterface,
    LeaderClient,
    ReplicatedDirectoryServer,
)
from repro.client import ClamClient
from repro.errors import NotLeaderError
from repro.rpc import FencingToken
from tests.support import async_test, eventually

_ids = itertools.count(1)


def make_cluster(n=3, *, tag="", **options):
    run = next(_ids)
    urls = [f"memory://repl-{tag}{run}-{i}" for i in range(n)]
    options.setdefault("election_timeout", (0.10, 0.25))
    options.setdefault("default_lease", 1.0)
    servers = [
        ReplicatedDirectoryServer(
            url,
            [u for u in urls if u != url],
            seed=17 * run + i,
            **options,
        )
        for i, url in enumerate(urls)
    ]
    return urls, servers


async def start_all(servers):
    for server in servers:
        await server.start()


async def stop_all(servers):
    for server in servers:
        await server.shutdown()


def the_leader(servers):
    leaders = [s for s in servers if s.is_leader]
    return leaders[0] if len(leaders) == 1 else None


async def wait_for_leader(servers, timeout=10.0):
    await eventually(lambda: the_leader(servers) is not None, timeout=timeout)
    return the_leader(servers)


@async_test
async def test_three_replicas_elect_exactly_one_leader():
    urls, servers = make_cluster()
    await start_all(servers)
    try:
        leader = await wait_for_leader(servers)
        # Settled: every node agrees on the leader and its term.
        await eventually(
            lambda: all(s.leader_url == leader.url for s in servers)
        )
        assert sum(1 for s in servers if s.is_leader) == 1
        assert all(s.term == leader.term for s in servers)
    finally:
        await stop_all(servers)


@async_test
async def test_follower_write_raises_not_leader_with_hint():
    urls, servers = make_cluster()
    await start_all(servers)
    try:
        leader = await wait_for_leader(servers)
        follower = next(s for s in servers if not s.is_leader)
        await eventually(lambda: follower.leader_url == leader.url)
        client = await ClamClient.connect(follower.url)
        try:
            proxy = await client.lookup(DirectoryInterface, DIRECTORY_SERVICE)
            with pytest.raises(NotLeaderError) as info:
                await proxy.advertise("kv", "memory://kv-a", 0.0, 5.0)
            assert info.value.leader_url == leader.url
            # Reads are served anywhere.
            assert await proxy.resolve("kv") == []
        finally:
            await client.close()
    finally:
        await stop_all(servers)


@async_test
async def test_leader_client_chases_the_hint_from_any_entry_point():
    urls, servers = make_cluster()
    await start_all(servers)
    try:
        leader = await wait_for_leader(servers)
        follower_urls = [s.url for s in servers if not s.is_leader]
        # Hand the link only follower urls: the first write must be
        # redirected by hint to the leader and succeed.
        link = LeaderClient(follower_urls)
        try:
            grant = await link.advertise("kv", "memory://kv-a", 0.0, 5.0)
            assert grant.generation == 1
            assert link.url == leader.url
            assert link.redirects >= 1
        finally:
            await link.close()
    finally:
        await stop_all(servers)


@async_test
async def test_writes_replicate_to_every_follower():
    urls, servers = make_cluster()
    await start_all(servers)
    try:
        await wait_for_leader(servers)
        link = LeaderClient(urls)
        try:
            await link.advertise("kv", "memory://kv-a", 0.25, 5.0)
            await link.advertise("queue", "memory://q-a", 0.0, 5.0)
            await link.withdraw("queue", "memory://q-a")

            def replicated():
                return all(
                    [e.url for e in s.directory.resolve("kv")] == ["memory://kv-a"]
                    and s.directory.resolve("queue") == []
                    for s in servers
                )

            await eventually(replicated)
            # The log is identical everywhere.
            assert len({s.last_index for s in servers}) == 1
        finally:
            await link.close()
    finally:
        await stop_all(servers)


@async_test
async def test_failover_bumps_epoch_and_fences_token_order():
    """Kill the leader: a new one takes over within the election
    timeout and every token it grants outranks every old grant."""
    urls, servers = make_cluster()
    await start_all(servers)
    try:
        first = await wait_for_leader(servers)
        link = LeaderClient(urls)
        try:
            grants = [
                await link.advertise("kv", f"memory://kv-{i}", 0.0, 5.0)
                for i in range(3)
            ]
            old_top = max(g.token for g in grants)
            survivors = [s for s in servers if s is not first]
            await first.shutdown()
            await link.reset()  # the link may be dialled at the corpse
            second = await wait_for_leader(survivors)
            assert second.term > first.term
            grant = await link.advertise("kv", "memory://kv-new", 0.0, 5.0)
            assert grant.epoch == second.term
            assert grant.token > old_top
        finally:
            await link.close()
    finally:
        await stop_all(servers)


@async_test
async def test_leases_survive_failover_for_one_window():
    """A new leader re-grants surviving leases one full window before
    sweeping, so live advertisers re-resolve without a gap."""
    urls, servers = make_cluster(default_lease=0.5)
    await start_all(servers)
    try:
        leader = await wait_for_leader(servers)
        advertiser = Advertiser(
            urls, "kv", "memory://kv-a", lease=0.5, interval=0.1,
            connect_timeout=1.0,
        )
        await advertiser.start()
        try:
            survivors = [s for s in servers if s is not leader]
            # Let the grant replicate first — killing the leader inside
            # the apply-before-commit window is a *different* scenario
            # (the advertiser self-heals by re-advertising), covered by
            # the chaos suite.
            await eventually(
                lambda: all(s.directory.resolve("kv") for s in survivors)
            )
            await leader.shutdown()
            second = await wait_for_leader(survivors)
            # Immediately after the election the entry is still there
            # (regranted); the advertiser's heartbeats then keep it.
            assert [e.url for e in second.directory.resolve("kv")] == [
                "memory://kv-a"
            ]
            before = advertiser.heartbeats
            await eventually(lambda: advertiser.heartbeats >= before + 3)
            assert [e.url for e in second.directory.resolve("kv")] == [
                "memory://kv-a"
            ]
        finally:
            await advertiser.stop()
    finally:
        await stop_all(servers)


@async_test
async def test_dead_advertiser_expires_via_logged_sweep():
    """Only the leader expires leases; the expiry is a replicated op,
    so every follower drops the entry too."""
    urls, servers = make_cluster(default_lease=0.3)
    await start_all(servers)
    try:
        await wait_for_leader(servers)
        advertiser = Advertiser(urls, "kv", "memory://kv-a", lease=0.3, interval=0.1)
        await advertiser.start()
        await advertiser.stop(withdraw=False)  # crash shape
        await eventually(
            lambda: all(s.directory.resolve("kv") == [] for s in servers),
            timeout=10.0,
        )
        assert all(s.directory.expired >= 1 for s in servers)
    finally:
        await stop_all(servers)


@async_test
async def test_restarted_replica_resyncs_via_snapshot():
    """A replica that rejoins behind a compacted log gets a state
    snapshot, not an append stream it can no longer follow."""
    urls, servers = make_cluster(max_log=8)
    await start_all(servers)
    try:
        leader = await wait_for_leader(servers)
        victim = next(s for s in servers if not s.is_leader)
        victim_index = servers.index(victim)
        await victim.shutdown()

        link = LeaderClient(urls)
        try:
            # Enough writes to force compaction past the victim's log.
            for i in range(24):
                await link.advertise("kv", f"memory://kv-{i}", 0.0, 60.0)
        finally:
            await link.close()
        assert leader._log_start > 0

        restarted = ReplicatedDirectoryServer(
            victim.url,
            [u for u in urls if u != victim.url],
            election_timeout=(0.10, 0.25),
            default_lease=1.0,
            max_log=8,
            seed=99,
        )
        servers[victim_index] = restarted
        await restarted.start()
        await eventually(
            lambda: restarted.last_index == leader.last_index, timeout=10.0
        )
        assert len(restarted.directory.resolve("kv")) == 24
        assert restarted.directory.epoch == leader.directory.epoch
    finally:
        await stop_all(servers)


@async_test
async def test_cluster_client_watch_survives_failover_exactly_once():
    """Watch events keep patching the cache across a leader kill, with
    no event applied twice (the (epoch, version) cursor dedups)."""
    urls, servers = make_cluster()
    await start_all(servers)
    try:
        leader = await wait_for_leader(servers)
        client = await ClusterClient.connect(urls, connect_timeout=1.0)
        try:
            link = LeaderClient(urls)
            await link.advertise("kv", "memory://kv-a", 0.0, 30.0)
            await client.watch("kv")

            def cached():
                pool = client.pool("kv")
                return sorted(r.url for r in pool.replicas)

            await eventually(lambda: cached() == ["memory://kv-a"])

            survivors = [s for s in servers if s is not leader]
            await leader.shutdown()
            await wait_for_leader(survivors)
            await link.reset()
            await link.advertise("kv", "memory://kv-b", 0.0, 30.0)
            await eventually(
                lambda: cached() == ["memory://kv-a", "memory://kv-b"],
                timeout=15.0,
            )
            await link.withdraw("kv", "memory://kv-a")
            await eventually(lambda: cached() == ["memory://kv-b"], timeout=15.0)
            await link.close()
        finally:
            await client.close()
    finally:
        await stop_all(servers)


@async_test
async def test_advertiser_reports_directory_unreachable_incident():
    """Satellite: repeated heartbeat failures surface as one
    ``directory-unreachable`` incident through the sink."""
    urls, servers = make_cluster(n=1)
    await start_all(servers)
    incidents = []
    advertiser = Advertiser(
        urls,
        "kv",
        "memory://kv-a",
        lease=5.0,
        interval=0.05,
        miss_threshold=3,
        connect_timeout=0.2,
        incident_sink=lambda reason, detail: incidents.append((reason, detail)),
    )
    await advertiser.start()
    try:
        await stop_all(servers)  # the whole directory goes away
        await eventually(lambda: len(incidents) >= 1, timeout=30.0)
        reason, detail = incidents[0]
        assert reason == "directory-unreachable"
        assert "kv@memory://kv-a" in detail
        # One incident per outage, not one per miss.
        await eventually(lambda: advertiser.misses >= advertiser._miss_threshold + 2,
                         timeout=30.0)
        assert len(incidents) == 1
    finally:
        await advertiser.stop(withdraw=False)


@async_test
async def test_fencing_token_from_grant_fences_stale_publisher():
    """The grant's token, used via fence_scope, protects a fenced
    resource from a stale incarnation (the snippet-1 scenario)."""
    from repro.rpc import fence_scope
    from repro.errors import FencedWriteError
    from repro.server import ClamServer
    from repro.stubs import RemoteInterface

    urls, servers = make_cluster()
    await start_all(servers)
    target = ClamServer()

    class Noop(RemoteInterface):
        __clam_class__ = "fence.noop"

    target_url = await target.start(f"memory://fence-target-{next(_ids)}")
    try:
        await wait_for_leader(servers)
        link = LeaderClient(urls)
        old = await link.advertise("kv", "memory://old", 0.0, 5.0)
        new = await link.advertise("kv", "memory://old", 0.0, 5.0)  # re-advertise
        await link.close()
        assert new.token > old.token

        client = await ClamClient.connect(target_url)
        try:
            builtin = client.server
            target.publish("thing", Noop())
            # The *new* incarnation publishes first...
            with fence_scope(new.token):
                await builtin.publish("kv-owner", await builtin.lookup("thing"))
            # ...then the stale one tries to clobber it and is fenced.
            with fence_scope(old.token):
                with pytest.raises(FencedWriteError):
                    await builtin.publish("kv-owner", await builtin.lookup("thing"))
            assert (
                target.metrics.counter("cluster.directory.fenced_writes").value
                >= 1
            )
        finally:
            await client.close()
    finally:
        await target.shutdown()
        await stop_all(servers)


@async_test
async def test_no_replicas_kicks_a_silently_dead_watch_back_alive():
    """Satellite: when every cached replica of a *watched* service is
    down, the pool invalidates its snapshot and kicks the watch into
    resubscribing from its cursor — so a stream that silently missed
    the story (withdraw + re-advertise it never delivered) is re-armed
    instead of trusted until the stretched TTL expires."""
    urls, servers = make_cluster()
    await start_all(servers)
    try:
        await wait_for_leader(servers)
        client = await ClusterClient.connect(
            urls, connect_timeout=1.0, resolve_ttl=0.25
        )
        try:
            link = LeaderClient(urls)
            await link.advertise("kv", "memory://kv-a", 0.0, 30.0)
            await client.watch("kv")
            pool = client.pool("kv")

            def cached():
                return sorted(r.url for r in pool.replicas)

            await eventually(lambda: cached() == ["memory://kv-a"])
            watch = client._watches["kv"]

            # The stream goes silently deaf: events stop reaching the
            # pump's queue, but the link stays healthy so the health
            # probe never fires.  The pool misses a withdraw + a
            # re-advertise, and its cursor never moves past them.
            watch.queue.put_nowait = lambda event: None
            await link.withdraw("kv", "memory://kv-a")
            await link.advertise("kv", "memory://kv-b", 0.0, 30.0)
            await asyncio.sleep(0.3)
            assert cached() == ["memory://kv-a"]  # stale, provably
            del watch.queue.put_nowait  # hearing restored

            # Every cached replica turns out dead (soft-down keeps the
            # freshness stamp, so only the all-down path can save us).
            for replica in pool.replicas:
                pool.mark_overloaded(replica, retry_after_ms=2000)
            live = await pool._candidates()
            assert [r.url for r in live] == ["memory://kv-b"]
            assert (
                client.metrics.counter(
                    "cluster.pool.watch_kicked", service="kv"
                ).value
                == 1
            )

            # The kick re-armed the stream: a later advertise arrives
            # via watch events, well inside the ~5s TTL safety net.
            await eventually(lambda: pool.watching, timeout=5.0)
            await link.advertise("kv", "memory://kv-c", 0.0, 30.0)
            await eventually(
                lambda: "memory://kv-c" in cached(), timeout=3.0
            )
            await link.close()
        finally:
            await client.close()
    finally:
        await stop_all(servers)
