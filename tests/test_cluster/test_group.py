"""UpcallGroup: fan-out delivery, ordering, slow-subscriber policies.

Local-subscriber tests pin the queueing semantics deterministically;
the wire tests register real RUCs from ClamClients and check eviction
rides the §4.3 degradation path.
"""

import asyncio
import itertools
from typing import Callable

import pytest

from repro import ClamClient, ClamServer, RemoteInterface
from repro.cluster import SLOW_POLICIES, UpcallGroup
from repro.errors import SlowSubscriberError, UpcallError
from repro.obs.metrics import MetricsRegistry
from tests.support import async_test, eventually

_ids = itertools.count(1)


class TestLocalFanout:
    @async_test
    async def test_post_reaches_every_subscriber(self):
        group = UpcallGroup("t")
        a, b, c = [], [], []
        group.subscribe(a.append)
        group.subscribe(b.append)

        async def async_sub(value):
            c.append(value)

        group.subscribe(async_sub)
        assert group.post(1) == 3
        assert group.post(2) == 3
        await group.flush()
        assert a == b == c == [1, 2]
        assert group.delivered == 6
        await group.close()

    @async_test
    async def test_per_subscriber_ordering_preserved(self):
        group = UpcallGroup("t", queue_limit=1000)
        seen = []

        async def slow(value):
            await asyncio.sleep(0.0005)
            seen.append(value)

        group.subscribe(slow)
        for i in range(50):
            group.post(i)
        await group.flush()
        assert seen == list(range(50))
        await group.close()

    @async_test
    async def test_multi_arg_events(self):
        group = UpcallGroup("t")
        seen = []
        group.subscribe(lambda who, what: seen.append((who, what)))
        group.post("alice", "hi")
        await group.flush()
        assert seen == [("alice", "hi")]
        await group.close()

    @async_test
    async def test_unsubscribe_stops_delivery(self):
        group = UpcallGroup("t")
        seen = []
        key = group.subscribe(seen.append)
        group.post(1)
        await group.flush()
        assert group.unsubscribe(key) is True
        assert group.unsubscribe(key) is False
        group.post(2)
        await group.flush()
        assert seen == [1]
        assert len(group) == 0
        await group.close()

    @async_test
    async def test_subscriber_exception_counted_not_fatal(self):
        group = UpcallGroup("t")
        seen = []

        def flaky(value):
            if value == 1:
                raise RuntimeError("boom")
            seen.append(value)

        group.subscribe(flaky)
        for i in range(3):
            group.post(i)
        await group.flush()
        assert seen == [0, 2]
        assert group.errors == 1
        assert len(group) == 1  # still subscribed
        await group.close()

    @async_test
    async def test_closed_group_rejects_everything(self):
        group = UpcallGroup("t")
        group.subscribe(lambda v: None)
        await group.close()
        with pytest.raises(UpcallError):
            group.post(1)
        with pytest.raises(UpcallError):
            group.subscribe(lambda v: None)

    @async_test
    async def test_non_callable_subscriber_rejected(self):
        group = UpcallGroup("t")
        with pytest.raises(UpcallError):
            group.subscribe("not callable")
        await group.close()


class TestSlowPolicies:
    def test_policy_names(self):
        assert set(SLOW_POLICIES) == {"drop", "coalesce", "evict"}
        with pytest.raises(ValueError):
            UpcallGroup("t", slow_policy="punish")
        with pytest.raises(ValueError):
            UpcallGroup("t", queue_limit=0)

    @async_test
    async def test_drop_policy_sheds_newest_for_slow_subscriber(self):
        metrics = MetricsRegistry()
        group = UpcallGroup("t", queue_limit=2, slow_policy="drop", metrics=metrics)
        gate = asyncio.Event()
        seen = []

        async def blocked(value):
            await gate.wait()
            seen.append(value)

        group.subscribe(blocked)
        await asyncio.sleep(0)  # pump picks up event 0 immediately
        for i in range(6):
            group.post(i)
        assert group.dropped > 0
        gate.set()
        await group.flush()
        # Oldest events kept, newest shed — and nothing reordered.
        assert seen == sorted(seen)
        assert len(seen) + group.dropped == 6
        assert metrics.counter("cluster.fanout.dropped").value == group.dropped
        await group.close()

    @async_test
    async def test_coalesce_policy_keeps_only_newest(self):
        metrics = MetricsRegistry()
        group = UpcallGroup(
            "t", queue_limit=2, slow_policy="coalesce", metrics=metrics
        )
        gate = asyncio.Event()
        seen = []

        async def blocked(value):
            await gate.wait()
            seen.append(value)

        group.subscribe(blocked)
        await asyncio.sleep(0)
        for i in range(10):
            group.post(i)
        gate.set()
        await group.flush()
        # The final event always survives coalescing.
        assert seen[-1] == 9
        assert group.coalesced > 0
        assert len(seen) < 10
        assert metrics.counter("cluster.fanout.coalesced").value == group.coalesced
        await group.close()

    @async_test
    async def test_evict_policy_removes_the_laggard(self):
        metrics = MetricsRegistry()
        group = UpcallGroup("t", queue_limit=2, slow_policy="evict", metrics=metrics)
        evictions = []
        group._on_evict = lambda key, exc: evictions.append((key, exc))
        gate = asyncio.Event()
        fast, slow_seen = [], []

        async def slow(value):
            await gate.wait()
            slow_seen.append(value)

        group.subscribe(fast.append)
        slow_key = group.subscribe(slow)
        # Yield between posts: the fast pump keeps up, the gated one
        # backs up past queue_limit and is evicted.
        for i in range(5):
            group.post(i)
            await asyncio.sleep(0.005)
        gate.set()
        await group.flush()
        assert fast == [0, 1, 2, 3, 4]
        assert slow_key not in group.subscriber_keys
        assert group.evicted_subscribers == 1
        assert group.evicted_events >= 1  # the laggard's backlog was discarded
        assert len(evictions) == 1
        assert isinstance(evictions[0][1], SlowSubscriberError)
        assert metrics.counter("cluster.fanout.evicted_subscribers").value == 1
        assert (
            metrics.counter("cluster.fanout.evicted_events").value
            == group.evicted_events
        )
        await group.close()

    @async_test
    async def test_stats_shape(self):
        group = UpcallGroup("room", queue_limit=4)
        group.subscribe(lambda v: None)
        group.post(1)
        await group.flush()
        stats = group.stats()
        assert stats["topic"] == "room"
        assert stats["subscribers"] == 1
        assert stats["posts"] == 1
        assert stats["delivered"] == 1
        (per,) = stats["per_subscriber"].values()
        assert per["delivered"] == 1
        assert stats["evicted_subscribers"] == 0
        assert stats["evicted_events"] == 0
        assert "evicted" not in stats  # the deprecated alias is gone
        await group.close()


ROOM_SOURCE = '''
from typing import Callable

from repro.stubs import RemoteInterface
from repro.cluster import UpcallGroup


class Room(RemoteInterface):
    def __init__(self):
        self.group = UpcallGroup("room", queue_limit=64)

    def join(self, proc: Callable[[str], None]) -> int:
        return self.group.subscribe(proc)

    def say(self, text: str) -> int:
        return self.group.post(text)

    async def drain(self) -> int:
        await self.group.flush()
        return self.group.delivered
'''


class Room(RemoteInterface):
    def join(self, proc: Callable[[str], None]) -> int: ...
    def say(self, text: str) -> int: ...
    def drain(self) -> int: ...


class TestFanoutOverWire:
    @async_test
    async def test_one_post_reaches_every_client(self):
        server = ClamServer(degrade_upcalls=True)
        address = await server.start(f"memory://group-{next(_ids)}")
        publisher = await ClamClient.connect(address)
        await publisher.load_module("room", ROOM_SOURCE)
        room = await publisher.create(Room)
        await publisher.publish("room", room)

        clients, logs = [], []
        for i in range(4):
            client = await ClamClient.connect(address)
            log = []
            proxy = await client.lookup(Room, "room")
            await proxy.join(log.append)
            clients.append(client)
            logs.append(log)

        assert await room.say("hello") == 4
        await room.drain()
        assert all(log == ["hello"] for log in logs)

        for client in clients:
            await client.close()
        await publisher.close()
        await server.shutdown()

    @async_test
    async def test_dead_client_evicted_and_reported(self):
        """A gone subscriber is evicted and the failure degraded (§4.3)."""
        server = ClamServer(degrade_upcalls=True, upcall_timeout=0.5)
        address = await server.start(f"memory://group-{next(_ids)}")
        publisher = await ClamClient.connect(address)
        await publisher.load_module("room", ROOM_SOURCE)
        room = await publisher.create(Room)
        await publisher.publish("room", room)

        keeper = await ClamClient.connect(address)
        keeper_log = []
        keeper_room = await keeper.lookup(Room, "room")
        await keeper_room.join(keeper_log.append)

        goner = await ClamClient.connect(address)
        goner_room = await goner.lookup(Room, "room")
        await goner_room.join(lambda text: None)
        await goner.close()  # takes its upcall stream with it

        await room.say("anyone there?")

        # The group notices the dead delivery path and evicts.
        def evicted():
            return any(
                descriptor.obj.group.evicted_subscribers >= 1
                for descriptor in server.exports.table
                if hasattr(descriptor.obj, "group")
            )

        await eventually(evicted, timeout=5.0)
        # The keeper still receives everything afterwards.
        await room.say("still here")
        await room.drain()
        assert "still here" in keeper_log

        await keeper.close()
        await publisher.close()
        await server.shutdown()
