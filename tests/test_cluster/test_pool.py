"""Replica pools: balancing policies, failover, re-resolution.

Each test raises a small cluster — a directory plus a few replicas all
publishing the same interface under the service name — and drives it
through a :class:`ClusterClient`.
"""

import asyncio
import itertools

import pytest

from repro.cluster import (
    Advertiser,
    ClusterClient,
    DirectoryServer,
    LeastLoaded,
    Replica,
    RoundRobin,
)
from repro.errors import BadCallError, NoReplicasError
from repro.server import ClamServer
from repro.stubs import RemoteInterface, idempotent
from tests.support import async_test

_ids = itertools.count(1)


class Kv(RemoteInterface):
    __clam_class__ = "test.kv"

    @idempotent
    def get(self, key: str) -> str: ...
    def put(self, key: str, value: str) -> bool: ...
    @idempotent
    def whoami(self) -> str: ...


class KvImpl(Kv):
    def __init__(self, name: str):
        self._name = name
        self._data: dict[str, str] = {}

    def get(self, key: str) -> str:
        return self._data.get(key, "")

    def put(self, key: str, value: str) -> bool:
        self._data[key] = value
        return True

    def whoami(self) -> str:
        return self._name


class Cluster:
    """Directory + N replicas + their advertisers, as one fixture."""

    def __init__(
        self,
        n: int,
        *,
        lease: float = 5.0,
        interval: float = 0.05,
        server_kwargs: dict[int, dict] | None = None,
    ):
        self.n = n
        self.lease = lease
        self.interval = interval
        self.server_kwargs = server_kwargs or {}
        self.directory = DirectoryServer()
        self.directory_url = ""
        self.servers: list[ClamServer] = []
        self.impls: list[KvImpl] = []
        self.advertisers: list[Advertiser] = []
        self.urls: list[str] = []

    async def start(self) -> "Cluster":
        run = next(_ids)
        self.directory_url = await self.directory.start(f"memory://pool-dir-{run}")
        for i in range(self.n):
            url = f"memory://pool-{run}-replica-{i}"
            server = ClamServer(session_linger=5.0, **self.server_kwargs.get(i, {}))
            impl = KvImpl(f"replica-{i}")
            server.publish("kv", impl)
            await server.start(url)
            advertiser = Advertiser.for_server(
                self.directory_url, "kv", server, url,
                lease=self.lease, interval=self.interval,
            )
            await advertiser.start()
            self.servers.append(server)
            self.impls.append(impl)
            self.advertisers.append(advertiser)
            self.urls.append(url)
        return self

    async def kill(self, index: int, *, withdraw: bool = False) -> None:
        """Take a replica down the hard way (no clean directory exit)."""
        await self.advertisers[index].stop(withdraw=withdraw)
        await self.servers[index].shutdown()

    async def stop(self) -> None:
        for advertiser in self.advertisers:
            await advertiser.stop()
        for server in self.servers:
            await server.shutdown()
        await self.directory.shutdown()


class TestBalancing:
    @async_test
    async def test_round_robin_spreads_calls(self):
        cluster = await Cluster(3).start()
        try:
            async with await ClusterClient.connect(
                cluster.directory_url, policy="round-robin"
            ) as cc:
                proxy = await cc.bind("kv", Kv)
                names = [await proxy.whoami() for _ in range(9)]
                assert sorted(set(names)) == [
                    "replica-0", "replica-1", "replica-2"
                ]
                stats = cc.pool("kv").stats()
                assert all(s["calls"] == 3 for s in stats.values())
        finally:
            await cluster.stop()

    @async_test
    async def test_least_loaded_prefers_idle_replica(self):
        cluster = await Cluster(2).start()
        try:
            # Pin unequal loads directly in the directory.
            directory = cluster.directory.directory
            directory.heartbeat("kv", cluster.urls[0], 10.0)
            directory.heartbeat("kv", cluster.urls[1], 1.0)
            async with await ClusterClient.connect(
                cluster.directory_url, policy="least-loaded", resolve_ttl=60.0
            ) as cc:
                proxy = await cc.bind("kv", Kv)
                names = {await proxy.whoami() for _ in range(6)}
                assert names == {"replica-1"}
        finally:
            await cluster.stop()

    @async_test
    async def test_policy_objects_and_unknown_policy_name(self):
        cluster = await Cluster(1).start()
        try:
            async with await ClusterClient.connect(
                cluster.directory_url, policy=RoundRobin()
            ) as cc:
                proxy = await cc.bind("kv", Kv)
                assert await proxy.whoami() == "replica-0"
            cc_bad = await ClusterClient.connect(
                cluster.directory_url, policy="fastest"
            )
            with pytest.raises(ValueError, match="unknown balancing policy"):
                await cc_bad.bind("kv", Kv)
            await cc_bad.close()
        finally:
            await cluster.stop()

    def test_least_loaded_breaks_ties_round_robin(self):
        policy = LeastLoaded()
        replicas = [
            Replica.__new__(Replica) for _ in range(3)
        ]
        for i, replica in enumerate(replicas):
            replica.load = 1.0 if i < 2 else 9.0
            replica.url = f"memory://r{i}"
        chosen = {policy.choose(replicas[:3]).url for _ in range(4)}
        assert chosen == {"memory://r0", "memory://r1"}

    def test_least_loaded_steers_around_a_shedding_replica(self):
        import time

        policy = LeastLoaded()
        replicas = [Replica.__new__(Replica) for _ in range(2)]
        for i, replica in enumerate(replicas):
            replica.load = 1.0
            replica.url = f"memory://r{i}"
        now = time.monotonic()
        # r0 shed a call: its penalty outweighs the load tie for a while.
        replicas[0].note_overloaded(now)
        assert replicas[0].effective_load(now) > replicas[1].effective_load(now)
        chosen = {policy.choose(replicas).url for _ in range(4)}
        assert chosen == {"memory://r1"}
        # The penalty decays: half gone at one half-life, and far enough
        # out the replicas tie again.
        assert replicas[0].effective_load(now + 5.0) == pytest.approx(1.5)
        assert replicas[0].effective_load(now + 60.0) == pytest.approx(1.0, abs=1e-3)

    def test_overload_penalty_accumulates_on_repeat_sheds(self):
        import time

        replica = Replica.__new__(Replica)
        replica.load = 0.0
        now = time.monotonic()
        replica.note_overloaded(now)
        replica.note_overloaded(now)
        assert replica.overloads == 2
        assert replica.effective_load(now) == pytest.approx(2.0)


class TestFailover:
    @async_test
    async def test_dead_replica_marked_down_and_calls_fail_over(self):
        cluster = await Cluster(2, lease=0.3).start()
        try:
            async with await ClusterClient.connect(
                cluster.directory_url, down_ttl=30.0
            ) as cc:
                proxy = await cc.bind("kv", Kv)
                assert await proxy.put("k", "v") is True
                await cluster.kill(0)
                # Every later call lands on the survivor, including the
                # ones the policy would have routed to the corpse.
                for _ in range(6):
                    assert await proxy.whoami() == "replica-1"
                assert (
                    cc.metrics.counter(
                        "cluster.pool.marked_down", service="kv"
                    ).value
                    >= 1
                )
        finally:
            await cluster.stop()

    @async_test
    async def test_overloaded_replica_is_soft_downed_and_calls_reroute(self):
        """A shed is retryable before execution: the pool reroutes it
        (even a mutator) and holds the shedding replica out of rotation
        for the server's retry-after hint."""
        from repro.flow import TokenBucket

        cluster = await Cluster(
            2,
            # Replica 0 admits a couple of setup calls, then sheds
            # everything: the refill rate is effectively zero.
            server_kwargs={0: {"admission": TokenBucket(0.001, burst=2)}},
        ).start()
        try:
            async with await ClusterClient.connect(
                cluster.directory_url, policy="round-robin"
            ) as cc:
                proxy = await cc.bind("kv", Kv)
                # Round-robin would alternate replicas; every call still
                # lands somewhere and succeeds.
                assert await proxy.put("k", "v") is True
                names = [await proxy.whoami() for _ in range(8)]
                assert "replica-1" in names
                stats = cc.pool("kv").stats()
                overloads = {
                    url: s["overloads"] for url, s in stats.items()
                }
                assert overloads.get(cluster.urls[0], 0) >= 1
                assert (
                    cc.metrics.counter(
                        "cluster.pool.overloaded", service="kv"
                    ).value
                    >= 1
                )
        finally:
            await cluster.stop()

    @async_test
    async def test_no_replicas_error_when_service_empty(self):
        cluster = await Cluster(0).start()
        try:
            cc = await ClusterClient.connect(cluster.directory_url)
            proxy = await cc.bind("kv", Kv)
            with pytest.raises(NoReplicasError):
                await proxy.whoami()
            await cc.close()
        finally:
            await cluster.stop()

    @async_test
    async def test_pool_recovers_when_replica_returns(self):
        """All-down forces a fresh resolution past the cache TTL."""
        cluster = await Cluster(1, lease=0.3).start()
        try:
            async with await ClusterClient.connect(
                cluster.directory_url, resolve_ttl=0.05, down_ttl=0.1
            ) as cc:
                proxy = await cc.bind("kv", Kv)
                assert await proxy.whoami() == "replica-0"
                await cluster.kill(0, withdraw=True)
                with pytest.raises(NoReplicasError):
                    await proxy.whoami()
                # A fresh replica joins under the same service name.
                run = next(_ids)
                url = f"memory://pool-return-{run}"
                server = ClamServer()
                server.publish("kv", KvImpl("replica-next"))
                await server.start(url)
                advertiser = Advertiser(
                    cluster.directory_url, "kv", url, lease=5.0, interval=0.05
                )
                await advertiser.start()
                try:
                    async def recovered():
                        try:
                            return (await proxy.whoami()) == "replica-next"
                        except NoReplicasError:
                            return False
                    deadline = asyncio.get_running_loop().time() + 5.0
                    while not await recovered():
                        assert (
                            asyncio.get_running_loop().time() < deadline
                        ), "pool never recovered"
                        await asyncio.sleep(0.02)
                finally:
                    await advertiser.stop()
                    await server.shutdown()
        finally:
            await cluster.stop()

    @async_test
    async def test_generation_bump_retires_stale_connection(self):
        """A restarted replica re-advertises; the pool redials it."""
        cluster = await Cluster(1).start()
        try:
            async with await ClusterClient.connect(
                cluster.directory_url, resolve_ttl=0.05
            ) as cc:
                proxy = await cc.bind("kv", Kv)
                assert await proxy.whoami() == "replica-0"
                pool = cc.pool("kv")
                old_client = pool.replicas[0].client
                assert old_client is not None

                # Restart the replica in place: same url, new server.
                await cluster.kill(0)
                server = ClamServer()
                server.publish("kv", KvImpl("replica-0-reborn"))
                await server.start(cluster.urls[0])
                advertiser = Advertiser(
                    cluster.directory_url, "kv", cluster.urls[0],
                    lease=5.0, interval=0.05,
                )
                await advertiser.start()  # generation bumps to 2
                try:
                    # The pool refreshes on the next call past the TTL,
                    # sees the new generation, and redials.
                    async def reborn():
                        try:
                            return (await proxy.whoami()) == "replica-0-reborn"
                        except Exception:
                            return False

                    deadline = asyncio.get_running_loop().time() + 5.0
                    while not await reborn():
                        assert asyncio.get_running_loop().time() < deadline
                        await asyncio.sleep(0.02)
                    assert pool.replicas[0].client is not old_client
                    assert pool.replicas[0].generation >= 2
                finally:
                    await advertiser.stop()
                    await server.shutdown()
        finally:
            await cluster.stop()

    @async_test
    async def test_idempotent_only_failover_refuses_mutators(self):
        """failover='idempotent' re-routes get but not put."""
        from repro.errors import TransportError

        cluster = await Cluster(2, lease=60.0).start()
        try:
            async with await ClusterClient.connect(
                cluster.directory_url,
                failover="idempotent",
                policy="round-robin",
                resolve_ttl=60.0,
            ) as cc:
                proxy = await cc.bind("kv", Kv)
                # Learn both replicas, then kill one without telling
                # the directory (lease far in the future).
                assert await proxy.whoami() in ("replica-0", "replica-1")
                assert await proxy.whoami() in ("replica-0", "replica-1")
                await cluster.kill(1)
                # A mutator that lands on the corpse surfaces the
                # transport error instead of silently re-executing
                # (and does not mark the replica down — the call may
                # have run, the application must decide).
                with pytest.raises(TransportError):
                    for _ in range(4):
                        await proxy.put("k", "v")
                # Idempotent reads fail over and always complete.
                for _ in range(4):
                    assert await proxy.get("missing") == ""
        finally:
            await cluster.stop()


class TestClusterProxy:
    @async_test
    async def test_unknown_method_rejected_locally(self):
        cluster = await Cluster(1).start()
        try:
            async with await ClusterClient.connect(cluster.directory_url) as cc:
                proxy = await cc.bind("kv", Kv)
                with pytest.raises(BadCallError):
                    proxy.no_such_method
        finally:
            await cluster.stop()

    @async_test
    async def test_data_flows_to_the_replica_that_served_the_call(self):
        cluster = await Cluster(2).start()
        try:
            async with await ClusterClient.connect(cluster.directory_url) as cc:
                proxy = await cc.bind("kv", Kv)
                for i in range(4):
                    await proxy.put(f"k{i}", f"v{i}")
                total = sum(len(impl._data) for impl in cluster.impls)
                assert total == 4  # every put executed exactly once
        finally:
            await cluster.stop()

    @async_test
    async def test_repr_and_services(self):
        cluster = await Cluster(2).start()
        try:
            async with await ClusterClient.connect(cluster.directory_url) as cc:
                proxy = await cc.bind("kv", Kv)
                await proxy.whoami()
                assert "test.kv" in repr(proxy)
                assert await cc.services() == ["kv"]
        finally:
            await cluster.stop()


class TestInvalidation:
    """The all-replicas-down path invalidates the cache *and* a live
    directory watch, so a re-advertised replica is picked up without
    waiting out the stretched watch TTL."""

    class _EmptyDirectory:
        def __init__(self):
            self.resolves = 0

        async def resolve(self, service):
            self.resolves += 1
            return []

    def _pool(self, directory) -> "ReplicaPool":
        from repro.cluster import ReplicaPool

        return ReplicaPool(
            "kv",
            directory,
            policy=RoundRobin(),
            resolve_ttl=10.0,
            down_ttl=1.0,
            failover="transport",
            client_options=None,
        )

    @async_test
    async def test_all_down_kicks_a_live_watch(self):
        directory = self._EmptyDirectory()
        pool = self._pool(directory)
        kicks = []
        pool.watching = True
        pool.on_stale = lambda: kicks.append(1)
        with pytest.raises(NoReplicasError):
            await pool._candidates()
        assert kicks == [1]
        # The forced resolution really happened (cache + force).
        assert directory.resolves == 2

    @async_test
    async def test_no_watch_no_kick(self):
        pool = self._pool(self._EmptyDirectory())
        kicks = []
        pool.on_stale = lambda: kicks.append(1)  # registered but not watching
        with pytest.raises(NoReplicasError):
            await pool._candidates()
        assert kicks == []

    @async_test
    async def test_invalidate_drops_cache_freshness(self):
        directory = self._EmptyDirectory()
        pool = self._pool(directory)
        with pytest.raises(NoReplicasError):
            await pool._candidates()
        resolves = directory.resolves
        pool.invalidate()
        await pool.refresh()  # within TTL, but the stamp was dropped
        assert directory.resolves == resolves + 1

    @async_test
    async def test_watch_kick_coalesces(self):
        from repro.cluster.pool import _RESYNC, _ServiceWatch

        watch = _ServiceWatch("kv", link=None)
        watch.kick()
        watch.kick()
        watch.kick()
        assert watch.queue.qsize() == 1
        assert watch.queue.get_nowait() is _RESYNC
