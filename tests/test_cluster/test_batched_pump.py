"""The batched pump under bursts and under seeded chaos.

The rewritten :meth:`UpcallGroup._pump` drains its whole backlog per
wakeup and ships it as one coalesced multi-upcall flush
(``Session.send_upcall_batch``).  These tests pin the properties the
batching must not cost:

- a burst really coalesces (one batch call, N items — not N calls),
  and arrives in strict FIFO order, each event exactly once;
- under seeded fault injection (duplicated / delayed / dropped
  frames), per-subscriber delivery stays exactly-once — the client's
  duplicate-serial window absorbs replayed frames of a coalesced
  write — and a dropped frame degrades that one event instead of
  poisoning the rest of its batch.

Re-running with a failing seed replays the same fault schedule.
"""

import asyncio
import itertools
from typing import Callable

import pytest

from repro import ClamClient, ClamServer, RemoteInterface
from repro.cluster import UpcallGroup
from repro.faults import FaultInjector, FaultRates, SeededSchedule
from repro.server import session as session_module
from tests.support import async_test

_ids = itertools.count(1)


class Hub(RemoteInterface):
    """Host-embedded fan-out hub: subscribers join, the test posts."""

    def __init__(self):
        self.group = UpcallGroup("burst", queue_limit=4096)

    def join(self, proc: Callable[[int], None]) -> int:
        return self.group.subscribe(proc)


@async_test
async def test_burst_coalesces_into_batches_fifo_exactly_once(monkeypatch):
    """A synchronous burst of posts becomes few batch flushes, not
    one flush per event — and ordering/once-ness survive coalescing."""
    batch_calls = []
    original = session_module.Session.send_upcall_batch

    async def counting(self, callback_id, items):
        batch_calls.append(len(items))
        return await original(self, callback_id, items)

    monkeypatch.setattr(session_module.Session, "send_upcall_batch", counting)

    server = ClamServer()
    hub = Hub()
    server.publish("hub", hub)
    address = await server.start(f"memory://batched-pump-{next(_ids)}")
    n_events, n_subscribers = 40, 3
    clients, logs = [], []
    try:
        for _ in range(n_subscribers):
            client = await ClamClient.connect(address)
            proxy = await client.lookup(Hub, "hub")
            log: list[int] = []
            await proxy.join(log.append)
            clients.append(client)
            logs.append(log)

        # Burst: no await between posts, so each pump wakes to a
        # backlog and must drain it as batches.
        for seq in range(n_events):
            hub.group.post(seq)
        await hub.group.flush(timeout=30.0)

        expected = list(range(n_events))
        for log in logs:
            assert log == expected  # FIFO, exactly once, nothing lost
        assert hub.group.delivered == n_events * n_subscribers
        assert sum(batch_calls) == n_events * n_subscribers
        # The point of the rewrite: far fewer flushes than deliveries.
        assert len(batch_calls) < n_events * n_subscribers
        assert max(batch_calls) > 1, "no multi-event batch ever formed"
    finally:
        for client in clients:
            await client.close()
        await server.shutdown()


@pytest.mark.parametrize("seed", [11, 12, 13])
@async_test
async def test_batched_pump_chaos_drops_and_duplicates(seed):
    """Drop/duplicate/delay faults on the wire: every subscriber's log
    is a FIFO subsequence of the posts with no duplicates; dropped
    events are degraded one at a time, never a whole batch."""
    rates = FaultRates(
        drop=0.02, delay=0.05, duplicate=0.03, reorder=0.0,
        corrupt=0.0, close=0.0, slow=0.02, max_delay=0.003,
    )
    injector = FaultInjector(SeededSchedule(seed, rates=rates, warmup=8))
    server = ClamServer(degrade_upcalls=True, upcall_timeout=0.3)
    hub = Hub()
    server.publish("hub", hub)
    address = await server.start(f"memory://batched-chaos-{seed}-{next(_ids)}")
    chaos_url = injector.wrap_url(address)
    n_events, n_subscribers = 60, 2
    clients, logs = [], []
    try:
        for _ in range(n_subscribers):
            client = await ClamClient.connect(chaos_url)
            proxy = await client.lookup(Hub, "hub")
            log: list[int] = []
            await proxy.join(log.append)
            clients.append(client)
            logs.append(log)

        # Post in small bursts so batches form while faults fire.
        for base in range(0, n_events, 8):
            for seq in range(base, min(base + 8, n_events)):
                hub.group.post(seq)
            await asyncio.sleep(0.005)
        await hub.group.flush(timeout=60.0)

        expected = list(range(n_events))
        degraded = len(server.degraded_upcalls)
        total_seen = 0
        for log in logs:
            # Exactly-once: duplicated frames never double-deliver.
            assert len(log) == len(set(log)), f"seed {seed}: duplicates in {log}"
            # FIFO: a drop may leave a hole, but never reorders.
            it = iter(expected)
            assert all(value in it for value in log), (
                f"seed {seed}: out-of-order delivery {log}"
            )
            total_seen += len(log)
        # Accounting: every posted event was delivered or degraded.
        assert total_seen >= n_events * n_subscribers - degraded
        # The group's own view agrees (absorbed events count delivered).
        assert hub.group.delivered + hub.group.errors >= total_seen
        assert hub.group.evicted_subscribers == 0
    finally:
        for client in clients:
            await client.close()
        await server.shutdown()
        injector.release_url()


@pytest.mark.parametrize("seed", [21, 22])
@async_test
async def test_batched_pump_chaos_reorder_exactly_once(seed):
    """Adjacent-frame reorder plus duplicates (no loss): every event
    still arrives exactly once per subscriber — the serial-dedup
    window is what makes coalesced writes safe to replay."""
    rates = FaultRates(
        drop=0.0, delay=0.04, duplicate=0.04, reorder=0.05,
        corrupt=0.0, close=0.0, slow=0.02, max_delay=0.002,
    )
    injector = FaultInjector(SeededSchedule(seed, rates=rates, warmup=8))
    server = ClamServer(degrade_upcalls=True, upcall_timeout=2.0)
    hub = Hub()
    server.publish("hub", hub)
    address = await server.start(f"memory://batched-reorder-{seed}-{next(_ids)}")
    chaos_url = injector.wrap_url(address)
    n_events = 60
    try:
        client = await ClamClient.connect(chaos_url)
        proxy = await client.lookup(Hub, "hub")
        log: list[int] = []
        await proxy.join(log.append)

        for base in range(0, n_events, 6):
            for seq in range(base, min(base + 6, n_events)):
                hub.group.post(seq)
            await asyncio.sleep(0.003)
        await hub.group.flush(timeout=60.0)

        # Exactly once each — reorder shuffles adjacent frames but the
        # dedup window drops every duplicate.
        assert sorted(log) == list(range(n_events)), f"seed {seed}: {sorted(log)}"
        assert hub.group.evicted_subscribers == 0
        await client.close()
    finally:
        await server.shutdown()
        injector.release_url()
