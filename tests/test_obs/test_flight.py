"""Unit and integration tests for the flight recorder."""

import itertools
import json

import pytest

from repro import ClamClient, ClamServer
from repro.obs import FlightRecorder
from tests.support import async_test

_ids = itertools.count(1)


class TestRing:
    def test_starts_empty(self):
        flight = FlightRecorder(8)
        assert len(flight) == 0
        assert flight.events() == []

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(0)

    def test_records_in_order(self):
        flight = FlightRecorder(8)
        flight.note("call", "a")
        flight.note("fault", "b", "detail-b")
        assert len(flight) == 2
        events = flight.events()
        assert [(e["kind"], e["name"]) for e in events] == [
            ("call", "a"), ("fault", "b"),
        ]
        assert events[1]["detail"] == "detail-b"
        assert "detail" not in events[0]

    def test_wraps_keeping_newest(self):
        flight = FlightRecorder(4)
        for i in range(10):
            flight.note("call", str(i))
        assert len(flight) == 4
        assert [e["name"] for e in flight.events()] == ["6", "7", "8", "9"]

    def test_timestamps_monotonic(self):
        flight = FlightRecorder(8)
        for i in range(5):
            flight.note("call", str(i))
        stamps = [e["ts"] for e in flight.events()]
        assert stamps == sorted(stamps)

    def test_caller_supplied_timestamp_used_verbatim(self):
        flight = FlightRecorder(4)
        flight.note("call", "a", ts=123.456)
        assert flight.events()[0]["ts"] == 123.456

    def test_disabled_records_nothing(self):
        flight = FlightRecorder(4, enabled=False)
        flight.note("call", "a")
        assert len(flight) == 0
        flight.enabled = True
        flight.note("call", "b")
        assert [e["name"] for e in flight.events()] == ["b"]

    def test_clear(self):
        flight = FlightRecorder(4)
        for i in range(6):  # wrapped
            flight.note("call", str(i))
        flight.clear()
        assert len(flight) == 0 and flight.events() == []
        flight.note("call", "fresh")
        assert [e["name"] for e in flight.events()] == ["fresh"]


class TestDump:
    def test_jsonl_header_then_events(self):
        flight = FlightRecorder(8)
        flight.note("call", "x", "y")
        lines = flight.dump_jsonl("unit-test").splitlines()
        header = json.loads(lines[0])
        assert header["flight"] == 1
        assert header["reason"] == "unit-test"
        assert header["events"] == 1
        assert header["capacity"] == 8
        # the wall/monotonic anchor pair that places event ts in time
        assert header["dumped_at"] > 0 and header["clock"] > 0
        event = json.loads(lines[1])
        assert event == {"ts": event["ts"], "kind": "call",
                         "name": "x", "detail": "y"}
        assert flight.dumps == 1

    def test_anchor_places_events_in_wall_time(self):
        flight = FlightRecorder(8)
        flight.note("call", "x")
        lines = flight.dump_jsonl().splitlines()
        header, event = json.loads(lines[0]), json.loads(lines[1])
        wall = header["dumped_at"] - (header["clock"] - event["ts"])
        assert abs(wall - header["dumped_at"]) < 5.0

    def test_dump_to_writes_file(self, tmp_path):
        flight = FlightRecorder(8)
        flight.note("call", "x")
        path = flight.dump_to(str(tmp_path / "flight.jsonl"), "disk")
        lines = (tmp_path / "flight.jsonl").read_text().splitlines()
        assert json.loads(lines[0])["reason"] == "disk"
        assert len(lines) == 2
        assert path.endswith("flight.jsonl")

    def test_dumping_does_not_drain_the_ring(self):
        flight = FlightRecorder(8)
        flight.note("call", "x")
        flight.dump_jsonl()
        assert len(flight) == 1


class TestServerIntegration:
    @async_test
    async def test_calls_are_noted_and_dump_rpc_cuts_artifact(self):
        server = ClamServer()
        address = await server.start(f"memory://flight-{next(_ids)}")
        client = await ClamClient.connect(address)
        try:
            await client.server_stats()  # any dispatched call is noted
            text = await client.flight_dump("rpc-test")
            lines = text.splitlines()
            assert json.loads(lines[0])["reason"] == "rpc-test"
            noted = [json.loads(line) for line in lines[1:]]
            assert any(e["kind"] == "call" for e in noted)
            # call notes carry class name + method as separate slots
            call = next(e for e in noted if e["kind"] == "call")
            assert call["detail"]  # the method name
        finally:
            await client.close()
            await server.shutdown()

    @async_test
    async def test_note_incident_writes_into_flight_dir(self):
        import os
        import tempfile

        with tempfile.TemporaryDirectory(prefix="clam-flight-") as flight_dir:
            server = ClamServer(flight_dir=flight_dir)
            await server.start(f"memory://flight-{next(_ids)}")
            try:
                server.flight.note("call", "warmup")
                path = server.note_incident("unit-reason", "some detail")
                assert path and os.path.exists(path)
                assert "unit-reason" in os.path.basename(path)
                header = json.loads(
                    open(path, encoding="utf-8").readline()
                )
                assert header["reason"] == "unit-reason"
                assert "unit-reason" in server.last_flight_dump
                assert path in server.flight_dumps
            finally:
                await server.shutdown()

    @async_test
    async def test_incident_dumps_throttled_per_reason(self):
        server = ClamServer()
        await server.start(f"memory://flight-{next(_ids)}")
        try:
            server.note_incident("storm")
            dumps_after_first = server.flight.dumps
            for _ in range(20):  # a chaos storm of the same reason
                server.note_incident("storm")
            assert server.flight.dumps == dumps_after_first
            # but a different reason dumps immediately
            server.note_incident("other")
            assert server.flight.dumps == dumps_after_first + 1
        finally:
            await server.shutdown()
