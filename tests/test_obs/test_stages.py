"""Unit and integration tests for the upcall-pipeline stage clocks."""

import itertools
import math
from typing import Callable

import pytest

from repro import ClamClient, ClamServer
from repro.cluster import UpcallGroup
from repro.obs import (
    ALL_STAGES,
    PIPELINE_STAGES,
    StageTimer,
    merge_stage,
    stage_budgets,
    stage_metric,
)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.stubs import RemoteInterface
from tests.support import async_test, eventually

_ids = itertools.count(1)


class TestStageTimer:
    def test_stage_metric_names(self):
        assert stage_metric("gate") == "upcall.stage.gate_us"
        assert stage_metric("gate", "x") == "x.gate_us"

    def test_observations_land_in_registry(self):
        registry = MetricsRegistry()
        timer = StageTimer(registry)
        timer.observe("gate", 12.0)
        timer.observe("gate", 14.0)
        hist = registry.histogram(stage_metric("gate"))
        assert hist.count == 2
        assert hist.total == 26.0

    def test_timers_on_one_registry_share_instruments(self):
        registry = MetricsRegistry()
        a, b = StageTimer(registry), StageTimer(registry)
        a.observe("queue", 5.0)
        b.observe("queue", 7.0)
        assert registry.histogram(stage_metric("queue")).count == 2

    def test_instrument_returns_the_cached_histogram(self):
        registry = MetricsRegistry()
        timer = StageTimer(registry)
        hist = timer.instrument("write")
        assert hist is registry.histogram(stage_metric("write"))
        hist.observe(3.0)
        assert registry.histogram(stage_metric("write")).count == 1

    def test_all_stages_preresolved(self):
        registry = MetricsRegistry()
        StageTimer(registry)
        snapshot = registry.snapshot()
        for stage in ALL_STAGES:
            assert f"{stage_metric(stage)}.count" in snapshot
        assert set(PIPELINE_STAGES) < set(ALL_STAGES)


class TestMerging:
    def test_merge_across_registries(self):
        server_side, client_side = MetricsRegistry(), MetricsRegistry()
        StageTimer(server_side).observe("gate", 10.0)
        StageTimer(client_side).observe("gate", 30.0)
        merged = merge_stage([server_side, client_side], "gate")
        assert merged.count == 2
        assert merged.mean == 20.0
        assert merged.max == 30.0

    def test_merge_rejects_differing_bounds(self):
        registry = MetricsRegistry()
        registry.histogram(stage_metric("gate"), bounds=(1.0, 2.0))
        with pytest.raises(ValueError):
            merge_stage([registry], "gate")

    def test_stage_budgets_shape(self):
        registry = MetricsRegistry()
        timer = StageTimer(registry)
        for stage in ALL_STAGES:
            timer.observe(stage, 100.0)
        budgets = stage_budgets([registry])
        assert set(budgets) == set(ALL_STAGES)
        for stats in budgets.values():
            assert stats["count"] == 1.0
            assert stats["mean_us"] == 100.0
            assert math.isfinite(stats["p50_us"])
            assert math.isfinite(stats["p95_us"])

    def test_stage_budgets_empty_quantiles_are_nan(self):
        budgets = stage_budgets([MetricsRegistry()])
        for stats in budgets.values():
            assert stats["count"] == 0.0
            assert math.isnan(stats["p50_us"])


class Hub(RemoteInterface):
    __clam_local__ = ("arm",)

    def __init__(self):
        self.group = None

    def arm(self, metrics) -> None:
        self.group = UpcallGroup("stages", queue_limit=64, metrics=metrics)

    def join(self, proc: Callable[[str], None]) -> int:
        return self.group.subscribe(proc)


class TestPipelineIntegration:
    @async_test
    async def test_delivery_populates_every_stage(self):
        """One fan-out delivery must tick every named stage clock."""
        server = ClamServer(degrade_upcalls=True)
        hub = Hub()
        hub.arm(server.metrics)
        server.publish("hub", hub)
        address = await server.start(f"memory://stages-{next(_ids)}")
        client = await ClamClient.connect(address)
        try:
            seen = []
            proxy = await client.lookup(Hub, "hub")
            await proxy.join(seen.append)
            hub.group.post("event")
            await hub.group.flush(timeout=10.0)
            await eventually(lambda: len(seen) == 1)

            registries = [server.metrics, client.metrics]
            budgets = stage_budgets(registries)
            for stage in PIPELINE_STAGES:
                assert budgets[stage]["count"] >= 1.0, stage
            # server-side stages live in the server's registry,
            # dispatch in the client's
            assert server.metrics.histogram(
                stage_metric("gate")
            ).count >= 1
            assert client.metrics.histogram(
                stage_metric("dispatch")
            ).count >= 1
        finally:
            await client.close()
            await server.shutdown()

    @async_test
    async def test_handler_stage_clocks_ruc_execution(self):
        server = ClamServer(degrade_upcalls=True)
        hub = Hub()
        hub.arm(server.metrics)
        server.publish("hub", hub)
        address = await server.start(f"memory://stages-{next(_ids)}")
        client = await ClamClient.connect(address)
        try:
            done = []
            proxy = await client.lookup(Hub, "hub")
            await proxy.join(done.append)
            hub.group.post("x")
            await hub.group.flush(timeout=10.0)
            await eventually(
                lambda: client.metrics.histogram(
                    stage_metric("handler")
                ).count >= 1
            )
        finally:
            await client.close()
            await server.shutdown()
