"""The telemetry console: rendering and the in-process run loop."""

import itertools
import io

import pytest

from repro import ClamServer
from repro.obs.push import Collector
from repro.obs.top import parse_args, render, run
from tests.support import async_test

_ids = itertools.count(1)


class TestRender:
    def test_empty_collector(self):
        frame = render(Collector())
        assert "0 node(s), 0 push(es), 0 stale" in frame
        assert "node" in frame and "calls/s" in frame

    def test_one_row_per_node_sorted(self):
        collector = Collector()
        collector.ingest("zeta", 1, {"flow.queue_wait_us.p95": 42.0})
        collector.ingest("alpha", 1, {})
        lines = render(collector).splitlines()
        assert lines[0].startswith("telemetry: 2 node(s), 2 push(es)")
        assert lines[2].startswith("alpha")
        assert lines[3].startswith("zeta")
        assert "42.0" in lines[3]

    def test_incident_column_sums_labeled_counters(self):
        collector = Collector()
        collector.ingest("n", 1, {
            "flight.incidents{reason=deadline-expired}": 2.0,
            "flight.incidents{reason=upcall-error}": 3.0,
        })
        row = render(collector).splitlines()[-1]
        assert row.split()[-1] == "5"


class TestRun:
    @async_test
    async def test_once_against_live_server(self):
        server = ClamServer(degrade_upcalls=True)
        address = await server.start(f"memory://top-{next(_ids)}")
        server.enable_telemetry(node="live-node")
        out = io.StringIO()
        try:
            code = await run(
                [address], once=True,
                out=lambda s: out.write(s + "\n"),
            )
            assert code == 0
            frame = out.getvalue()
            assert "live-node" in frame
            assert "1 node(s)" in frame
        finally:
            await server.shutdown()

    @async_test
    async def test_bounded_frames(self):
        server = ClamServer(degrade_upcalls=True)
        address = await server.start(f"memory://top-{next(_ids)}")
        server.enable_telemetry(node="n", interval=0.05)
        frames = []
        try:
            code = await run(
                [address], frames=3, interval=0.05, out=frames.append,
            )
            assert code == 0
            assert len(frames) == 3
        finally:
            await server.shutdown()

    @async_test
    async def test_nothing_to_attach_is_exit_2(self):
        out = io.StringIO()
        code = await run([], out=lambda s: out.write(s))
        assert code == 2
        assert "nothing to attach" in out.getvalue()


class TestArgs:
    def test_urls(self):
        args = parse_args(["tcp://h:1", "--once"])
        assert args.urls == ["tcp://h:1"] and args.once

    def test_directory_requires_service(self):
        with pytest.raises(SystemExit):
            parse_args(["--directory", "tcp://d:1"])

    def test_no_target_errors(self):
        with pytest.raises(SystemExit):
            parse_args([])
