"""The telemetry push plane: hub, collector, and cluster e2e."""

import itertools
import math

import pytest

from repro import ClamClient, ClamServer
from repro.cluster import Advertiser, DirectoryServer
from repro.obs.push import TELEMETRY_SERVICE, Collector, TelemetryInterface
from tests.support import async_test, eventually

_ids = itertools.count(1)


class TestCollectorIngest:
    def test_aggregates_across_nodes(self):
        collector = Collector()
        collector.ingest("a", 1, {"calls": 2.0, "telemetry.seq": 1.0})
        collector.ingest("b", 1, {"calls": 3.0, "other": 1.0})
        total = collector.aggregate()
        assert total["calls"] == 5.0
        assert total["other"] == 1.0
        assert "telemetry.seq" not in total

    def test_aggregate_skips_non_finite(self):
        collector = Collector()
        collector.ingest("a", 1, {"lat.p50": math.nan, "ok": 1.0})
        assert collector.aggregate() == {"ok": 1.0}

    def test_stale_and_duplicate_pushes_dropped(self):
        collector = Collector()
        collector.ingest("a", 5, {"calls": 10.0})
        collector.ingest("a", 5, {"calls": 99.0})   # duplicate
        collector.ingest("a", 3, {"calls": 99.0})   # reordered/stale
        assert collector.stale_pushes == 2
        assert collector.value("a", "calls") == 10.0
        assert collector.pushes_received == 1

    def test_rate_differences_successive_snapshots(self):
        collector = Collector()
        collector.ingest("a", 1, {"calls": 10.0, "telemetry.ts": 100.0})
        collector.ingest("a", 2, {"calls": 40.0, "telemetry.ts": 103.0})
        assert collector.rate("a", "calls") == pytest.approx(10.0)
        assert collector.rate("a", "missing") == 0.0
        assert collector.rate("ghost", "calls") == 0.0

    def test_rate_needs_two_snapshots(self):
        collector = Collector()
        collector.ingest("a", 1, {"calls": 10.0, "telemetry.ts": 100.0})
        assert collector.rate("a", "calls") == 0.0


class TestHub:
    @async_test
    async def test_subscribe_pushes_first_snapshot_immediately(self):
        server = ClamServer(degrade_upcalls=True)
        address = await server.start(f"memory://push-{next(_ids)}")
        server.enable_telemetry(node="alpha", interval=30.0)
        client = await ClamClient.connect(address)
        try:
            collector = Collector()
            name = await collector.attach(address)
            assert name == "alpha"
            # no interval has elapsed, yet the first snapshot arrives
            await eventually(lambda: collector.pushes_received >= 1)
            assert collector.value("alpha", "telemetry.seq") >= 1.0
            await collector.close()
        finally:
            await client.close()
            await server.shutdown()

    @async_test
    async def test_periodic_pushes_and_unsubscribe(self):
        server = ClamServer(degrade_upcalls=True)
        address = await server.start(f"memory://push-{next(_ids)}")
        server.enable_telemetry(node="beta", interval=0.05)
        try:
            collector = Collector()
            await collector.attach(address)
            await eventually(lambda: collector.pushes_received >= 3)
            assert collector.value("beta", "telemetry.interval_s") == 0.05
            await collector.close()
            hub = server.telemetry
            await eventually(lambda: hub.subscriber_count == 0)
        finally:
            await server.shutdown()

    @async_test
    async def test_pull_fallback(self):
        server = ClamServer()
        address = await server.start(f"memory://push-{next(_ids)}")
        server.enable_telemetry(node="gamma")
        client = await ClamClient.connect(address)
        try:
            hub = await client.lookup(TelemetryInterface, TELEMETRY_SERVICE)
            snapshot = await hub.pull()
            assert snapshot["telemetry.sessions"] >= 1.0
            assert await hub.node() == "gamma"
        finally:
            await client.close()
            await server.shutdown()

    @async_test
    async def test_enable_telemetry_is_idempotent(self):
        import asyncio

        server = ClamServer()
        await server.start(f"memory://push-{next(_ids)}")
        try:
            first = server.enable_telemetry(node="x")
            second = server.enable_telemetry(node="ignored")
            assert first is second
            await asyncio.sleep(0)  # let the pusher task get scheduled
        finally:
            await server.shutdown()


class TestClusterE2E:
    @async_test
    async def test_collector_receives_pushes_from_three_replicas(self):
        """The acceptance scenario: a directory full of replicas, each
        pushing telemetry; one collector aggregates all of them."""
        run = next(_ids)
        directory = DirectoryServer()
        directory_url = await directory.start(f"memory://push-dir-{run}")
        servers, advertisers = [], []
        try:
            for i in range(3):
                url = f"memory://push-{run}-replica-{i}"
                server = ClamServer(degrade_upcalls=True)
                await server.start(url)
                server.enable_telemetry(node=f"replica-{i}", interval=0.05)
                advertiser = Advertiser.for_server(
                    directory_url, "kv", server, url,
                    lease=5.0, interval=0.05,
                )
                await advertiser.start()
                servers.append(server)
                advertisers.append(advertiser)

            collector = Collector()
            names = await collector.attach_directory(directory_url, "kv")
            assert sorted(names) == [
                "replica-0", "replica-1", "replica-2"
            ]
            # every replica pushes: at least two rounds from each
            await eventually(
                lambda: all(
                    state.received >= 2
                    for state in collector.nodes.values()
                ) and len(collector.nodes) == 3,
                timeout=10.0,
            )
            # every node reached at least seq 2 and the aggregate sums
            # finite, non-meta keys across all three snapshots
            for i in range(3):
                assert collector.value(f"replica-{i}", "telemetry.seq") >= 2.0
            total = collector.aggregate()
            assert total and all(math.isfinite(v) for v in total.values())
            assert not any(k.startswith("telemetry.") for k in total)
            await collector.close()
            # unsubscribing quiesces every hub
            await eventually(
                lambda: all(
                    s.telemetry.subscriber_count == 0 for s in servers
                )
            )
        finally:
            for advertiser in advertisers:
                await advertiser.stop()
            for server in servers:
                await server.shutdown()
            await directory.shutdown()
