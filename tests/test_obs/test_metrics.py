"""Unit tests for the metrics registry and its instruments."""

import math

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_US,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_spaced_buckets,
)


class TestBuckets:
    def test_log_spaced_shape(self):
        bounds = log_spaced_buckets(1.0, 1000.0, per_decade=1)
        assert bounds == (1.0, 10.0, 100.0, 1000.0)

    def test_default_scale_spans_us_to_seconds(self):
        assert DEFAULT_LATENCY_BUCKETS_US[0] == 1.0
        assert DEFAULT_LATENCY_BUCKETS_US[-1] == 1e7
        assert len(DEFAULT_LATENCY_BUCKETS_US) == 22  # 7 decades * 3 + 1

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            log_spaced_buckets(0.0, 10.0)
        with pytest.raises(ValueError):
            log_spaced_buckets(10.0, 1.0)


class TestInstruments:
    def test_counter(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_gauge(self):
        g = Gauge("depth")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == 3.0

    def test_histogram_count_sum_max_mean(self):
        h = Histogram("lat", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            h.observe(value)
        assert h.count == 4
        assert h.total == 555.5
        assert h.max == 500.0
        assert h.mean == pytest.approx(138.875)
        # one observation per bucket, overflow included
        assert h.bucket_counts == [1, 1, 1, 1]

    def test_histogram_quantiles_interpolate_within_bucket(self):
        h = Histogram("lat", bounds=(1.0, 10.0, 100.0))
        for _ in range(98):
            h.observe(5.0)
        h.observe(50.0)
        h.observe(5000.0)
        # Rank 50 of 100 lands in the (1, 10] bucket at fractional
        # position 50/98; geometric interpolation (log-spaced buckets)
        # puts the estimate *inside* the bucket rather than clamping to
        # the round upper edge 10.0.
        assert h.quantile(0.5) == pytest.approx(10.0 ** (50 / 98))
        # Rank 99 is the last observation of the (10, 100] bucket: the
        # interpolated estimate reaches the bucket's upper edge.
        assert h.quantile(0.99) == pytest.approx(100.0)
        # The overflow bucket has no upper edge; the observed max
        # stands in, so q=1.0 interpolates up to the max itself.
        assert h.quantile(1.0) == pytest.approx(5000.0)

    def test_histogram_quantile_never_reports_bare_bucket_edge(self):
        # The saturation bug this guards against: every observation in
        # one bucket used to clamp every quantile to that bucket's
        # upper bound (BENCH_rpc.json once reported a queue p95 of
        # exactly 100000.0 µs).  With interpolation, distinct quantiles
        # of a single-bucket distribution are distinct and interior.
        h = Histogram("lat", bounds=(1.0, 10.0, 100.0))
        for _ in range(1000):
            h.observe(50.0)
        p50, p95 = h.quantile(0.5), h.quantile(0.95)
        assert 10.0 < p50 < p95 < 100.0
        assert p50 == pytest.approx(10.0 * 10.0 ** 0.5)
        assert p95 == pytest.approx(10.0 * 10.0 ** 0.95)

    def test_histogram_overflow_only_quantile(self):
        h = Histogram("lat", bounds=(1.0, 10.0))
        h.observe(70.0)
        # One observation in the overflow bucket: interpolate between
        # the top finite bound and the observed max (geometrically).
        assert h.quantile(0.5) == pytest.approx(10.0 * 7.0 ** 0.5)
        assert h.quantile(1.0) == pytest.approx(70.0)

    def test_histogram_empty_quantile_is_nan(self):
        # NaN, not 0.0: an empty histogram has no 50th percentile, and
        # a hard zero silently drags down any cross-node aggregation.
        assert math.isnan(Histogram("lat").quantile(0.5))

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("lat", bounds=(10.0, 1.0))

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram("lat").quantile(1.5)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_snapshot_flattens_to_floats(self):
        reg = MetricsRegistry()
        reg.counter("calls").inc(3)
        reg.gauge("depth").set(2)
        reg.histogram("lat").observe(42.0)
        snap = reg.snapshot()
        assert snap["calls"] == 3.0
        assert snap["depth"] == 2.0
        assert snap["lat.count"] == 1.0
        assert snap["lat.sum"] == 42.0
        assert snap["lat.mean"] == 42.0
        assert snap["lat.max"] == 42.0
        assert all(isinstance(v, float) for v in snap.values())

    def test_render_mentions_every_instrument(self):
        reg = MetricsRegistry()
        reg.counter("calls").inc()
        reg.histogram("lat").observe(1.0)
        text = reg.render()
        assert "calls" in text
        assert "lat" in text

    def test_render_empty(self):
        assert "(none recorded)" in MetricsRegistry().render()


class TestLabels:
    def test_labels_intern_one_instrument_per_label_set(self):
        reg = MetricsRegistry()
        a = reg.counter("flow.credit.stalls", channel="rpc")
        b = reg.counter("flow.credit.stalls", channel="rpc")
        assert a is b
        assert a.name == "flow.credit.stalls{channel=rpc}"
        assert reg.counter("flow.credit.stalls", channel="upcall") is not a

    def test_labels_are_order_insensitive(self):
        reg = MetricsRegistry()
        assert reg.gauge("g", a=1, b=2) is reg.gauge("g", b=2, a=1)

    def test_unlabeled_name_is_untouched(self):
        reg = MetricsRegistry()
        assert reg.counter("plain").name == "plain"

    def test_labeled_instruments_flatten_into_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("cluster.pool.calls", service="kv").inc(2)
        reg.histogram("lat", channel="rpc").observe(5.0)
        snap = reg.snapshot()
        assert snap["cluster.pool.calls{service=kv}"] == 2.0
        assert snap["lat{channel=rpc}.count"] == 1.0
