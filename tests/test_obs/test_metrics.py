"""Unit tests for the metrics registry and its instruments."""

import math

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_US,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_spaced_buckets,
)


class TestBuckets:
    def test_log_spaced_shape(self):
        bounds = log_spaced_buckets(1.0, 1000.0, per_decade=1)
        assert bounds == (1.0, 10.0, 100.0, 1000.0)

    def test_default_scale_spans_us_to_seconds(self):
        assert DEFAULT_LATENCY_BUCKETS_US[0] == 1.0
        assert DEFAULT_LATENCY_BUCKETS_US[-1] == 1e7
        assert len(DEFAULT_LATENCY_BUCKETS_US) == 22  # 7 decades * 3 + 1

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            log_spaced_buckets(0.0, 10.0)
        with pytest.raises(ValueError):
            log_spaced_buckets(10.0, 1.0)


class TestInstruments:
    def test_counter(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_gauge(self):
        g = Gauge("depth")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == 3.0

    def test_histogram_count_sum_max_mean(self):
        h = Histogram("lat", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            h.observe(value)
        assert h.count == 4
        assert h.total == 555.5
        assert h.max == 500.0
        assert h.mean == pytest.approx(138.875)
        # one observation per bucket, overflow included
        assert h.bucket_counts == [1, 1, 1, 1]

    def test_histogram_quantiles_from_bucket_bounds(self):
        h = Histogram("lat", bounds=(1.0, 10.0, 100.0))
        for _ in range(98):
            h.observe(5.0)
        h.observe(50.0)
        h.observe(5000.0)
        assert h.quantile(0.5) == 10.0
        assert h.quantile(0.99) == 100.0
        # A rank landing in the overflow bucket reports the midpoint of
        # (top bound, observed max): the true value is somewhere in
        # that interval, and the midpoint bounds the error symmetric-
        # ally instead of pinning to either edge.
        assert h.quantile(1.0) == (100.0 + 5000.0) / 2

    def test_histogram_overflow_only_quantile(self):
        h = Histogram("lat", bounds=(1.0, 10.0))
        h.observe(70.0)
        assert h.quantile(0.5) == (10.0 + 70.0) / 2

    def test_histogram_empty_quantile_is_nan(self):
        # NaN, not 0.0: an empty histogram has no 50th percentile, and
        # a hard zero silently drags down any cross-node aggregation.
        assert math.isnan(Histogram("lat").quantile(0.5))

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("lat", bounds=(10.0, 1.0))

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram("lat").quantile(1.5)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_snapshot_flattens_to_floats(self):
        reg = MetricsRegistry()
        reg.counter("calls").inc(3)
        reg.gauge("depth").set(2)
        reg.histogram("lat").observe(42.0)
        snap = reg.snapshot()
        assert snap["calls"] == 3.0
        assert snap["depth"] == 2.0
        assert snap["lat.count"] == 1.0
        assert snap["lat.sum"] == 42.0
        assert snap["lat.mean"] == 42.0
        assert snap["lat.max"] == 42.0
        assert all(isinstance(v, float) for v in snap.values())

    def test_render_mentions_every_instrument(self):
        reg = MetricsRegistry()
        reg.counter("calls").inc()
        reg.histogram("lat").observe(1.0)
        text = reg.render()
        assert "calls" in text
        assert "lat" in text

    def test_render_empty(self):
        assert "(none recorded)" in MetricsRegistry().render()


class TestLabels:
    def test_labels_intern_one_instrument_per_label_set(self):
        reg = MetricsRegistry()
        a = reg.counter("flow.credit.stalls", channel="rpc")
        b = reg.counter("flow.credit.stalls", channel="rpc")
        assert a is b
        assert a.name == "flow.credit.stalls{channel=rpc}"
        assert reg.counter("flow.credit.stalls", channel="upcall") is not a

    def test_labels_are_order_insensitive(self):
        reg = MetricsRegistry()
        assert reg.gauge("g", a=1, b=2) is reg.gauge("g", b=2, a=1)

    def test_unlabeled_name_is_untouched(self):
        reg = MetricsRegistry()
        assert reg.counter("plain").name == "plain"

    def test_labeled_instruments_flatten_into_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("cluster.pool.calls", service="kv").inc(2)
        reg.histogram("lat", channel="rpc").observe(5.0)
        snap = reg.snapshot()
        assert snap["cluster.pool.calls{service=kv}"] == 2.0
        assert snap["lat{channel=rpc}.count"] == 1.0
