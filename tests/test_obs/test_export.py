"""Unit tests for the trace exporters and the tree renderer."""

import io
import json

from repro.obs.export import (
    ChromeTraceExporter,
    JsonlExporter,
    event_to_dict,
    render_trace_tree,
)
from repro.trace import KIND_CALL, KIND_FLUSH, TimelineRecorder, Tracer


def traced_pair():
    """A tracer wired to a recorder, for driving exporters."""
    tracer = Tracer()
    recorder = TimelineRecorder()
    tracer.subscribe(recorder)
    return tracer, recorder


class TestEventToDict:
    def test_minimal_event_omits_empty_fields(self):
        tracer, recorder = traced_pair()
        tracer.point(KIND_FLUSH, "batch")
        # points outside any span carry no trace identity
        d = event_to_dict(recorder.events[0])
        assert d["kind"] == KIND_FLUSH
        assert "trace_id" not in d
        assert "process" not in d

    def test_span_event_carries_identity(self):
        tracer, recorder = traced_pair()
        with tracer.span(KIND_CALL, "x") as ctx:
            pass
        d = event_to_dict(recorder.events[-1], process="client")
        assert d["trace_id"] == ctx.trace_id
        assert d["span_id"] == ctx.span_id
        assert d["process"] == "client"


class TestJsonlExporter:
    def test_writes_one_json_object_per_event(self):
        sink = io.StringIO()
        tracer = Tracer()
        with JsonlExporter(sink) as exporter:
            exporter.attach(tracer, process="client")
            with tracer.span(KIND_CALL, "x"):
                pass
        lines = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert [d["phase"] for d in lines] == ["start", "end"]
        assert all(d["process"] == "client" for d in lines)
        assert exporter.events_written == 2

    def test_close_unsubscribes(self):
        sink = io.StringIO()
        tracer = Tracer()
        exporter = JsonlExporter(sink)
        exporter.attach(tracer, process="p")
        exporter.close()
        assert not tracer.active

    def test_owns_path_sink(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        tracer = Tracer()
        with JsonlExporter(path) as exporter:
            exporter.attach(tracer)
            tracer.point(KIND_FLUSH, "batch")
        with open(path, encoding="utf-8") as stream:
            assert json.loads(stream.readline())["name"] == "batch"


class TestChromeTraceExporter:
    def test_complete_slices_and_process_lanes(self):
        client, server = Tracer(), Tracer()
        exporter = ChromeTraceExporter()
        exporter.attach(client, "client")
        exporter.attach(server, "server")
        with client.span(KIND_CALL, "call") as ctx:
            with server.span(KIND_CALL, "handler", parent=ctx):
                pass
        exporter.detach_all()
        records = exporter.records
        slices = [r for r in records if r["ph"] == "X"]
        metas = [r for r in records if r["ph"] == "M"]
        assert exporter.process_count() == 2
        assert len(metas) == 2
        assert len(slices) == 2
        # both spans belong to one trace, so they share a tid
        assert len({r["tid"] for r in slices}) == 1
        assert {r["pid"] for r in slices} == {1, 2}
        for r in slices:
            assert r["dur"] >= 0
            assert r["args"]["trace_id"] == ctx.trace_id

    def test_to_json_is_loadable(self):
        tracer = Tracer()
        exporter = ChromeTraceExporter()
        exporter.attach(tracer, "p")
        with tracer.span(KIND_CALL, "x"):
            pass
        doc = json.loads(exporter.to_json())
        assert "traceEvents" in doc

    def test_write_file(self, tmp_path):
        tracer = Tracer()
        exporter = ChromeTraceExporter()
        exporter.attach(tracer, "p")
        with tracer.span(KIND_CALL, "x"):
            pass
        path = str(tmp_path / "trace.json")
        exporter.write(path)
        with open(path, encoding="utf-8") as stream:
            assert json.load(stream)["traceEvents"]


class TestRenderTraceTree:
    def test_cross_process_nesting(self):
        client, server = traced_pair(), traced_pair()
        with client[0].span(KIND_CALL, "call") as ctx:
            with server[0].span(KIND_CALL, "handler", parent=ctx):
                server[0].point(KIND_FLUSH, "mark")
        text = render_trace_tree(
            {"client": client[1].events, "server": server[1].events}
        )
        lines = text.splitlines()
        assert lines[0].startswith("trace ")
        call_line = next(line for line in lines if "call [client]" in line)
        handler_line = next(line for line in lines if "handler [server]" in line)
        point_line = next(line for line in lines if "* " in line)
        # nesting shows as increasing indentation
        assert lines.index(call_line) < lines.index(handler_line)
        assert len(handler_line) - len(handler_line.lstrip("|` -")) > 0
        assert "mark" in point_line

    def test_empty(self):
        assert render_trace_tree({}) == "(no traced spans)"
