"""Unit tests for the trace exporters and the tree renderer."""

import io
import json
import threading

from repro.obs.export import (
    ChromeTraceExporter,
    JsonlExporter,
    event_to_dict,
    render_trace_tree,
)
from repro.trace import KIND_CALL, KIND_FLUSH, TimelineRecorder, Tracer


def traced_pair():
    """A tracer wired to a recorder, for driving exporters."""
    tracer = Tracer()
    recorder = TimelineRecorder()
    tracer.subscribe(recorder)
    return tracer, recorder


class TestEventToDict:
    def test_minimal_event_omits_empty_fields(self):
        tracer, recorder = traced_pair()
        tracer.point(KIND_FLUSH, "batch")
        # points outside any span carry no trace identity
        d = event_to_dict(recorder.events[0])
        assert d["kind"] == KIND_FLUSH
        assert "trace_id" not in d
        assert "process" not in d

    def test_span_event_carries_identity(self):
        tracer, recorder = traced_pair()
        with tracer.span(KIND_CALL, "x") as ctx:
            pass
        d = event_to_dict(recorder.events[-1], process="client")
        assert d["trace_id"] == ctx.trace_id
        assert d["span_id"] == ctx.span_id
        assert d["process"] == "client"


class TestJsonlExporter:
    def test_writes_one_json_object_per_event(self):
        sink = io.StringIO()
        tracer = Tracer()
        with JsonlExporter(sink) as exporter:
            exporter.attach(tracer, process="client")
            with tracer.span(KIND_CALL, "x"):
                pass
        lines = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert [d["phase"] for d in lines] == ["start", "end"]
        assert all(d["process"] == "client" for d in lines)
        assert exporter.events_written == 2

    def test_close_unsubscribes(self):
        sink = io.StringIO()
        tracer = Tracer()
        exporter = JsonlExporter(sink)
        exporter.attach(tracer, process="p")
        exporter.close()
        assert not tracer.active

    def test_owns_path_sink(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        tracer = Tracer()
        with JsonlExporter(path) as exporter:
            exporter.attach(tracer)
            tracer.point(KIND_FLUSH, "batch")
        with open(path, encoding="utf-8") as stream:
            assert json.loads(stream.readline())["name"] == "batch"


class TestChromeTraceExporter:
    def test_complete_slices_and_process_lanes(self):
        client, server = Tracer(), Tracer()
        exporter = ChromeTraceExporter()
        exporter.attach(client, "client")
        exporter.attach(server, "server")
        with client.span(KIND_CALL, "call") as ctx:
            with server.span(KIND_CALL, "handler", parent=ctx):
                pass
        exporter.detach_all()
        records = exporter.records
        slices = [r for r in records if r["ph"] == "X"]
        metas = [r for r in records if r["ph"] == "M"]
        assert exporter.process_count() == 2
        assert len(metas) == 2
        assert len(slices) == 2
        # both spans belong to one trace, so they share a tid
        assert len({r["tid"] for r in slices}) == 1
        assert {r["pid"] for r in slices} == {1, 2}
        for r in slices:
            assert r["dur"] >= 0
            assert r["args"]["trace_id"] == ctx.trace_id

    def test_to_json_is_loadable(self):
        tracer = Tracer()
        exporter = ChromeTraceExporter()
        exporter.attach(tracer, "p")
        with tracer.span(KIND_CALL, "x"):
            pass
        doc = json.loads(exporter.to_json())
        assert "traceEvents" in doc

    def test_write_file(self, tmp_path):
        tracer = Tracer()
        exporter = ChromeTraceExporter()
        exporter.attach(tracer, "p")
        with tracer.span(KIND_CALL, "x"):
            pass
        path = str(tmp_path / "trace.json")
        exporter.write(path)
        with open(path, encoding="utf-8") as stream:
            assert json.load(stream)["traceEvents"]


class TestConcurrency:
    def test_threaded_writers_never_interleave_lines(self):
        """Many threads, one sink: every line must parse on its own."""
        sink = io.StringIO()
        exporter = JsonlExporter(sink)
        threads, per_thread, n_threads = [], 200, 8
        barrier = threading.Barrier(n_threads)

        def pump(label):
            tracer = Tracer()
            exporter.attach(tracer, process=label)
            barrier.wait()  # maximize overlap
            for i in range(per_thread):
                tracer.point(KIND_FLUSH, f"{label}-{i}", detail="x" * 64)

        for t in range(n_threads):
            thread = threading.Thread(target=pump, args=(f"t{t}",))
            threads.append(thread)
            thread.start()
        for thread in threads:
            thread.join()
        exporter.close()

        lines = sink.getvalue().splitlines()
        assert len(lines) == n_threads * per_thread
        assert exporter.events_written == n_threads * per_thread
        seen = set()
        for line in lines:
            event = json.loads(line)  # raises if two writes interleaved
            seen.add((event["process"], event["name"]))
        assert len(seen) == n_threads * per_thread

    def test_detach_all_during_live_traffic(self):
        """Detaching mid-storm must not corrupt records or raise in
        the emitting thread; events that were in flight either land
        whole or not at all."""
        exporter = ChromeTraceExporter()
        tracer = Tracer()
        exporter.attach(tracer, "storm")
        stop = threading.Event()
        failures = []

        def storm():
            try:
                while not stop.is_set():
                    with tracer.span(KIND_CALL, "op"):
                        pass
            except Exception as exc:  # pragma: no cover - the assertion
                failures.append(exc)

        thread = threading.Thread(target=storm)
        thread.start()
        # wait until traffic is demonstrably flowing, then cut it off
        while not exporter.records:
            pass
        exporter.detach_all()
        frozen = len(exporter.records)
        stop.set()
        thread.join()

        assert not failures
        # nothing published after detach (at most one in-flight event
        # that had already passed the subscriber check may land)
        assert len(exporter.records) <= frozen + 1
        for record in exporter.records:
            assert record["ph"] in ("M", "X", "i")
            assert "pid" in record and "tid" in record
        assert json.loads(exporter.to_json())["traceEvents"]


class TestRenderTraceTree:
    def test_cross_process_nesting(self):
        client, server = traced_pair(), traced_pair()
        with client[0].span(KIND_CALL, "call") as ctx:
            with server[0].span(KIND_CALL, "handler", parent=ctx):
                server[0].point(KIND_FLUSH, "mark")
        text = render_trace_tree(
            {"client": client[1].events, "server": server[1].events}
        )
        lines = text.splitlines()
        assert lines[0].startswith("trace ")
        call_line = next(line for line in lines if "call [client]" in line)
        handler_line = next(line for line in lines if "handler [server]" in line)
        point_line = next(line for line in lines if "* " in line)
        # nesting shows as increasing indentation
        assert lines.index(call_line) < lines.index(handler_line)
        assert len(handler_line) - len(handler_line.lstrip("|` -")) > 0
        assert "mark" in point_line

    def test_empty(self):
        assert render_trace_tree({}) == "(no traced spans)"
