"""Unit and integration tests for the per-layer profiler."""

import itertools
from typing import Callable

from repro import ClamClient, ClamServer, RemoteInterface
from repro.obs import HOST_LAYER, LayerProfiler, current_layer, layer_scope
from repro.obs.profile import reset_layer, set_layer
from tests.support import async_test, eventually

_ids = itertools.count(1)


class TestLayerContext:
    def test_default_is_empty(self):
        assert current_layer() == ""

    def test_scope_sets_and_restores(self):
        with layer_scope("wm.Window"):
            assert current_layer() == "wm.Window"
            with layer_scope("inner"):
                assert current_layer() == "inner"
            assert current_layer() == "wm.Window"
        assert current_layer() == ""

    def test_raw_token_api(self):
        token = set_layer("raw")
        assert current_layer() == "raw"
        reset_layer(token)
        assert current_layer() == ""


class TestLayerProfiler:
    def test_record_call_accumulates(self):
        profiler = LayerProfiler()
        profiler.record_call("wm.Window", 100.0, 3, 10)
        profiler.record_call("wm.Window", 300.0, 1, 0, True)
        layers = profiler.layers()
        stats = layers["wm.Window"]
        assert stats["calls"] == 2.0
        assert stats["errors"] == 1.0
        assert stats["call_us_total"] == 400.0
        assert stats["call_us_mean"] == 200.0
        assert stats["bytes_in"] == 4.0
        assert stats["bytes_out"] == 10.0

    def test_empty_layer_falls_to_host(self):
        profiler = LayerProfiler()
        profiler.record_call("", 50.0)
        profiler.record_upcall("", 80.0, 12)
        assert set(profiler.layers()) == {HOST_LAYER}

    def test_record_upcall_accumulates(self):
        profiler = LayerProfiler()
        profiler.record_upcall("fanout.ticks", 500.0, 64)
        profiler.record_upcall("fanout.ticks", 700.0, 64)
        stats = profiler.layers()["fanout.ticks"]
        assert stats["upcalls"] == 2.0
        assert stats["upcall_rtt_us_mean"] == 600.0
        assert stats["upcall_bytes"] == 128.0

    def test_snapshot_flattens_and_parses_back(self):
        """Layer names may contain dots; metric names never do."""
        profiler = LayerProfiler()
        profiler.record_call("wm.base.Window", 10.0)
        snapshot = profiler.snapshot()
        key = "wm.base.Window.calls"
        assert snapshot[key] == 1.0
        layer, metric = key.rsplit(".", 1)
        assert layer == "wm.base.Window" and metric == "calls"


class Echo(RemoteInterface):
    __clam_class__ = "profile.echo"

    def echo(self, value: str) -> str: ...


class EchoImpl(Echo):
    def echo(self, value: str) -> str:
        return value


class Notifier(RemoteInterface):
    __clam_class__ = "profile.notifier"

    def register(self, proc: Callable[[str], None]) -> bool: ...


class NotifierImpl(Notifier):
    """A layer whose call performs a distributed upcall: the upcall's
    RTT must be attributed to *this* layer, not the session below."""

    async def register(self, proc: Callable[[str], None]) -> bool:
        await proc("hello")
        return True


class TestServerIntegration:
    @async_test
    async def test_profile_rpc_attributes_calls_to_class(self):
        server = ClamServer()
        server.publish("echo", EchoImpl())
        address = await server.start(f"memory://profile-{next(_ids)}")
        client = await ClamClient.connect(address)
        try:
            proxy = await client.lookup(Echo, "echo")
            for _ in range(3):
                await proxy.echo("x")
            profile = await client.server_profile()
            assert profile["EchoImpl.calls"] == 3.0
            assert profile["EchoImpl.call_us_total"] > 0.0
            # the builtin interface's own calls are attributed too
            assert profile["clam.server.calls"] >= 1.0
        finally:
            await client.close()
            await server.shutdown()

    @async_test
    async def test_upcall_rtt_attributed_to_calling_layer(self):
        server = ClamServer(degrade_upcalls=True)
        server.publish("notifier", NotifierImpl())
        address = await server.start(f"memory://profile-{next(_ids)}")
        client = await ClamClient.connect(address)
        try:
            got = []
            proxy = await client.lookup(Notifier, "notifier")
            await proxy.register(got.append)
            await eventually(lambda: got == ["hello"])
            await eventually(
                lambda: server.profiler.layers()
                .get("NotifierImpl", {})
                .get("upcalls", 0.0) >= 1.0
            )
            stats = server.profiler.layers()["NotifierImpl"]
            assert stats["upcall_rtt_us_total"] > 0.0
        finally:
            await client.close()
            await server.shutdown()
