"""The §4.4 relaxation: more than one active upcall per client.

"In CLAM, we allow only one upcall to be active per client process.
This limitation simplifies our first implementation and may be
relaxed in future designs."  This reproduction implements the
relaxation behind ``max_active_upcalls`` (default 1 = the paper's
discipline) on both ends; these tests pin down both the default and
the relaxed behaviour.
"""

import asyncio
import itertools

import pytest

from repro import ClamClient, ClamServer, RemoteInterface
from tests.support import async_test

_ids = itertools.count(1)

FANOUT_SOURCE = '''
import asyncio
from typing import Callable

from repro.stubs import RemoteInterface


class Fanout(RemoteInterface):
    """Makes n concurrent upcalls to the registered procedure."""

    def __init__(self):
        self.proc = None

    def register(self, proc: Callable[[int], int]) -> bool:
        self.proc = proc
        return True

    async def blast(self, n: int) -> int:
        results = await asyncio.gather(*(self.proc(i) for i in range(n)))
        return sum(results)
'''


class Fanout(RemoteInterface):
    def register(self, proc) -> bool: ...
    def blast(self, n: int) -> int: ...


from typing import Callable  # noqa: E402

Fanout.register.__annotations__["proc"] = Callable[[int], int]


async def start(server_k: int, client_k: int):
    server = ClamServer(max_active_upcalls=server_k)
    address = await server.start(f"memory://conc-upcalls-{next(_ids)}")
    client = await ClamClient.connect(address, max_active_upcalls=client_k)
    await client.load_module("fanout", FANOUT_SOURCE)
    fanout = await client.create(Fanout)
    return server, client, fanout


class TestDefaultDiscipline:
    @async_test
    async def test_one_at_a_time_by_default(self):
        """With defaults, concurrent server-side upcalls serialize."""
        server, client, fanout = await start(server_k=1, client_k=1)
        in_flight = 0
        peak = 0

        async def handler(i):
            nonlocal in_flight, peak
            in_flight += 1
            peak = max(peak, in_flight)
            await asyncio.sleep(0.002)
            in_flight -= 1
            return i

        await fanout.register(handler)
        assert await fanout.blast(8) == sum(range(8))
        assert peak == 1  # the §4.4 discipline held end to end
        await client.close()
        await server.shutdown()

    @async_test
    async def test_results_correct_under_serialization(self):
        server, client, fanout = await start(server_k=1, client_k=1)
        await fanout.register(lambda i: i * 10)
        assert await fanout.blast(5) == sum(i * 10 for i in range(5))
        await client.close()
        await server.shutdown()


class TestRelaxedDiscipline:
    @async_test
    async def test_concurrency_reaches_limit(self):
        server, client, fanout = await start(server_k=4, client_k=4)
        in_flight = 0
        peak = 0

        async def handler(i):
            nonlocal in_flight, peak
            in_flight += 1
            peak = max(peak, in_flight)
            await asyncio.sleep(0.005)
            in_flight -= 1
            return i

        await fanout.register(handler)
        assert await fanout.blast(12) == sum(range(12))
        assert 2 <= peak <= 4  # relaxed, but bounded by the limit
        await client.close()
        await server.shutdown()

    @async_test
    async def test_server_limit_caps_client_headroom(self):
        """Client allows 8, server admits 2: 2 wins."""
        server, client, fanout = await start(server_k=2, client_k=8)
        in_flight = 0
        peak = 0

        async def handler(i):
            nonlocal in_flight, peak
            in_flight += 1
            peak = max(peak, in_flight)
            await asyncio.sleep(0.005)
            in_flight -= 1
            return i

        await fanout.register(handler)
        await fanout.blast(10)
        assert peak <= 2
        await client.close()
        await server.shutdown()

    @async_test
    async def test_relaxation_speeds_up_blocking_handlers(self):
        """The point of the future-work relaxation: latency overlap."""
        import time

        times = {}
        for k in (1, 8):
            server, client, fanout = await start(server_k=k, client_k=k)

            async def handler(i):
                await asyncio.sleep(0.01)
                return i

            await fanout.register(handler)
            start_t = time.perf_counter()
            await fanout.blast(8)
            times[k] = time.perf_counter() - start_t
            await client.close()
            await server.shutdown()

        # 8 x 10ms serialized ~ 80ms; overlapped ~ 10-20ms.
        assert times[8] < times[1] / 2

    @async_test
    async def test_exceptions_isolated_per_upcall(self):
        server, client, fanout = await start(server_k=4, client_k=4)

        async def handler(i):
            if i == 3:
                raise ValueError("third fails")
            return i

        await fanout.register(handler)
        from repro import RemoteError

        with pytest.raises(RemoteError):
            await fanout.blast(6)
        # The channel survives a failed concurrent upcall.
        await fanout.register(lambda i: i)
        assert await fanout.blast(3) == 3
        await client.close()
        await server.shutdown()

    def test_bad_limits_rejected(self):
        with pytest.raises(ValueError):
            ClamServer(max_active_upcalls=0)
        from repro.client.upcall_task import UpcallService

        with pytest.raises(ValueError):
            UpcallService(None, None, max_active=0)
