"""Call timeouts and the server-stats builtin."""

import asyncio
import itertools

import pytest

from repro import ClamClient, ClamServer, RemoteInterface
from repro.errors import CallTimeoutError
from tests.support import async_test

_ids = itertools.count(1)

SLOW_SOURCE = '''
import asyncio

from repro.stubs import RemoteInterface


class Slow(RemoteInterface):
    def __init__(self):
        self.finished = 0

    async def nap(self, delay_ms: int) -> int:
        await asyncio.sleep(delay_ms / 1000)
        self.finished += 1
        return delay_ms

    def finished_count(self) -> int:
        return self.finished
'''


class Slow(RemoteInterface):
    def nap(self, delay_ms: int) -> int: ...
    def finished_count(self) -> int: ...


async def start(**client_kwargs):
    server = ClamServer()
    address = await server.start(f"memory://timeouts-{next(_ids)}")
    client = await ClamClient.connect(address, **client_kwargs)
    await client.load_module("slow", SLOW_SOURCE)
    slow = await client.create(Slow)
    return server, client, slow


class TestCallTimeouts:
    @async_test
    async def test_fast_call_unaffected(self):
        server, client, slow = await start(call_timeout=1.0)
        assert await slow.nap(1) == 1
        await client.close()
        await server.shutdown()

    @async_test
    async def test_slow_call_times_out(self):
        server, client, slow = await start(call_timeout=0.02)
        with pytest.raises(CallTimeoutError, match="nap"):
            await slow.nap(500)
        await client.close()
        await server.shutdown()

    @async_test
    async def test_connection_survives_timeout_and_deadline_aborts_work(self):
        """The channel stays coherent; the server aborts the expired nap.

        At protocol v3 the call timeout travels as a wire deadline, so
        the work nobody is waiting for is cancelled server-side instead
        of finishing into the void.
        """
        server, client, slow = await start(call_timeout=0.02)
        with pytest.raises(CallTimeoutError):
            await slow.nap(60)
        await asyncio.sleep(0.1)  # let any orphan reply arrive
        assert await slow.nap(1) == 1
        # The timed-out call was aborted by its propagated deadline.
        assert await slow.finished_count() == 1
        await client.close()
        await server.shutdown()

    @async_test
    async def test_v2_timeout_leaves_server_work_running(self):
        """A v2 wire has no deadline field: the old semantics hold.

        The timeout bounds only the caller's wait; the nap still
        executes remotely and its late reply is discarded.
        """
        server, client, slow = await start(call_timeout=0.02, protocol_version=2)
        with pytest.raises(CallTimeoutError):
            await slow.nap(60)
        await asyncio.sleep(0.1)  # let the orphan reply arrive
        assert await slow.nap(1) == 1
        assert await slow.finished_count() == 2
        await client.close()
        await server.shutdown()

    @async_test
    async def test_no_timeout_by_default(self):
        server, client, slow = await start()
        assert await slow.nap(30) == 30
        await client.close()
        await server.shutdown()


class TestUpcallTimeouts:
    HANG_SOURCE = '''
from typing import Callable

from repro.stubs import RemoteInterface


class Hanger(RemoteInterface):
    def __init__(self):
        self.proc = None

    def register(self, proc: Callable[[int], int]) -> bool:
        self.proc = proc
        return True

    async def call_out(self, value: int) -> int:
        return await self.proc(value)
'''

    class Hanger(RemoteInterface):
        def register(self, proc) -> bool: ...
        def call_out(self, value: int) -> int: ...

    from typing import Callable as _Callable

    Hanger.register.__annotations__["proc"] = _Callable[[int], int]

    @async_test
    async def test_hung_client_handler_releases_server_task(self):
        from repro import RemoteError
        from repro.errors import UpcallError

        server = ClamServer(upcall_timeout=0.05)
        address = await server.start(f"memory://timeouts-{next(_ids)}")
        client = await ClamClient.connect(address)
        await client.load_module("hanger", self.HANG_SOURCE)
        hanger = await client.create(self.Hanger)

        async def stuck(value):
            await asyncio.sleep(30)
            return value

        await hanger.register(stuck)
        with pytest.raises(RemoteError) as info:
            await hanger.call_out(1)
        assert info.value.remote_type == UpcallError.__name__
        assert "did not complete" in info.value.remote_message
        await client.close()
        await server.shutdown()

    @async_test
    async def test_fast_handler_unaffected_and_late_reply_dropped(self):
        server = ClamServer(upcall_timeout=0.05)
        address = await server.start(f"memory://timeouts-{next(_ids)}")
        client = await ClamClient.connect(address)
        await client.load_module("hanger", self.HANG_SOURCE)
        hanger = await client.create(self.Hanger)

        async def mixed(value):
            if value == 99:
                await asyncio.sleep(0.2)  # will time out
            return value * 2

        await hanger.register(mixed)
        assert await hanger.call_out(3) == 6
        from repro import RemoteError

        with pytest.raises(RemoteError):
            await hanger.call_out(99)
        await asyncio.sleep(0.3)  # the late reply arrives and is dropped
        assert await hanger.call_out(4) == 8  # session still coherent
        await client.close()
        await server.shutdown()


class TestServerStats:
    @async_test
    async def test_counters_populate(self):
        server, client, slow = await start()
        await slow.nap(1)
        stats = await client.server_stats()
        assert stats["sessions"] == 1
        assert stats["modules_loaded"] == 1
        assert stats["classes_loaded"] == 1
        assert stats["objects_exported"] == 1
        assert stats["calls_executed"] >= 3  # load, create, nap, stats
        assert stats["fault_records"] == 0
        await client.close()
        await server.shutdown()

    @async_test
    async def test_upcall_counter(self):
        from typing import Callable

        WATCH = '''
from typing import Callable

from repro.stubs import RemoteInterface


class Watch(RemoteInterface):
    def __init__(self):
        self.proc = None

    def register(self, proc: Callable[[int], None]) -> bool:
        self.proc = proc
        return True

    async def fire(self, value: int) -> bool:
        await self.proc(value)
        return True
'''

        class Watch(RemoteInterface):
            def register(self, proc: Callable[[int], None]) -> bool: ...
            def fire(self, value: int) -> bool: ...

        server = ClamServer()
        address = await server.start(f"memory://timeouts-{next(_ids)}")
        client = await ClamClient.connect(address)
        await client.load_module("watch", WATCH)
        watch = await client.create(Watch)
        await watch.register(lambda v: None)
        await watch.fire(1)
        await watch.fire(2)
        stats = await client.server_stats()
        assert stats["upcalls_sent"] == 2
        await client.close()
        await server.shutdown()
