"""Single-stream mode: the §4.4 channel ablation.

"Without typed messages, multiplexing multiple channels of
communication onto one unix stream is difficult, and requires extra
information to be passed to specify which conversation is currently
active.  Therefore, CLAM provides separate unix streams for each
communication channel."

Our messages ARE typed, so the reproduction also implements the
alternative CLAM rejected: one stream carrying both conversations.
These tests show it works — and pin down the constraint that makes the
paper's two-stream design the safer default (upcalls must come from
server tasks, never inline in an RPC handler).
"""

import asyncio
import itertools
from typing import Callable

import pytest

from repro import ClamClient, ClamServer, RemoteInterface
from tests.support import async_test, eventually

_ids = itertools.count(1)

# A class whose upcalls originate from a server task (armed by an RPC
# that returns immediately) — the pattern single-stream mode requires.
TICKER_SOURCE = '''
import asyncio
from typing import Callable

from repro.stubs import RemoteInterface


class Ticker(RemoteInterface):
    def __init__(self):
        self.proc = None
        self._task = None

    def register(self, proc: Callable[[int], None]) -> bool:
        self.proc = proc
        return True

    def start(self, count: int) -> bool:
        # Fire the upcalls from a fresh server task (S4.3), NOT inline.
        self._task = asyncio.get_event_loop().create_task(self._tick(count))
        return True

    async def _tick(self, count: int) -> None:
        for i in range(count):
            await self.proc(i)
'''


class Ticker(RemoteInterface):
    def register(self, proc: Callable[[int], None]) -> bool: ...
    def start(self, count: int) -> bool: ...


async def start_pair(channels: str):
    server = ClamServer()
    address = await server.start(f"memory://single-stream-{next(_ids)}")
    client = await ClamClient.connect(address, channels=channels)
    await client.load_module("ticker", TICKER_SOURCE)
    ticker = await client.create(Ticker)
    return server, client, ticker


class TestSingleStream:
    @async_test
    async def test_upcalls_arrive_on_the_rpc_stream(self):
        server, client, ticker = await start_pair("one")
        assert server.session_count == 1
        seen = []
        await ticker.register(lambda i: seen.append(i))
        await ticker.start(5)
        await eventually(lambda: seen == [0, 1, 2, 3, 4])
        assert client.upcalls_handled == 5
        await client.close()
        await server.shutdown()

    @async_test
    async def test_rpcs_flow_while_upcalls_active(self):
        """The shared stream interleaves conversations correctly."""
        server, client, ticker = await start_pair("one")
        seen = []
        await ticker.register(lambda i: seen.append(i))
        await ticker.start(20)
        # Hammer RPCs while the ticker's upcalls are in flight.
        for _ in range(10):
            await client.ping()
        await eventually(lambda: len(seen) == 20)
        assert seen == list(range(20))  # upcall order preserved too
        await client.close()
        await server.shutdown()

    @async_test
    async def test_handler_making_rpcs_back(self):
        """An upcall handler may RPC back on the same stream: the
        reader never blocks because handling runs on its own task."""
        server, client, ticker = await start_pair("one")
        pings = []

        async def handler(i):
            pings.append(await client.ping())

        await ticker.register(handler)
        await ticker.start(3)
        await eventually(lambda: len(pings) == 3)
        await client.close()
        await server.shutdown()

    @async_test
    async def test_modes_equivalent_results(self):
        results = {}
        for channels in ("one", "two"):
            server, client, ticker = await start_pair(channels)
            seen = []
            await ticker.register(lambda i: seen.append(i))
            await ticker.start(7)
            await eventually(lambda: len(seen) == 7)
            results[channels] = seen
            await client.close()
            await server.shutdown()
        assert results["one"] == results["two"]

    @async_test
    async def test_failing_handler_reported_on_shared_stream(self):
        server, client, ticker = await start_pair("one")
        attempts = []

        def bad(i):
            attempts.append(i)
            raise RuntimeError("handler bug")

        await ticker.register(bad)
        await ticker.start(2)
        # The first upcall's failure propagates to the ticking server
        # task as a RemoteError and kills it — so exactly one attempt.
        await eventually(lambda: len(attempts) == 1)
        # The stream survives: normal RPC still works.
        assert isinstance(await client.ping(), int)
        await client.close()
        await server.shutdown()

    @async_test
    async def test_bad_channels_value_rejected(self):
        server = ClamServer()
        address = await server.start(f"memory://single-stream-{next(_ids)}")
        with pytest.raises(ValueError):
            await ClamClient.connect(address, channels="three")
        await server.shutdown()


class TestFallback:
    @async_test
    async def test_dead_upcall_channel_falls_back_to_rpc_stream(self):
        """A two-stream client whose dedicated upcall channel dies
        keeps receiving upcalls, multiplexed onto the RPC stream."""
        server, client, ticker = await start_pair("two")
        seen = []
        await ticker.register(lambda i: seen.append(i))

        # Kill the dedicated channel; wait for the server to notice.
        await client._upcall_service._channel.close()
        session = next(iter(server.sessions.values()))
        await eventually(lambda: not session.has_upcall_channel)

        await ticker.start(3)
        await eventually(lambda: seen == [0, 1, 2])
        await client.close()
        await server.shutdown()


class TestTwoStreamStillDefault:
    @async_test
    async def test_default_opens_two_connections(self):
        server, client, ticker = await start_pair("two")
        # The dedicated upcall channel exists server-side.
        session = next(iter(server.sessions.values()))
        assert session.has_upcall_channel
        await client.close()
        await server.shutdown()

    @async_test
    async def test_single_stream_has_no_upcall_channel(self):
        server, client, ticker = await start_pair("one")
        session = next(iter(server.sessions.values()))
        assert not session.has_upcall_channel
        await client.close()
        await server.shutdown()
