"""out/inout parameters over the real wire (paper §3.2).

The paper's ``out``/``inout`` specifiers are result parameters; here
they are Ref cells copied back in the reply.  These tests drive them
through the full client/server stack, including user bundlers.
"""

import itertools


from repro import ClamClient, ClamServer, RemoteInterface, Ref
from repro.bundlers import InOut, Out
from typing import Annotated

from tests.support import async_test

_ids = itertools.count(1)

SOURCE = '''
from dataclasses import dataclass
from typing import Annotated

from repro.bundlers import InOut, Out
from repro.stubs import RemoteInterface, Ref


@dataclass
class Stats:
    count: int
    total: int


class Accumulator(RemoteInterface):
    def __init__(self):
        self.values = []

    def add(self, value: int) -> None:
        self.values.append(value)

    def snapshot(self, stats: Annotated[Ref[Stats], Out()]) -> bool:
        stats.value = Stats(count=len(self.values), total=sum(self.values))
        return bool(self.values)

    def normalize(self, series: Annotated[Ref[list[int]], InOut()]) -> int:
        lowest = min(series.value) if series.value else 0
        series.value = [v - lowest for v in series.value]
        return lowest
'''

from dataclasses import dataclass


@dataclass
class Stats:
    count: int
    total: int


class Accumulator(RemoteInterface):
    def add(self, value: int) -> None: ...
    def snapshot(self, stats: Annotated[Ref[Stats], Out()]) -> bool: ...
    def normalize(self, series: Annotated[Ref[list[int]], InOut()]) -> int: ...


async def start():
    server = ClamServer()
    address = await server.start(f"memory://outparams-{next(_ids)}")
    client = await ClamClient.connect(address)
    await client.load_module("accumulator", SOURCE)
    acc = await client.create(Accumulator)
    return server, client, acc


class TestOutOverTheWire:
    @async_test
    async def test_out_param_filled_by_server(self):
        server, client, acc = await start()
        await acc.add(4)
        await acc.add(6)
        stats = Ref()
        assert await acc.snapshot(stats) is True
        assert stats.value == Stats(count=2, total=10)
        await client.close()
        await server.shutdown()

    @async_test
    async def test_out_param_when_empty(self):
        server, client, acc = await start()
        stats = Ref()
        assert await acc.snapshot(stats) is False
        assert stats.value == Stats(count=0, total=0)
        await client.close()
        await server.shutdown()

    @async_test
    async def test_inout_travels_both_ways(self):
        server, client, acc = await start()
        series = Ref([7, 3, 9])
        lowest = await acc.normalize(series)
        assert lowest == 3
        assert series.value == [4, 0, 6]
        await client.close()
        await server.shutdown()

    @async_test
    async def test_inout_reused_across_calls(self):
        server, client, acc = await start()
        series = Ref([10, 20])
        await acc.normalize(series)
        assert series.value == [0, 10]
        await acc.normalize(series)  # already normalized: lowest 0
        assert series.value == [0, 10]
        await client.close()
        await server.shutdown()

    @async_test
    async def test_out_param_methods_are_synchronous(self):
        """A method with result parameters can never batch (§3.4)."""
        from repro.stubs import interface_spec

        spec = interface_spec(Accumulator)
        assert not spec.methods["snapshot"].is_async_eligible
        assert not spec.methods["normalize"].is_async_eligible
        assert spec.methods["add"].is_async_eligible
