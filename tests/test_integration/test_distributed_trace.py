"""End-to-end distributed tracing across calls, batches, and upcalls.

The observability counterpart of Figure 4-1: client B's synchronous
call enters the server, the handler performs a distributed upcall to
client A's registered procedure, and every span — in three different
runtimes — carries one ``trace_id`` with correct parent/child edges,
stitched over the wire by protocol v2's ``trace_id``/``parent_span``
fields.
"""

import itertools
import json

from repro.bench.scenarios import POKER_SOURCE, PokerIface
from repro.client import ClamClient
from repro.obs.export import ChromeTraceExporter, render_trace_tree
from repro.server import ClamServer
from repro.trace import (
    KIND_CALL,
    KIND_CLIENT_CALL,
    KIND_UPCALL,
    KIND_UPCALL_EXEC,
    TimelineRecorder,
)
from repro.wire import PROTOCOL_VERSION, TRACE_CONTEXT_VERSION
from tests.support import async_test

_ids = itertools.count(1)


async def poker_fixture(**connect_b_kwargs):
    """Server + client A (registers the RUC) + client B (will poke)."""
    server = ClamServer()
    address = await server.start(f"unix:///tmp/dtrace-{next(_ids)}.sock")
    client_a = await ClamClient.connect(address)
    await client_a.load_module("poker", POKER_SOURCE)
    poker_a = await client_a.create(PokerIface)
    await poker_a.register(lambda i: i * 10)
    await client_a.publish("poker", poker_a)
    client_b = await ClamClient.connect(address, **connect_b_kwargs)
    poker_b = await client_b.lookup(PokerIface, "poker")
    return server, client_a, client_b, poker_b


async def teardown(server, *clients):
    for client in clients:
        await client.close()
    await server.shutdown()


def spans_of(recorder, kind):
    return [e for e in recorder.events if e.kind == kind and e.phase == "end"]


class TestDistributedTrace:
    @async_test
    async def test_call_handler_upcall_execution_share_one_trace(self):
        server, client_a, client_b, poker_b = await poker_fixture()
        rec_a, rec_b, rec_s = (
            TimelineRecorder(), TimelineRecorder(), TimelineRecorder(),
        )
        client_a.tracer.subscribe(rec_a)
        client_b.tracer.subscribe(rec_b)
        server.tracer.subscribe(rec_s)

        assert await poker_b.poke(2) == 10  # 0*10 + 1*10

        # Spans: B's sync call; the server handler; two distributed
        # upcalls; two RUC executions in A.
        [call_b] = spans_of(rec_b, KIND_CLIENT_CALL)
        handler_spans = spans_of(rec_s, KIND_CALL)
        [handler] = [e for e in handler_spans if "poke" in e.name]
        upcalls = spans_of(rec_s, KIND_UPCALL)
        execs = spans_of(rec_a, KIND_UPCALL_EXEC)
        assert len(upcalls) == 2 and len(execs) == 2

        # One trace across all three processes.
        trace_id = call_b.trace_id
        assert trace_id
        for event in [handler, *upcalls, *execs]:
            assert event.trace_id == trace_id

        # Parent/child edges: call <- handler <- upcall <- execution.
        assert call_b.parent_id == 0
        assert handler.parent_id == call_b.span_id
        for upcall in upcalls:
            assert upcall.parent_id == handler.span_id
        assert {e.parent_id for e in execs} == {u.span_id for u in upcalls}
        await teardown(server, client_a, client_b)

    @async_test
    async def test_chrome_export_has_three_process_lanes(self):
        server, client_a, client_b, poker_b = await poker_fixture()
        exporter = ChromeTraceExporter()
        exporter.attach(client_b.tracer, "client-b")
        exporter.attach(server.tracer, "server")
        exporter.attach(client_a.tracer, "client-a")
        await poker_b.poke(1)
        exporter.detach_all()

        document = json.loads(exporter.to_json())  # valid JSON by parse
        assert exporter.process_count() == 3
        slices = [r for r in document["traceEvents"] if r["ph"] == "X"]
        assert {r["pid"] for r in slices} == {1, 2, 3}
        # every lane contributed at least one slice of the same trace
        trace_ids = {r["args"]["trace_id"] for r in slices}
        assert len(trace_ids) == 1
        await teardown(server, client_a, client_b)

    @async_test
    async def test_render_tree_nests_all_parties(self):
        server, client_a, client_b, poker_b = await poker_fixture()
        rec_a, rec_b, rec_s = (
            TimelineRecorder(), TimelineRecorder(), TimelineRecorder(),
        )
        client_a.tracer.subscribe(rec_a)
        client_b.tracer.subscribe(rec_b)
        server.tracer.subscribe(rec_s)
        await poker_b.poke(1)
        text = render_trace_tree({
            "client-b": rec_b.events,
            "server": rec_s.events,
            "client-a": rec_a.events,
        })
        assert "[client-b]" in text and "[server]" in text
        assert "[client-a]" in text
        # the RUC execution is rendered deeper than the root call
        lines = text.splitlines()
        root_line = next(ln for ln in lines if "[client-b]" in ln)
        exec_line = next(ln for ln in lines if "[client-a]" in ln)
        def depth(line):
            return len(line) - len(line.lstrip("|`- "))
        assert depth(exec_line) > depth(root_line)
        await teardown(server, client_a, client_b)

    @async_test
    async def test_untraced_server_still_propagates_context(self):
        """A hop whose own tracer has no subscribers stays transparent:
        the trace flows from B's call through the server to A's RUC."""
        server, client_a, client_b, poker_b = await poker_fixture()
        rec_a, rec_b = TimelineRecorder(), TimelineRecorder()
        client_a.tracer.subscribe(rec_a)
        client_b.tracer.subscribe(rec_b)
        await poker_b.poke(1)
        [call_b] = spans_of(rec_b, KIND_CLIENT_CALL)
        [exec_a] = spans_of(rec_a, KIND_UPCALL_EXEC)
        assert exec_a.trace_id == call_b.trace_id
        # with no server spans in between, the call span is the parent
        assert exec_a.parent_id == call_b.span_id
        # the untraced server paid nothing beyond counters
        assert not server.tracer.active
        await teardown(server, client_a, client_b)


class TestVersionNegotiation:
    @async_test
    async def test_v1_client_interoperates_without_context(self):
        """A pre-trace-context peer negotiates down to v1: calls and
        upcalls work, but the trace breaks at the wire (by design)."""
        server, client_a, client_b, poker_b = await poker_fixture(
            protocol_version=1,
        )
        assert client_b.protocol_version == 1
        assert TRACE_CONTEXT_VERSION > 1
        rec_b, rec_s = TimelineRecorder(), TimelineRecorder()
        client_b.tracer.subscribe(rec_b)
        server.tracer.subscribe(rec_s)

        assert await poker_b.poke(2) == 10  # the RPC itself still works

        [call_b] = spans_of(rec_b, KIND_CLIENT_CALL)
        [handler] = [e for e in spans_of(rec_s, KIND_CALL) if "poke" in e.name]
        # the v1 wire dropped the context: the server started a fresh trace
        assert handler.trace_id != call_b.trace_id
        assert handler.parent_id == 0
        await teardown(server, client_a, client_b)

    @async_test
    async def test_current_client_reports_current_version(self):
        server, client_a, client_b, _poker_b = await poker_fixture()
        assert client_b.protocol_version == PROTOCOL_VERSION
        await teardown(server, client_a, client_b)

    @async_test
    async def test_v2_client_negotiates_v2(self):
        server, client_a, client_b, poker_b = await poker_fixture(
            protocol_version=TRACE_CONTEXT_VERSION,
        )
        assert client_b.protocol_version == TRACE_CONTEXT_VERSION
        assert await poker_b.poke(1) == 0
        await teardown(server, client_a, client_b)

    @async_test
    async def test_future_client_version_negotiates_down(self):
        server, client_a, client_b, poker_b = await poker_fixture(
            protocol_version=99,
        )
        assert client_b.protocol_version == PROTOCOL_VERSION
        assert await poker_b.poke(1) == 0
        await teardown(server, client_a, client_b)


class TestMetricsAcrossTheWire:
    @async_test
    async def test_builtin_metrics_scrape(self):
        server, client_a, client_b, poker_b = await poker_fixture()
        await poker_b.poke(2)
        snapshot = await client_b.server_metrics()
        assert snapshot["upcall.server.rtt_us.count"] == 2.0
        assert snapshot["upcall.server.rtt_us.mean"] > 0
        assert snapshot["rpc.server.call_us.Poker.poke.count"] >= 1.0
        # the client kept its own registry too
        local = client_b.metrics.snapshot()
        assert local["rpc.client.call_us.poke.count"] >= 1.0
        # instruments appear on first use: B ran no RUCs, so none exists
        assert "upcall.client.exec_us.count" not in local
        assert client_a.metrics.snapshot()["upcall.client.exec_us.count"] == 2.0
        await teardown(server, client_a, client_b)

    @async_test
    async def test_batch_flush_size_histogram(self):
        from repro.bench.scenarios import COUNTER_SOURCE, CounterIface

        server, client_a, client_b, _poker_b = await poker_fixture()
        await client_b.load_module("counter", COUNTER_SOURCE)
        counter = await client_b.create(CounterIface)
        for _ in range(8):
            await counter.add(1)  # void -> batched
        await client_b.sync()
        flushes = client_b.metrics.histogram("rpc.client.batch_flush_size")
        assert flushes.count >= 1
        assert flushes.mean >= 1.0
        assert sum(
            int(b) for b in flushes.bucket_counts
        ) == flushes.count
        await teardown(server, client_a, client_b)
