"""The naming half of the builtin interface: list, unpublish, overwrite.

``publish`` over an existing name is a *deliberate overwrite* — it is
counted (``naming.republished``), traced (KIND_NAMING), and clients
replaying lookups after a reconnect see their old proxies go stale.
``unpublish`` retracts a name without revoking the object;
``list_names`` enumerates the namespace.
"""

import itertools

import pytest

from repro import ClamClient, ClamServer, RemoteInterface
from repro.errors import RemoteError, RemoteStaleError, StaleHandleError
from repro.rpc import RetryPolicy
from repro.stubs import idempotent
from repro.trace import KIND_NAMING, TimelineRecorder
from tests.support import async_test, eventually

_ids = itertools.count(1)

COUNTER_SOURCE = '''
from repro.stubs import RemoteInterface


class Counter(RemoteInterface):
    def __init__(self):
        self.value = 0

    def add(self, amount: int) -> None:
        self.value += amount

    def total(self) -> int:
        return self.value
'''


class Counter(RemoteInterface):
    def add(self, amount: int) -> None: ...
    @idempotent
    def total(self) -> int: ...


async def start(server=None):
    if server is None:
        server = ClamServer()
    address = await server.start(f"memory://naming-{next(_ids)}")
    client = await ClamClient.connect(address)
    await client.load_module("counter", COUNTER_SOURCE)
    return server, address, client


async def drop_connection(client):
    """Sever the RPC stream as a network failure would."""
    await client.rpc.channel.close()
    await client.rpc.disconnected.wait()


class TestListNames:
    @async_test
    async def test_names_appear_and_disappear(self):
        server, _, client = await start()
        assert await client.list_names() == []
        counter = await client.create(Counter)
        await client.publish("b-name", counter)
        await client.publish("a-name", counter)
        assert await client.list_names() == ["a-name", "b-name"]
        assert await client.unpublish("b-name") is True
        assert await client.list_names() == ["a-name"]
        await client.close()
        await server.shutdown()

    @async_test
    async def test_host_published_objects_listed_too(self):
        server = ClamServer()
        server.publish("host-object", _HostThing())
        _, _, client = (None, None, None)
        address = await server.start(f"memory://naming-{next(_ids)}")
        client = await ClamClient.connect(address)
        assert await client.list_names() == ["host-object"]
        await client.close()
        await server.shutdown()


class _HostThing(RemoteInterface):
    def nop(self) -> int:
        return 0


class TestUnpublish:
    @async_test
    async def test_unpublished_name_stops_resolving(self):
        server, _, client = await start()
        counter = await client.create(Counter)
        await client.publish("short-lived", counter)
        assert await client.unpublish("short-lived") is True
        with pytest.raises(RemoteError):
            await client.lookup(Counter, "short-lived")
        await client.close()
        await server.shutdown()

    @async_test
    async def test_unpublish_missing_name_is_false_not_error(self):
        server, _, client = await start()
        assert await client.unpublish("never-was") is False
        await client.close()
        await server.shutdown()

    @async_test
    async def test_handles_stay_valid_after_unpublish(self):
        """Retraction is not revocation: release's naming half only."""
        server, _, client = await start()
        counter = await client.create(Counter)
        await client.publish("temp", counter)
        looked_up = await client.lookup(Counter, "temp")
        assert await client.unpublish("temp") is True
        # Both the creator's proxy and the looked-up one still work.
        await counter.add(2)
        assert await looked_up.total() == 2
        assert server.metrics.counter("naming.unpublished").value == 1
        await client.close()
        await server.shutdown()

    @async_test
    async def test_release_still_revokes(self):
        """Contrast: release revokes the object and clears its names."""
        server, _, client = await start()
        counter = await client.create(Counter)
        await client.publish("doomed", counter)
        await client.release(counter)
        with pytest.raises(RemoteError):
            await client.lookup(Counter, "doomed")
        with pytest.raises((RemoteError, StaleHandleError)):
            await counter.total()
        await client.close()
        await server.shutdown()


class TestRepublish:
    @async_test
    async def test_overwrite_counted_and_traced(self):
        server = ClamServer()
        recorder = TimelineRecorder()
        server.tracer.subscribe(recorder)
        _, _, client = await start(server)

        first = await client.create(Counter)
        second = await client.create(Counter)
        await client.publish("the-name", first)
        assert server.metrics.counter("naming.republished").value == 0
        await client.publish("the-name", second)  # deliberate overwrite
        assert server.metrics.counter("naming.republished").value == 1
        points = [
            e for e in recorder.of_kind(KIND_NAMING)
            if e.name == "republish the-name"
        ]
        assert len(points) == 1
        await client.close()
        await server.shutdown()

    @async_test
    async def test_republishing_same_handle_is_not_an_overwrite(self):
        server, _, client = await start()
        counter = await client.create(Counter)
        await client.publish("idem", counter)
        await client.publish("idem", counter)
        assert server.metrics.counter("naming.republished").value == 0
        await client.close()
        await server.shutdown()

    @async_test
    async def test_host_side_publish_overwrite_counted(self):
        server = ClamServer()
        server.publish("spot", _HostThing())
        server.publish("spot", _HostThing())
        assert server.metrics.counter("naming.republished").value == 1

    @async_test
    async def test_overwrite_marks_reconnecting_clients_proxies_stale(self):
        """Pin the composition with PR 3's lookup replay.

        A client that looked a name up, then lost its connection while
        another publisher overwrote the name, must find its old proxy
        *stale* after reconnecting — the replay observes the changed
        handle — rather than silently calling the old object.
        """
        server = ClamServer(session_linger=30.0)
        address = await server.start(f"memory://naming-{next(_ids)}")
        observer = await ClamClient.connect(
            address,
            reconnect=True,
            reconnect_policy=RetryPolicy(attempts=8, base_delay=0.01, seed=1),
        )
        publisher = await ClamClient.connect(address)
        await publisher.load_module("counter", COUNTER_SOURCE)

        original = await publisher.create(Counter)
        await original.add(7)
        await publisher.publish("contested", original)

        observed = await observer.lookup(Counter, "contested")
        assert await observed.total() == 7

        # The observer's wires drop; meanwhile the name is overwritten.
        await drop_connection(observer)
        replacement = await publisher.create(Counter)
        await publisher.publish("contested", replacement)
        assert server.metrics.counter("naming.republished").value == 1

        await eventually(lambda: observer.reconnects == 1)
        await eventually(lambda: observer.rpc.is_stale(observed._clam_handle_))
        with pytest.raises((RemoteStaleError, StaleHandleError)):
            await observed.total()

        # A fresh lookup reaches the replacement (value 0, not 7).
        fresh = await observer.lookup(Counter, "contested")
        assert await fresh.total() == 0

        await observer.close()
        await publisher.close()
        await server.shutdown()
