"""Argument handling of the two command-line entry points."""

import pytest

from repro.client.__main__ import parse_args as client_args
from repro.server.__main__ import parse_args as server_args


class TestServerArgs:
    def test_listen_required(self):
        with pytest.raises(SystemExit):
            server_args([])

    def test_single_listen(self):
        args = server_args(["--listen", "unix:///tmp/x.sock"])
        assert args.listen == ["unix:///tmp/x.sock"]
        assert args.wm is None
        assert args.quarantine_after == 1
        assert args.max_active_upcalls == 1

    def test_multiple_listens(self):
        args = server_args(
            ["--listen", "unix:///a.sock", "--listen", "tcp://127.0.0.1:0"]
        )
        assert len(args.listen) == 2

    def test_wm_and_knobs(self):
        args = server_args(
            [
                "--listen", "memory://x",
                "--wm", "100x40",
                "--quarantine-after", "3",
                "--max-active-upcalls", "4",
            ]
        )
        assert args.wm == "100x40"
        assert args.quarantine_after == 3
        assert args.max_active_upcalls == 4


class TestClientArgs:
    def test_url_and_command_required(self):
        with pytest.raises(SystemExit):
            client_args([])
        with pytest.raises(SystemExit):
            client_args(["tcp://host:1"])

    def test_ping(self):
        args = client_args(["tcp://host:1", "ping"])
        assert args.command == "ping"
        assert args.url == "tcp://host:1"

    def test_load(self):
        args = client_args(["unix:///s", "load", "mymod", "/tmp/mod.py"])
        assert args.command == "load"
        assert args.name == "mymod"
        assert str(args.file) == "/tmp/mod.py"

    def test_versions(self):
        args = client_args(["unix:///s", "versions", "Counter"])
        assert args.class_name == "Counter"

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            client_args(["unix:///s", "frobnicate"])
