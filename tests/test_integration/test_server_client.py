"""Full-stack integration: ClamServer + ClamClient.

Covers the builtin interface, dynamic loading (§2), handles crossing
address spaces (§3.5.1), and distributed upcalls end-to-end (§3.5.2,
§4), over the memory, unix, and tcp transports.
"""

import asyncio
import itertools
from typing import Callable

import pytest

from repro import (
    ClamClient,
    ClamServer,
    FaultyClassError,
    RemoteError,
    RemoteInterface,
    UnknownClassError,
)
from tests.support import async_test, eventually

_ids = itertools.count(1)

COUNTER_SOURCE = '''
from repro.stubs import RemoteInterface


class Counter(RemoteInterface):
    def __init__(self):
        self.value = 0

    def add(self, amount: int) -> None:
        self.value += amount

    def total(self) -> int:
        return self.value
'''

# The client-side declaration matching the loaded module.
class Counter(RemoteInterface):
    def add(self, amount: int) -> None: ...
    def total(self) -> int: ...


WATCHED_SOURCE = '''
from typing import Callable

from repro.stubs import RemoteInterface


class Watched(RemoteInterface):
    """A loadable class that makes upcalls to registered watchers."""

    def __init__(self):
        self.watchers = []
        self.value = 0

    def watch(self, proc: Callable[[int], None]) -> None:
        self.watchers.append(proc)

    async def set(self, value: int) -> int:
        self.value = value
        for watcher in self.watchers:
            await watcher(value)
        return len(self.watchers)
'''


class Watched(RemoteInterface):
    def watch(self, proc: Callable[[int], None]) -> None: ...
    def set(self, value: int) -> int: ...


FAULTY_SOURCE = '''
from repro.stubs import RemoteInterface


class Faulty(RemoteInterface):
    def divide(self, numerator: int, denominator: int) -> int:
        return numerator // denominator
'''


class Faulty(RemoteInterface):
    def divide(self, numerator: int, denominator: int) -> int: ...


async def start(url=None):
    server = ClamServer()
    address = await server.start(url or f"memory://clam-it-{next(_ids)}")
    client = await ClamClient.connect(address)
    return server, client


class TestBuiltin:
    @async_test
    async def test_ping(self):
        server, client = await start()
        assert isinstance(await client.ping(), int)
        await client.close()
        await server.shutdown()

    @async_test
    async def test_session_established(self):
        server, client = await start()
        assert client.session
        assert server.session_count == 1
        await client.close()
        await server.shutdown()

    @async_test
    async def test_two_clients_independent_sessions(self):
        server = ClamServer()
        address = await server.start(f"memory://clam-it-{next(_ids)}")
        c1 = await ClamClient.connect(address)
        c2 = await ClamClient.connect(address)
        assert c1.session != c2.session
        assert server.session_count == 2
        await c1.close()
        await c2.close()
        await server.shutdown()


class TestDynamicLoading:
    @async_test
    async def test_load_create_call(self):
        server, client = await start()
        exported = await client.load_module("counter", COUNTER_SOURCE)
        assert exported == ["Counter"]
        counter = await client.create(Counter)
        await counter.add(5)
        await counter.add(7)
        assert await counter.total() == 12
        await client.close()
        await server.shutdown()

    @async_test
    async def test_create_unknown_class(self):
        server, client = await start()
        with pytest.raises(RemoteError) as info:
            await client.create(Counter)
        assert info.value.remote_type == UnknownClassError.__name__
        await client.close()
        await server.shutdown()

    @async_test
    async def test_listings(self):
        server, client = await start()
        await client.load_module("counter", COUNTER_SOURCE)
        assert await client.list_modules() == ["counter"]
        assert await client.list_classes() == ["Counter"]
        assert await client.versions_of("Counter") == [1]
        await client.close()
        await server.shutdown()

    @async_test
    async def test_loaded_objects_shared_between_clients(self):
        """Placement in the server enables sharing (§1)."""
        server = ClamServer()
        address = await server.start(f"memory://clam-it-{next(_ids)}")
        c1 = await ClamClient.connect(address)
        c2 = await ClamClient.connect(address)

        await c1.load_module("counter", COUNTER_SOURCE)
        counter1 = await c1.create(Counter)
        await c1.publish("shared-counter", counter1)

        counter2 = await c2.lookup(Counter, "shared-counter")
        await counter2.add(30)
        await c2.sync()
        assert await counter1.total() == 30  # c1 sees c2's increment
        await c1.close()
        await c2.close()
        await server.shutdown()

    @async_test
    async def test_batching_through_real_server(self):
        server, client = await start()
        await client.load_module("counter", COUNTER_SOURCE)
        counter = await client.create(Counter)
        for _ in range(50):
            await counter.add(1)
        assert await counter.total() == 50
        # All 50 posts arrived; far fewer frames than calls.
        assert client.rpc.batch.frames_sent <= 2
        await client.close()
        await server.shutdown()


class TestDistributedUpcalls:
    @async_test
    async def test_callback_receives_upcall(self):
        server, client = await start()
        await client.load_module("watched", WATCHED_SOURCE)
        watched = await client.create(Watched)

        received = []
        await watched.watch(lambda value: received.append(value))
        assert await watched.set(42) == 1
        assert received == [42]
        assert client.upcalls_handled == 1
        await client.close()
        await server.shutdown()

    @async_test
    async def test_multiple_watchers_multiple_upcalls(self):
        server, client = await start()
        await client.load_module("watched", WATCHED_SOURCE)
        watched = await client.create(Watched)

        a, b = [], []
        await watched.watch(lambda v: a.append(v))
        await watched.watch(lambda v: b.append(v))
        assert await watched.set(7) == 2
        assert a == [7] and b == [7]
        await client.close()
        await server.shutdown()

    @async_test
    async def test_upcalls_to_two_clients(self):
        """Each RUC is bound to its own client's upcall channel."""
        server = ClamServer()
        address = await server.start(f"memory://clam-it-{next(_ids)}")
        c1 = await ClamClient.connect(address)
        c2 = await ClamClient.connect(address)

        await c1.load_module("watched", WATCHED_SOURCE)
        w = await c1.create(Watched)
        await c1.publish("w", w)
        w_for_c2 = await c2.lookup(Watched, "w")

        seen1, seen2 = [], []
        await w.watch(lambda v: seen1.append(("c1", v)))
        await w_for_c2.watch(lambda v: seen2.append(("c2", v)))
        await w.set(5)
        assert seen1 == [("c1", 5)]
        assert seen2 == [("c2", 5)]
        await c1.close()
        await c2.close()
        await server.shutdown()

    @async_test
    async def test_async_client_callback(self):
        server, client = await start()
        await client.load_module("watched", WATCHED_SOURCE)
        watched = await client.create(Watched)

        received = []

        async def handler(value):
            await asyncio.sleep(0.001)
            received.append(value)

        await watched.watch(handler)
        await watched.set(9)
        assert received == [9]
        await client.close()
        await server.shutdown()

    @async_test
    async def test_failing_callback_surfaces_to_server_caller(self):
        server, client = await start()
        await client.load_module("watched", WATCHED_SOURCE)
        watched = await client.create(Watched)

        def bad_handler(value):
            raise KeyError("handler bug")

        await watched.watch(bad_handler)
        # The server-side set() awaits the upcall, whose failure
        # propagates back down the RPC as a RemoteError chain.
        with pytest.raises(RemoteError):
            await watched.set(1)
        await client.close()
        await server.shutdown()


class TestFaultIsolation:
    @async_test
    async def test_fault_reported_via_upcall(self):
        server, client = await start()
        reports = []
        await client.register_error_handler(
            lambda name, version, etype, msg: reports.append((name, etype))
        )
        await client.load_module("faulty", FAULTY_SOURCE)
        faulty = await client.create(Faulty)
        assert await faulty.divide(10, 2) == 5
        with pytest.raises(RemoteError) as info:
            await faulty.divide(1, 0)
        assert info.value.remote_type == "ZeroDivisionError"
        await eventually(lambda: reports == [("Faulty", "ZeroDivisionError")])
        await client.close()
        await server.shutdown()

    @async_test
    async def test_quarantine_after_fault(self):
        server, client = await start()
        await client.load_module("faulty", FAULTY_SOURCE)
        faulty = await client.create(Faulty)
        with pytest.raises(RemoteError):
            await faulty.divide(1, 0)
        with pytest.raises(RemoteError) as info:
            await faulty.divide(4, 2)  # quarantined now
        assert info.value.remote_type == FaultyClassError.__name__
        await client.close()
        await server.shutdown()

    @async_test
    async def test_late_handler_gets_queued_report(self):
        server, client = await start()
        await client.load_module("faulty", FAULTY_SOURCE)
        faulty = await client.create(Faulty)
        with pytest.raises(RemoteError):
            await faulty.divide(1, 0)
        # Handler registers after the fault: the queued report replays.
        reports = []
        await client.register_error_handler(
            lambda name, version, etype, msg: reports.append(etype)
        )
        await eventually(lambda: reports == ["ZeroDivisionError"])
        await client.close()
        await server.shutdown()


class TestOverRealSockets:
    @pytest.mark.parametrize("scheme", ["unix", "tcp"])
    @async_test
    async def test_load_and_upcall(self, scheme, tmp_path):
        url = {
            "unix": f"unix://{tmp_path}/clam.sock",
            "tcp": "tcp://127.0.0.1:0",
        }[scheme]
        server, client = await start(url)
        await client.load_module("watched", WATCHED_SOURCE)
        watched = await client.create(Watched)
        received = []
        await watched.watch(lambda v: received.append(v))
        await watched.set(11)
        assert received == [11]
        await client.close()
        await server.shutdown()
