"""True multi-process tests: the server in its own OS process.

Everything else in the suite runs client and server on one event loop;
these tests spawn ``python -m repro.server`` as a subprocess and speak
to it over a UNIX socket — the paper's actual deployment shape
(MicroVAX client processes talking to a separate server process).
"""

import subprocess
import sys
import time
from typing import Callable

import pytest

from repro import ClamClient, RemoteInterface
from tests.support import async_test

COUNTER_SOURCE = '''
from typing import Callable

from repro.stubs import RemoteInterface


class Counter(RemoteInterface):
    def __init__(self):
        self.value = 0
        self.watchers = []

    def add(self, amount: int) -> None:
        self.value += amount

    def total(self) -> int:
        return self.value

    def watch(self, proc: Callable[[int], None]) -> bool:
        self.watchers.append(proc)
        return True

    async def bump_and_notify(self, amount: int) -> int:
        self.value += amount
        for watcher in self.watchers:
            await watcher(self.value)
        return self.value
'''


class Counter(RemoteInterface):
    def add(self, amount: int) -> None: ...
    def total(self) -> int: ...
    def watch(self, proc: Callable[[int], None]) -> bool: ...
    def bump_and_notify(self, amount: int) -> int: ...


@pytest.fixture
def server_process(tmp_path):
    """A real CLAM server subprocess listening on a UNIX socket."""
    socket_path = tmp_path / "clam.sock"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.server", "--listen", f"unix://{socket_path}"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    # Wait for the "listening at" line (the server prints it flushed).
    line = process.stdout.readline()
    assert "listening at" in line, f"unexpected server output: {line!r}"
    address = line.split("listening at", 1)[1].strip()
    yield process, address
    process.terminate()
    try:
        process.wait(timeout=10)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait(timeout=10)


class TestCrossProcess:
    @async_test
    async def test_rpc_round_trip(self, server_process):
        _process, address = server_process
        client = await ClamClient.connect(address)
        assert isinstance(await client.ping(), int)
        await client.close()

    @async_test
    async def test_load_and_call(self, server_process):
        _process, address = server_process
        client = await ClamClient.connect(address)
        await client.load_module("counter", COUNTER_SOURCE)
        counter = await client.create(Counter)
        for _ in range(10):
            await counter.add(3)
        assert await counter.total() == 30
        await client.close()

    @async_test
    async def test_distributed_upcall_across_processes(self, server_process):
        """The headline feature over a real process boundary."""
        _process, address = server_process
        client = await ClamClient.connect(address)
        await client.load_module("counter", COUNTER_SOURCE)
        counter = await client.create(Counter)
        notifications = []
        await counter.watch(lambda value: notifications.append(value))
        assert await counter.bump_and_notify(7) == 7
        assert await counter.bump_and_notify(5) == 12
        assert notifications == [7, 12]
        await client.close()

    @async_test
    async def test_two_client_processes_share_state(self, server_process):
        # Two ClamClients in this process stand in for two client
        # processes; the state they share lives in the third (server)
        # process.
        _process, address = server_process
        c1 = await ClamClient.connect(address)
        c2 = await ClamClient.connect(address)
        await c1.load_module("counter", COUNTER_SOURCE)
        counter1 = await c1.create(Counter)
        await c1.publish("the-counter", counter1)
        counter2 = await c2.lookup(Counter, "the-counter")
        await counter2.add(42)
        await c2.sync()
        assert await counter1.total() == 42
        await c1.close()
        await c2.close()

    def test_client_cli_against_real_server(self, server_process, tmp_path):
        _process, address = server_process
        module_file = tmp_path / "counter_module.py"
        module_file.write_text(COUNTER_SOURCE, encoding="utf-8")

        def cli(*args):
            return subprocess.run(
                [sys.executable, "-m", "repro.client", address, *args],
                capture_output=True,
                text=True,
                timeout=60,
            )

        ping = cli("ping")
        assert ping.returncode == 0, ping.stderr
        assert ping.stdout.strip().isdigit()

        load = cli("load", "counter", str(module_file))
        assert load.returncode == 0, load.stderr
        assert "Counter" in load.stdout

        classes = cli("classes")
        assert classes.stdout.strip() == "Counter"
        versions = cli("versions", "Counter")
        assert versions.stdout.strip() == "1"
        modules = cli("modules")
        assert modules.stdout.strip() == "counter"
