"""Direct tests for the builtin server interface's edge cases."""

import itertools

import pytest

from repro import ClamClient, ClamServer, Handle, RemoteError, RemoteInterface
from tests.support import async_test

_ids = itertools.count(1)

TINY = '''
from repro.stubs import RemoteInterface


class Tiny(RemoteInterface):
    def poke(self) -> int:
        return 1
'''


class Tiny(RemoteInterface):
    def poke(self) -> int: ...


async def start():
    server = ClamServer()
    address = await server.start(f"memory://builtin-{next(_ids)}")
    client = await ClamClient.connect(address)
    return server, client


class TestNaming:
    @async_test
    async def test_lookup_unknown_name(self):
        server, client = await start()
        with pytest.raises(RemoteError) as info:
            await client.lookup(Tiny, "ghost")
        assert "ghost" in info.value.remote_message
        await client.close()
        await server.shutdown()

    @async_test
    async def test_publish_invalid_handle_rejected(self):
        server, client = await start()
        with pytest.raises(RemoteError):
            await client.server.publish("bogus", Handle(oid=12345, tag=1))
        await client.close()
        await server.shutdown()

    @async_test
    async def test_republish_overwrites(self):
        server, client = await start()
        await client.load_module("tiny", TINY)
        first = await client.create(Tiny)
        second = await client.create(Tiny)
        await client.publish("slot", first)
        await client.publish("slot", second)
        found = await client.lookup(Tiny, "slot")
        assert found._clam_handle_ == second._clam_handle_
        await client.close()
        await server.shutdown()


class TestRelease:
    @async_test
    async def test_release_makes_all_copies_stale(self):
        from repro.errors import StaleHandleError

        server = ClamServer()
        address = await server.start(f"memory://builtin-{next(_ids)}")
        c1 = await ClamClient.connect(address)
        c2 = await ClamClient.connect(address)
        await c1.load_module("tiny", TINY)
        mine = await c1.create(Tiny)
        await c1.publish("tiny", mine)
        theirs = await c2.lookup(Tiny, "tiny")

        await c1.release(mine)
        for proxy, client in ((mine, c1), (theirs, c2)):
            with pytest.raises(RemoteError) as info:
                await proxy.poke()
            assert info.value.remote_type == StaleHandleError.__name__
        # The published name is gone too.
        with pytest.raises(RemoteError):
            await c2.lookup(Tiny, "tiny")
        await c1.close()
        await c2.close()
        await server.shutdown()

    @async_test
    async def test_release_unknown_handle_errors(self):
        server, client = await start()
        with pytest.raises(RemoteError):
            await client.server.release(Handle(oid=999, tag=1))
        await client.close()
        await server.shutdown()

    @async_test
    async def test_release_reflected_in_stats(self):
        server, client = await start()
        await client.load_module("tiny", TINY)
        proxy = await client.create(Tiny)
        before = (await client.server_stats())["objects_exported"]
        await client.release(proxy)
        after = (await client.server_stats())["objects_exported"]
        assert after == before - 1
        await client.close()
        await server.shutdown()


class TestCreate:
    @async_test
    async def test_create_specific_version(self):
        v2 = TINY.replace("class Tiny(RemoteInterface):",
                          "class Tiny(RemoteInterface):\n    __clam_version__ = 2")
        server, client = await start()
        await client.load_module("tiny1", TINY)
        await client.load_module("tiny2", v2)
        proxy = await client.create(Tiny, version=1)
        assert await proxy.poke() == 1
        # Version recorded in the descriptor (§3.5.1).
        oid = proxy._clam_handle_.oid
        descriptor = server.exports.table.descriptor(proxy._clam_handle_)
        assert descriptor.version == 1
        await client.close()
        await server.shutdown()

    @async_test
    async def test_create_constructor_failure_reported(self):
        bad = '''
from repro.stubs import RemoteInterface


class Tiny(RemoteInterface):
    def __init__(self):
        raise RuntimeError("cannot construct")

    def poke(self) -> int: ...
'''
        server, client = await start()
        await client.load_module("tiny", bad)
        with pytest.raises(RemoteError) as info:
            await client.create(Tiny)
        assert "cannot construct" in info.value.remote_message
        await client.close()
        await server.shutdown()

    @async_test
    async def test_ping_counts_calls(self):
        server, client = await start()
        first = await client.ping()
        second = await client.ping()
        assert second > first
        await client.close()
        await server.shutdown()
