"""The Figure 4.1 scenario, end to end.

"When the server begins execution, it creates an instance, S, of the
screen class and an instance, BaseW, of the window class. ... Later,
an instance, U2, of the user2 class is created [dynamically loaded].
It creates an instance, W2, of the window class and registers its
user2::mouse procedure to receive mouse events by calling
W2.postinput. ... An instance, U1, of the client class user1 is also
created.  U1 creates a window, W1, and registers its user1::mouse
procedure to receive mouse events."

Then a button press in W1's region travels: screen::mouse →
BaseW.mouse → (distributed upcall) U1.mouse; one in W2's region stays
inside the server: screen::mouse → BaseW.mouse → U2.mouse.
"""

import itertools


from repro import ClamClient, ClamServer, RemoteInterface
from repro.wm import BaseWindow, EventKind, InputEvent, Screen, Window
from repro.wm.geometry import Rect
from tests.support import async_test

_ids = itertools.count(1)

USER2_SOURCE = '''
from repro.stubs import RemoteInterface
from repro.wm.events import InputEvent
from repro.wm.geometry import Rect
from repro.wm.window import BaseWindow


class User2(RemoteInterface):
    """Fig 4.1's user2: a layer dynamically loaded into the server."""

    def __init__(self):
        self.events = []
        self.window = None

    async def setup(self, base: BaseWindow, rect: Rect) -> int:
        self.window = await base.create_window(rect)
        self.window.postinput(self.mouse)
        return self.window.window_id()

    def mouse(self, event: InputEvent) -> None:
        self.events.append((event.x, event.y))

    def hits(self) -> int:
        return len(self.events)
'''


class User2(RemoteInterface):
    """Client-side declaration of the loaded user2 class."""

    def setup(self, base: BaseWindow, rect: Rect) -> int: ...
    def hits(self) -> int: ...


async def start_wm_server():
    """The server app: create S and BaseW, publish them."""
    server = ClamServer()
    screen = Screen(40, 20)
    base = BaseWindow(screen)
    server.publish("screen", screen)
    server.publish("base", base)
    address = await server.start(f"memory://fig41-{next(_ids)}")
    return server, screen, base, address


def press(x, y, seq=1):
    return InputEvent(EventKind.MOUSE_DOWN, x, y, 1, seq=seq)


class TestFigure41:
    @async_test
    async def test_full_scenario(self):
        server, screen, base, address = await start_wm_server()
        client = await ClamClient.connect(address)

        screen_proxy = await client.lookup(Screen, "screen")
        base_proxy = await client.lookup(BaseWindow, "base")

        # U2: dynamically loaded into the server, owns W2.
        await client.load_module("user2", USER2_SOURCE)
        u2 = await client.create(User2)
        w2_id = await u2.setup(base_proxy, Rect(20, 2, 10, 8))
        assert w2_id > 0

        # U1: lives in the client, owns W1, registers over the wire.
        u1_events = []
        w1 = await base_proxy.create_window(Rect(2, 2, 10, 8))
        await w1.postinput(lambda event: u1_events.append((event.x, event.y)))

        # Mouse in W1's region: distributed upcall to the client.
        await screen_proxy.inject_input(press(5, 5, seq=1))
        assert u1_events == [(5, 5)]
        assert await u2.hits() == 0

        # Mouse in W2's region: upcall stays inside the server.
        before = client.upcalls_handled
        await screen_proxy.inject_input(press(25, 5, seq=2))
        assert await u2.hits() == 1
        assert u1_events == [(5, 5)]
        assert client.upcalls_handled == before  # no wire crossing

        await client.close()
        await server.shutdown()

    @async_test
    async def test_background_events_discarded_without_registrant(self):
        server, screen, base, address = await start_wm_server()
        client = await ClamClient.connect(address)
        screen_proxy = await client.lookup(Screen, "screen")
        base_proxy = await client.lookup(BaseWindow, "base")
        w1 = await base_proxy.create_window(Rect(2, 2, 5, 5))
        hits = []
        await w1.postinput(lambda e: hits.append(e.x))

        await screen_proxy.inject_input(press(30, 15))  # background
        assert hits == []
        await screen_proxy.inject_input(press(3, 3))    # in W1
        assert hits == [3]
        await client.close()
        await server.shutdown()

    @async_test
    async def test_window_object_pointer_operations(self):
        """§3.5.1: the returned window handle supports member operations
        that become RPCs back into the server."""
        server, screen, base, address = await start_wm_server()
        client = await ClamClient.connect(address)
        base_proxy = await client.lookup(BaseWindow, "base")
        w1 = await base_proxy.create_window(Rect(2, 2, 6, 4))

        assert await w1.bounds() == Rect(2, 2, 6, 4)
        assert await w1.contains(3, 3) is True
        assert await w1.contains(30, 3) is False
        await w1.move_by(4, 2)
        assert await w1.bounds() == Rect(6, 4, 6, 4)
        await client.close()
        await server.shutdown()

    @async_test
    async def test_passing_proxy_back_into_server(self):
        """A client passes W1's proxy to remove_window: the server
        resolves the handle to the same object (Fig 3.3)."""
        server, screen, base, address = await start_wm_server()
        client = await ClamClient.connect(address)
        base_proxy = await client.lookup(BaseWindow, "base")
        w1 = await base_proxy.create_window(Rect(2, 2, 6, 4))
        assert await base_proxy.window_count() == 1
        assert await base_proxy.remove_window(w1) is True
        assert await base_proxy.window_count() == 0
        await client.close()
        await server.shutdown()

    @async_test
    async def test_two_clients_each_with_own_window(self):
        server, screen, base, address = await start_wm_server()
        c1 = await ClamClient.connect(address)
        c2 = await ClamClient.connect(address)
        screen_1 = await c1.lookup(Screen, "screen")
        base_1 = await c1.lookup(BaseWindow, "base")
        base_2 = await c2.lookup(BaseWindow, "base")

        hits1, hits2 = [], []
        w1 = await base_1.create_window(Rect(0, 0, 8, 8))
        await w1.postinput(lambda e: hits1.append(e.x))
        w2 = await base_2.create_window(Rect(20, 0, 8, 8))
        await w2.postinput(lambda e: hits2.append(e.x))

        await screen_1.inject_input(press(2, 2, seq=1))
        await screen_1.inject_input(press(22, 2, seq=2))
        assert hits1 == [2]
        assert hits2 == [22]
        await c1.close()
        await c2.close()
        await server.shutdown()
