"""Client/server interface skew over the wire.

Clients compile their own declarations; the server runs whatever was
loaded.  These tests pin down what happens when the two drift: extra
client methods fail cleanly, narrower clients work, and two clients
with different versions of one class coexist (§2.1: "different
clients could have different versions").
"""

import itertools

import pytest

from repro import ClamClient, ClamServer, RemoteError, RemoteInterface
from tests.support import async_test

_ids = itertools.count(1)

V1_SOURCE = '''
from repro.stubs import RemoteInterface


class Greeter(RemoteInterface):
    def greet(self, name: str) -> str:
        return f"hello {name}"
'''

V2_SOURCE = '''
from repro.stubs import RemoteInterface


class Greeter(RemoteInterface):
    __clam_version__ = 2

    def greet(self, name: str) -> str:
        return f"HELLO {name}!"

    def farewell(self, name: str) -> str:
        return f"bye {name}"
'''


class GreeterV1(RemoteInterface):
    __clam_class__ = "Greeter"

    def greet(self, name: str) -> str: ...


class GreeterV2(RemoteInterface):
    __clam_class__ = "Greeter"
    __clam_version__ = 2

    def greet(self, name: str) -> str: ...
    def farewell(self, name: str) -> str: ...


async def start():
    server = ClamServer()
    address = await server.start(f"memory://skew-{next(_ids)}")
    client = await ClamClient.connect(address)
    return server, client


class TestSkew:
    @async_test
    async def test_narrow_client_against_wider_server(self):
        """A v1 client talking to a v2 object: its subset just works."""
        server, client = await start()
        await client.load_module("greeter2", V2_SOURCE)
        greeter = await client.create(GreeterV1, version=2)
        assert await greeter.greet("ann") == "HELLO ann!"
        await client.close()
        await server.shutdown()

    @async_test
    async def test_wide_client_against_narrow_server(self):
        """A v2 client calling a method the v1 object lacks gets a
        clean BadCallError, and the session survives."""
        server, client = await start()
        await client.load_module("greeter1", V1_SOURCE)
        greeter = await client.create(GreeterV2, version=1)
        assert await greeter.greet("bob") == "hello bob"
        with pytest.raises(RemoteError) as info:
            await greeter.farewell("bob")
        assert info.value.remote_type == "BadCallError"
        assert await greeter.greet("bob") == "hello bob"
        await client.close()
        await server.shutdown()

    @async_test
    async def test_two_clients_different_versions(self):
        """§2.1: each client binds the version it asked for."""
        server = ClamServer()
        address = await server.start(f"memory://skew-{next(_ids)}")
        c1 = await ClamClient.connect(address)
        c2 = await ClamClient.connect(address)
        await c1.load_module("greeter1", V1_SOURCE)
        await c1.load_module("greeter2", V2_SOURCE)

        old = await c1.create(GreeterV1, version=1)
        new = await c2.create(GreeterV2, version=2)
        assert await old.greet("x") == "hello x"
        assert await new.greet("x") == "HELLO x!"
        assert await new.farewell("x") == "bye x"
        await c1.close()
        await c2.close()
        await server.shutdown()

    @async_test
    async def test_default_create_uses_latest(self):
        server, client = await start()
        await client.load_module("greeter1", V1_SOURCE)
        await client.load_module("greeter2", V2_SOURCE)
        greeter = await client.create(GreeterV2)  # version=0 → latest
        assert await greeter.greet("y") == "HELLO y!"
        await client.close()
        await server.shutdown()
