"""Server-session edge cases not covered by the main flows."""

import itertools

import pytest

from repro import ClamClient, ClamServer
from repro.errors import ConnectionClosedError
from repro.ipc import MessageChannel, dial
from repro.wire import ChannelRole, HelloMessage
from tests.support import async_test

_ids = itertools.count(1)


class TestUpcallChannelAttachment:
    @async_test
    async def test_second_upcall_channel_rejected(self):
        """A session has exactly one dedicated upcall stream (§4.4)."""
        server = ClamServer()
        address = await server.start(f"memory://sess-edge-{next(_ids)}")
        client = await ClamClient.connect(address)

        channel = MessageChannel(await dial(address))
        await channel.send(
            HelloMessage(role=ChannelRole.UPCALL, session=client.session)
        )
        # The server refuses the duplicate and drops the connection.
        with pytest.raises(ConnectionClosedError):
            for _ in range(3):
                await channel.recv()
        # The original client is unaffected.
        assert isinstance(await client.ping(), int)
        await client.close()
        await server.shutdown()

    @async_test
    async def test_sessions_isolated_after_one_dies(self):
        server = ClamServer()
        address = await server.start(f"memory://sess-edge-{next(_ids)}")
        doomed = await ClamClient.connect(address)
        healthy = await ClamClient.connect(address)
        await doomed.close()
        assert isinstance(await healthy.ping(), int)
        await healthy.close()
        await server.shutdown()
