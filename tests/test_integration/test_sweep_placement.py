"""Sweep-layer placement: server vs client (paper §2.1).

"One place for the sweeping code is directly in the window server ...
A second place to put the sweeping function is in client code, as is
done in the X window manager. ... Upcalls provide a simple solution.
The code to sweep out a window is dynamically loaded into the CLAM
server."

The SAME SweepLayer class runs in both placements; only who
instantiates it differs.  The tests verify both produce the same
window, and that the traffic profile differs the way the paper says:
server placement crosses the address space once per drag (the single
"window created" upcall), client placement once per input event.

The screen runs its input pump on a single-worker task pool — the
paper's new-task-per-input-event structure (§4.3) — so upcalled
handlers may RPC back into the server without deadlocking the
session's RPC loop.
"""

import itertools


from repro import ClamClient, ClamServer
from repro.tasks import TaskPool
from repro.wm import BaseWindow, InputScript, Screen, SweepLayer
from repro.wm.geometry import Point
from tests.support import async_test, eventually

_ids = itertools.count(1)

SWEEP_MODULE = '''
from repro.wm.sweep import SweepLayer

__clam_exports__ = ["SweepLayer"]
'''


async def start_wm_server():
    server = ClamServer()
    screen = Screen(60, 30)
    screen.use_tasks(TaskPool(max_tasks=1, name="screen-input"))
    base = BaseWindow(screen)
    server.publish("screen", screen)
    server.publish("base", base)
    address = await server.start(f"memory://sweep-pl-{next(_ids)}")
    return server, screen, base, address


class TestServerPlacement:
    @async_test
    async def test_sweep_loaded_into_server(self):
        server, screen, base, address = await start_wm_server()
        client = await ClamClient.connect(address)
        screen_proxy = await client.lookup(Screen, "screen")
        base_proxy = await client.lookup(BaseWindow, "base")

        # Dynamic loading (§2): ship the sweep module, create, wire up.
        await client.load_module("sweep", SWEEP_MODULE)
        sweep = await client.create(SweepLayer, class_name="sweep")
        await sweep.configure(4, True)
        await sweep.attach(base_proxy, screen_proxy)

        completions = []
        await sweep.on_complete(lambda rect: completions.append(rect))

        script = InputScript()
        for event in script.drag(Point(2, 2), Point(18, 12), steps=20):
            await screen_proxy.inject_input(event)

        await eventually(lambda: len(completions) == 1)
        assert completions[0].x % 4 == 0
        assert await base_proxy.window_count() == 1
        assert await sweep.motion_count() == 20
        await client.close()
        await server.shutdown()

    @async_test
    async def test_server_placement_single_upcall_per_drag(self):
        """Only the final "window created" event crosses to the client
        when the sweep layer lives in the server."""
        server, screen, base, address = await start_wm_server()
        client = await ClamClient.connect(address)
        base_proxy = await client.lookup(BaseWindow, "base")

        await client.load_module("sweep", SWEEP_MODULE)
        sweep = await client.create(SweepLayer, class_name="sweep")
        await sweep.attach(base_proxy, await client.lookup(Screen, "screen"))
        completions = []
        await sweep.on_complete(lambda rect: completions.append(rect))

        # Drive input inside the server process (the device's side).
        script = InputScript()
        await script.play(script.drag(Point(1, 1), Point(30, 20), steps=100),
                          screen.inject_input)
        await screen.drain_input()

        await eventually(lambda: len(completions) == 1)
        # 100 motion events were processed, but exactly ONE upcall
        # crossed the address space.
        assert client.upcalls_handled == 1
        await client.close()
        await server.shutdown()


class TestClientPlacement:
    @async_test
    async def test_same_code_runs_in_client(self):
        """The identical class, instantiated client-side: every input
        event crosses as a distributed upcall, drawing goes back as
        (batched) RPCs."""
        server, screen, base, address = await start_wm_server()
        client = await ClamClient.connect(address)
        screen_proxy = await client.lookup(Screen, "screen")
        base_proxy = await client.lookup(BaseWindow, "base")

        sweep = SweepLayer()  # lives HERE, in the client
        sweep.configure(4, True)
        await sweep.attach(base_proxy, screen_proxy)
        completions = []
        sweep.on_complete(lambda rect: completions.append(rect))

        steps = 10
        script = InputScript()
        for event in script.drag(Point(2, 2), Point(18, 12), steps=steps):
            await screen_proxy.inject_input(event)

        await eventually(lambda: len(completions) == 1)
        assert completions[0].x % 4 == 0
        assert await base_proxy.window_count() == 1
        # Every one of the drag's events crossed the wire as an upcall.
        assert client.upcalls_handled >= steps + 2
        assert sweep.motion_count() == steps
        await client.close()
        await server.shutdown()

    @async_test
    async def test_placements_produce_identical_windows(self):
        """§2.1's point: placement is a performance choice, not a
        semantic one."""
        results = {}
        for placement in ("server", "client"):
            server, screen, base, address = await start_wm_server()
            client = await ClamClient.connect(address)
            screen_proxy = await client.lookup(Screen, "screen")
            base_proxy = await client.lookup(BaseWindow, "base")

            if placement == "server":
                await client.load_module("sweep", SWEEP_MODULE)
                sweep = await client.create(SweepLayer, class_name="sweep")
            else:
                sweep = SweepLayer()
            # invoke() is the placement-agnostic call: proxy methods are
            # async, local ones are not, and the caller need not care.
            from repro.core import invoke

            completions = []
            await invoke(sweep.configure, 2, False)
            await invoke(sweep.attach, base_proxy, screen_proxy)
            await invoke(sweep.on_complete, lambda rect: completions.append(rect))

            script = InputScript()
            for event in script.drag(Point(3, 3), Point(15, 9), steps=6):
                await screen_proxy.inject_input(event)
            await eventually(lambda: len(completions) == 1)
            results[placement] = completions[0]
            await client.close()
            await server.shutdown()

        assert results["server"] == results["client"]
