"""Concurrency stress: many clients, interleaved RPCs and upcalls.

Not a benchmark — a race detector.  Twenty clients hammer one shared
object with batched writes, synchronous reads, and upcall
registrations while the server fans events out to all of them; the
test asserts global counters reconcile exactly.
"""

import itertools
from typing import Callable


from repro import ClamClient, ClamServer, RemoteInterface
from tests.support import async_test, gather_with_timeout

_ids = itertools.count(1)

BOARD_SOURCE = '''
from typing import Callable

from repro.stubs import RemoteInterface


class Board(RemoteInterface):
    """A shared scoreboard with broadcast."""

    def __init__(self):
        self.total = 0
        self.listeners = []

    def add(self, amount: int) -> None:
        self.total += amount

    def read(self) -> int:
        return self.total

    def listen(self, proc: Callable[[int], None]) -> bool:
        self.listeners.append(proc)
        return True

    async def broadcast(self) -> int:
        for proc in self.listeners:
            await proc(self.total)
        return len(self.listeners)
'''


class Board(RemoteInterface):
    def add(self, amount: int) -> None: ...
    def read(self) -> int: ...
    def listen(self, proc: Callable[[int], None]) -> bool: ...
    def broadcast(self) -> int: ...


CLIENTS = 20
ADDS_PER_CLIENT = 50


class TestStress:
    @async_test
    async def test_many_clients_reconcile(self):
        server = ClamServer()
        address = await server.start(f"memory://stress-{next(_ids)}")

        owner = await ClamClient.connect(address)
        await owner.load_module("board", BOARD_SOURCE)
        board = await owner.create(Board)
        await owner.publish("board", board)

        clients = [await ClamClient.connect(address) for _ in range(CLIENTS)]
        received: list[list[int]] = [[] for _ in clients]

        async def worker(i: int, client: ClamClient) -> int:
            proxy = await client.lookup(Board, "board")
            await proxy.listen(lambda total, i=i: received[i].append(total))
            for _ in range(ADDS_PER_CLIENT):
                await proxy.add(1)          # batched async
            return await proxy.read()       # forces the flush

        results = await gather_with_timeout(
            *(worker(i, c) for i, c in enumerate(clients))
        )
        # Every client saw a monotone prefix of the final total.
        final = await board.read()
        assert final == CLIENTS * ADDS_PER_CLIENT
        assert all(r <= final for r in results)

        # Broadcast reaches every listener exactly once.
        listeners = await board.broadcast()
        assert listeners == CLIENTS
        for i, log in enumerate(received):
            assert log == [final], f"client {i} saw {log}"

        assert server.session_count == CLIENTS + 1
        for client in clients:
            await client.close()
        await owner.close()
        await server.shutdown()

    @async_test
    async def test_interleaved_sync_and_async_from_one_client(self):
        """A single client mixing batched and sync calls heavily still
        observes strictly consistent ordering (§3.4)."""
        server = ClamServer()
        address = await server.start(f"memory://stress-{next(_ids)}")
        client = await ClamClient.connect(address)
        await client.load_module("board", BOARD_SOURCE)
        board = await client.create(Board)

        expected = 0
        for round_number in range(1, 30):
            for _ in range(round_number):
                await board.add(1)
                expected += 1
            assert await board.read() == expected

        await client.close()
        await server.shutdown()

    @async_test
    async def test_concurrent_app_tasks_share_one_client(self):
        """The paper allows multiple tasks per client; concurrent sync
        calls over one connection must not cross replies."""
        server = ClamServer()
        address = await server.start(f"memory://stress-{next(_ids)}")
        client = await ClamClient.connect(address)
        await client.load_module("board", BOARD_SOURCE)
        board = await client.create(Board)
        await board.add(5)

        async def reader(n):
            values = set()
            for _ in range(n):
                values.add(await board.read())
            return values

        value_sets = await gather_with_timeout(*(reader(20) for _ in range(10)))
        for values in value_sets:
            assert values == {5}
        await client.close()
        await server.shutdown()
