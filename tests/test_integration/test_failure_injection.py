"""Failure injection: the stack under hostile and unlucky conditions.

A reliable-channel system's interesting behaviour is at the edges:
peers that vanish mid-call, garbage on the wire, wrong protocol
versions, upcalls to dead clients.  Each test pins down that the
failure is *contained* — surfaced as the right ClamError subclass on
the right side, without wedging the server or other clients.
"""

import asyncio
import itertools
from typing import Callable

import pytest

from repro import (
    ClamClient,
    ClamServer,
    ConnectionClosedError,
    RemoteError,
    RemoteInterface,
)
from repro.ipc import MessageChannel, dial
from repro.wire import ChannelRole, HelloMessage
from tests.support import async_test, eventually

_ids = itertools.count(1)

SERVICE_SOURCE = '''
import asyncio
from typing import Callable

from repro.stubs import RemoteInterface


class Service(RemoteInterface):
    def __init__(self):
        self.proc = None

    def echo(self, text: str) -> str:
        return text

    async def slow(self, delay_ms: int) -> int:
        await asyncio.sleep(delay_ms / 1000)
        return delay_ms

    def register(self, proc: Callable[[int], int]) -> bool:
        self.proc = proc
        return True

    def fire_later(self, value: int) -> bool:
        asyncio.get_event_loop().create_task(self._fire(value))
        return True

    async def _fire(self, value: int) -> None:
        await self.proc(value)
'''


class Service(RemoteInterface):
    def echo(self, text: str) -> str: ...
    def slow(self, delay_ms: int) -> int: ...
    def register(self, proc: Callable[[int], int]) -> bool: ...
    def fire_later(self, value: int) -> bool: ...


async def start(**kwargs):
    server = ClamServer(**kwargs)
    address = await server.start(f"memory://failures-{next(_ids)}")
    return server, address


class TestServerVanishes:
    @async_test
    async def test_shutdown_fails_pending_call_cleanly(self):
        server, address = await start()
        client = await ClamClient.connect(address)
        await client.load_module("service", SERVICE_SOURCE)
        service = await client.create(Service)

        async def doomed():
            return await service.slow(5000)

        pending = asyncio.get_running_loop().create_task(doomed())
        await asyncio.sleep(0.01)
        await server.shutdown()
        with pytest.raises(ConnectionClosedError):
            await asyncio.wait_for(pending, timeout=5)
        await client.close()

    @async_test
    async def test_client_usable_error_after_shutdown(self):
        server, address = await start()
        client = await ClamClient.connect(address)
        await server.shutdown()
        with pytest.raises(ConnectionClosedError):
            for _ in range(3):  # allow the close to propagate
                await client.ping()
                await asyncio.sleep(0.01)
        await client.close()


class TestClientVanishes:
    @async_test
    async def test_other_clients_unaffected(self):
        server, address = await start()
        victim = await ClamClient.connect(address)
        survivor = await ClamClient.connect(address)
        await victim.load_module("service", SERVICE_SOURCE)
        # Hard-close the victim's connections without protocol goodbyes.
        await victim.rpc.close()
        await eventually(lambda: server.session_count == 1)
        assert isinstance(await survivor.ping(), int)
        await survivor.close()
        await server.shutdown()
        await victim.close()

    @async_test
    async def test_upcall_to_dead_client_contained(self):
        """A server task upcalling a vanished client gets an error;
        the server survives."""
        server, address = await start()
        client = await ClamClient.connect(address)
        other = await ClamClient.connect(address)
        await client.load_module("service", SERVICE_SOURCE)
        service = await client.create(Service)
        await service.register(lambda v: v)
        await client.close()  # vanish before the upcall fires

        # Fire from a server task; the RUC raises inside that task.
        proxy_for_other = await other.create(Service)
        await proxy_for_other.echo("still alive")  # server still serves
        assert isinstance(await other.ping(), int)
        await other.close()
        await server.shutdown()


class TestHostileBytes:
    @async_test
    async def test_garbage_first_frame_drops_connection_only(self):
        server, address = await start()
        conn = await dial(address)
        await conn.send(b"\xde\xad\xbe\xef not a message")
        with pytest.raises(ConnectionClosedError):
            for _ in range(3):
                await conn.recv()
        # The server still accepts proper clients.
        client = await ClamClient.connect(address)
        assert isinstance(await client.ping(), int)
        await client.close()
        await server.shutdown()

    @async_test
    async def test_non_hello_first_message_rejected(self):
        from repro.wire import ReplyMessage

        server, address = await start()
        channel = MessageChannel(await dial(address))
        await channel.send(ReplyMessage(serial=1, results=b""))
        with pytest.raises(ConnectionClosedError):
            for _ in range(3):
                await channel.recv()
        await server.shutdown()

    @async_test
    async def test_protocol_version_below_minimum_rejected(self):
        """Peers older than MIN_PROTOCOL_VERSION cannot negotiate;
        newer peers are fine (the wire downgrades to our version)."""
        server, address = await start()
        channel = MessageChannel(await dial(address))
        await channel.send(
            HelloMessage(role=ChannelRole.RPC, protocol_version=0)
        )
        with pytest.raises(ConnectionClosedError):
            for _ in range(3):
                await channel.recv()
        assert server.session_count == 0
        await server.shutdown()

    @async_test
    async def test_upcall_channel_for_unknown_session_rejected(self):
        server, address = await start()
        channel = MessageChannel(await dial(address))
        await channel.send(
            HelloMessage(role=ChannelRole.UPCALL, session="forged-token")
        )
        with pytest.raises(ConnectionClosedError):
            for _ in range(3):
                await channel.recv()
        await server.shutdown()

    @async_test
    async def test_call_with_garbage_args_survives(self):
        """Unbundling failure inside a sync call surfaces as a
        RemoteError; the session keeps going."""
        server, address = await start()
        client = await ClamClient.connect(address)
        await client.load_module("service", SERVICE_SOURCE)
        service = await client.create(Service)
        handle = service._clam_handle_
        with pytest.raises(RemoteError):
            await client.rpc.call(handle, "echo", b"\xff\xff")
        assert await service.echo("ok") == "ok"
        await client.close()
        await server.shutdown()

    @async_test
    async def test_call_to_unknown_method_survives(self):
        server, address = await start()
        client = await ClamClient.connect(address)
        await client.load_module("service", SERVICE_SOURCE)
        service = await client.create(Service)
        with pytest.raises(RemoteError) as info:
            await client.rpc.call(service._clam_handle_, "no_such_method", b"")
        assert info.value.remote_type == "BadCallError"
        assert await service.echo("ok") == "ok"
        await client.close()
        await server.shutdown()


class TestUpcallEdgeCases:
    @async_test
    async def test_upcall_for_unregistered_id_reports_error(self):
        """A stale RUC id (client restarted its tables) produces an
        upcall exception, not a hang."""
        server, address = await start()
        client = await ClamClient.connect(address)
        await client.load_module("service", SERVICE_SOURCE)
        service = await client.create(Service)
        await service.register(lambda v: v)
        # Sabotage: clear the client's callback table.
        client.callbacks._entries.clear()
        await service.fire_later(1)
        await eventually(
            lambda: client._upcall_service.upcalls_failed == 1
        )
        assert isinstance(await client.ping(), int)
        await client.close()
        await server.shutdown()
