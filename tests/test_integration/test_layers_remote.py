"""Focus and move layers across the wire, in both placements.

Exercises paths the sweep tests don't: object pointers returned
*optionally* (``window_at`` → ``Optional[Window]`` handle), layers
observing via the tap port remotely, and a proxy-held window being
driven by a client-resident layer.
"""

import itertools

import pytest

from repro import ClamClient, ClamServer
from repro.core import invoke
from repro.tasks import TaskPool
from repro.wm import (
    BaseWindow,
    FocusLayer,
    InputScript,
    MoveLayer,
    Screen,
)
from repro.wm.geometry import Point, Rect
from repro.wm.move import DRAG_BUTTON
from tests.support import async_test, eventually

_ids = itertools.count(1)

LAYERS_MODULE = '''
from repro.wm.focus import FocusLayer
from repro.wm.move import MoveLayer

__clam_exports__ = ["FocusLayer", "MoveLayer"]
'''


async def start_wm():
    server = ClamServer()
    screen = Screen(40, 15)
    screen.use_tasks(TaskPool(max_tasks=1, name="screen-input"))
    base = BaseWindow(screen)
    server.publish("screen", screen)
    server.publish("base", base)
    address = await server.start(f"memory://layers-remote-{next(_ids)}")
    client = await ClamClient.connect(address)
    screen_proxy = await client.lookup(Screen, "screen")
    base_proxy = await client.lookup(BaseWindow, "base")
    return server, screen, client, screen_proxy, base_proxy


class TestWindowAtOverTheWire:
    @async_test
    async def test_returns_proxy_for_hit(self):
        server, screen, client, screen_proxy, base_proxy = await start_wm()
        window = await base_proxy.create_window(Rect(2, 2, 8, 6))
        hit = await base_proxy.window_at(4, 4)
        assert hit is not None
        assert await hit.window_id() == await window.window_id()
        await client.close()
        await server.shutdown()

    @async_test
    async def test_returns_none_for_background(self):
        server, screen, client, screen_proxy, base_proxy = await start_wm()
        await base_proxy.create_window(Rect(2, 2, 8, 6))
        assert await base_proxy.window_at(30, 12) is None
        await client.close()
        await server.shutdown()

    @async_test
    async def test_set_title_through_returned_proxy(self):
        server, screen, client, screen_proxy, base_proxy = await start_wm()
        await base_proxy.create_window(Rect(2, 2, 10, 6))
        hit = await base_proxy.window_at(5, 5)
        await hit.set_title("found")
        await client.sync()
        assert chr(screen.read_cell(3, 2)) == "f"
        await client.close()
        await server.shutdown()


@pytest.mark.parametrize("placement", ["server", "client"])
class TestFocusLayerPlacements:
    @async_test
    async def test_click_then_keys(self, placement):
        server, screen, client, screen_proxy, base_proxy = await start_wm()
        left = await base_proxy.create_window(Rect(1, 1, 8, 6))
        right = await base_proxy.create_window(Rect(12, 1, 8, 6))

        if placement == "server":
            await client.load_module("layers", LAYERS_MODULE)
            focus = await client.create(FocusLayer, class_name="focus")
        else:
            focus = FocusLayer()
        await invoke(focus.attach, base_proxy)

        keys = []
        await right.postinput(lambda e: keys.append(e.key) if e.is_key else None)

        script = InputScript()
        for event in script.click(14, 3) + script.type_text("x"):
            await screen.inject_input(event)
        await screen.drain_input()

        await eventually(lambda: len(keys) == 2)  # KEY_DOWN + KEY_UP
        assert keys == ["x", "x"]
        right_id = await right.window_id()
        assert await invoke(focus.focused_window_id) == right_id
        await client.close()
        await server.shutdown()


@pytest.mark.parametrize("placement", ["server", "client"])
class TestMoveLayerPlacements:
    @async_test
    async def test_drag_moves_window(self, placement):
        server, screen, client, screen_proxy, base_proxy = await start_wm()
        window = await base_proxy.create_window(Rect(2, 2, 8, 5))

        if placement == "server":
            await client.load_module("layers", LAYERS_MODULE)
            move = await client.create(MoveLayer, class_name="move")
        else:
            move = MoveLayer()
        await invoke(move.attach, base_proxy)

        script = InputScript()
        for event in script.drag(Point(4, 4), Point(24, 9), steps=5,
                                 button=DRAG_BUTTON):
            await screen.inject_input(event)
        await screen.drain_input()

        bounds = await window.bounds()
        assert bounds == Rect(22, 7, 8, 5)
        assert await invoke(move.move_count) >= 1
        await client.close()
        await server.shutdown()
